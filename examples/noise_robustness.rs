//! Noise-robustness study (the paper's proposed future work, §7).
//!
//! Artificially scales every noise source of a kernel and reports how the
//! variable-observation learner copes: how many observations per example it
//! chooses to take, and what model error it reaches for a fixed iteration
//! budget. The expectation — and the motivation for sequential analysis — is
//! that the learner spends more observations per example exactly when the
//! noise grows, instead of failing silently like a single-observation plan.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example noise_robustness
//! ```

use alic::core::prelude::*;
use alic::data::dataset::{Dataset, DatasetConfig};
use alic::model::dynatree::{DynaTree, DynaTreeConfig};
use alic::sim::profiler::SimulatedProfiler;
use alic::sim::spapt::{spapt_kernel, SpaptKernel};

fn main() -> Result<(), CoreError> {
    let base = spapt_kernel(SpaptKernel::Jacobi);
    println!(
        "noise robustness on {} (variable-observation plan)\n",
        base.name()
    );
    println!("noise scale  distinct examples  obs/example  final RMSE (s)  cost (s)");
    println!("-------------------------------------------------------------------------");

    for factor in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let spec = base.clone().with_noise(base.noise().scaled(factor));
        let mut profiler = SimulatedProfiler::new(spec, 21);
        let dataset = Dataset::generate(
            &mut profiler,
            &DatasetConfig {
                configurations: 500,
                observations: 12,
                seed: 3,
            },
        );
        let split = dataset.split(380, 4);
        let config = LearnerConfig {
            initial_examples: 5,
            initial_observations: 12,
            candidates_per_iteration: 50,
            max_iterations: 220,
            evaluate_every: 55,
            plan: SamplingPlan::sequential(12),
            ..Default::default()
        };
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: 60,
            seed: 5,
            ..Default::default()
        });
        let run = ActiveLearner::new(config, &mut profiler).run(&mut model, &dataset, &split)?;
        println!(
            "{:>10.1}x  {:>17}  {:>11.2}  {:>14.4}  {:>8.1}",
            factor,
            run.distinct_examples(),
            run.mean_observations_per_example(),
            run.curve.final_rmse().unwrap_or(f64::NAN),
            run.ledger.total_seconds(),
        );
    }
    println!(
        "\n(Watch the observations-per-example and final-RMSE columns: as the noise grows the \
         sequential plan trades exploration for repeated measurements of the configurations the \
         model is unsure about, and the achievable error degrades gracefully rather than \
         collapsing the way a single-observation plan would.)"
    );
    Ok(())
}
