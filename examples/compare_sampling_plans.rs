//! Compare the paper's three sampling plans on one kernel.
//!
//! Reproduces, for a single benchmark, the comparison behind Table 1 and
//! Figure 6: the fixed 35-observation baseline, the single-observation plan,
//! and the paper's variable-observation (sequential analysis) plan, all
//! driven by the same ALC active learner over any surrogate family.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example compare_sampling_plans [kernel] [model]
//! ```
//!
//! where `model` is one of `dynatree` (default), `cart`, `gp`, `knn`, `mean`.

use alic::core::experiment::{compare_plans, ComparisonConfig};
use alic::core::prelude::*;
use alic::sim::spapt::{spapt_kernel, SpaptKernel};

fn main() -> Result<(), CoreError> {
    let kernel = match std::env::args().nth(1) {
        None => SpaptKernel::Jacobi,
        Some(name) => SpaptKernel::from_name(&name).unwrap_or_else(|| {
            eprintln!("unknown kernel '{name}'");
            std::process::exit(2);
        }),
    };
    let model = std::env::args().nth(2).map(|name| {
        SurrogateSpec::from_name(&name).unwrap_or_else(|| {
            eprintln!(
                "unknown model '{name}' (expected one of: {})",
                SurrogateSpec::names().join(", ")
            );
            std::process::exit(2);
        })
    });
    let spec = spapt_kernel(kernel);

    let mut config = ComparisonConfig {
        repetitions: 3,
        ..ComparisonConfig::laptop_scale()
    };
    if let Some(model) = model {
        config = config.with_model(model);
    }
    println!(
        "comparing sampling plans on {} with the {} surrogate\n",
        spec.name(),
        config.model
    );
    let outcome = compare_plans(&spec, &config)?;

    println!("plan                     mean cost (s)  best RMSE (s)  obs/example");
    println!("--------------------------------------------------------------------");
    for plan in &outcome.plans {
        let mean_cost: f64 = plan
            .runs
            .iter()
            .map(|r| r.ledger.total_seconds())
            .sum::<f64>()
            / plan.runs.len().max(1) as f64;
        println!(
            "{:<24} {:>12.1}  {:>12.4}  {:>10.2}",
            plan.plan.label(),
            mean_cost,
            plan.averaged.best_rmse().unwrap_or(f64::NAN),
            plan.mean_observations_per_example(),
        );
    }

    if let Some(pair) = outcome.pairwise(
        config.plans[0], // fixed baseline
        *config.plans.last().expect("three plans configured"),
    ) {
        println!(
            "\nlowest common RMSE between the baseline and the variable plan: {:.4} s",
            pair.lowest_common_rmse
        );
        println!(
            "cost to reach it: baseline {:?} s, variable {:?} s",
            pair.cost_first.map(|c| c.round()),
            pair.cost_second.map(|c| c.round())
        );
        match pair.speedup() {
            Some(s) => println!("reduction of profiling cost: {s:.2}x"),
            None => println!("one of the plans never reached the common error in the window"),
        }
    }
    Ok(())
}
