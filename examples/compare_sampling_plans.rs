//! Compare the paper's three sampling plans on one kernel.
//!
//! Reproduces, for a single benchmark, the comparison behind Table 1 and
//! Figure 6: the fixed 35-observation baseline, the single-observation plan,
//! and the paper's variable-observation (sequential analysis) plan, all
//! driven by the same ALC active learner over dynamic trees.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example compare_sampling_plans [kernel]
//! ```

use alic::core::experiment::{compare_plans, ComparisonConfig};
use alic::core::prelude::*;
use alic::sim::spapt::{spapt_kernel, SpaptKernel};

fn main() -> Result<(), CoreError> {
    let kernel_name = std::env::args().nth(1).unwrap_or_else(|| "jacobi".to_string());
    let kernel = SpaptKernel::from_name(&kernel_name).unwrap_or(SpaptKernel::Jacobi);
    let spec = spapt_kernel(kernel);
    println!("comparing sampling plans on {}\n", spec.name());

    let config = ComparisonConfig {
        repetitions: 3,
        ..ComparisonConfig::laptop_scale()
    };
    let outcome = compare_plans(&spec, &config)?;

    println!("plan                     mean cost (s)  best RMSE (s)  obs/example");
    println!("--------------------------------------------------------------------");
    for plan in &outcome.plans {
        let mean_cost: f64 = plan
            .runs
            .iter()
            .map(|r| r.ledger.total_seconds())
            .sum::<f64>()
            / plan.runs.len().max(1) as f64;
        println!(
            "{:<24} {:>12.1}  {:>12.4}  {:>10.2}",
            plan.plan.label(),
            mean_cost,
            plan.averaged.best_rmse().unwrap_or(f64::NAN),
            plan.mean_observations_per_example(),
        );
    }

    if let Some(pair) = outcome.pairwise(
        config.plans[0], // fixed baseline
        *config.plans.last().expect("three plans configured"),
    ) {
        println!(
            "\nlowest common RMSE between the baseline and the variable plan: {:.4} s",
            pair.lowest_common_rmse
        );
        println!(
            "cost to reach it: baseline {:?} s, variable {:?} s",
            pair.cost_first.map(|c| c.round()),
            pair.cost_second.map(|c| c.round())
        );
        match pair.speedup() {
            Some(s) => println!("reduction of profiling cost: {s:.2}x"),
            None => println!("one of the plans never reached the common error in the window"),
        }
    }
    Ok(())
}
