//! Quick start: build a runtime-prediction model for one simulated kernel
//! with the paper's variable-observation active learner.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use alic::core::prelude::*;
use alic::data::dataset::{Dataset, DatasetConfig};
use alic::model::dynatree::{DynaTree, DynaTreeConfig};
use alic::model::SurrogateModel;
use alic::sim::profiler::SimulatedProfiler;
use alic::sim::spapt::{spapt_kernel, SpaptKernel};

fn main() -> Result<(), CoreError> {
    // 1. A simulated SPAPT kernel. Swap in your own `Profiler` implementation
    //    to drive a real compiler instead.
    let kernel = spapt_kernel(SpaptKernel::Gemver);
    println!(
        "kernel: {} ({} tunable parameters, {:.2e} configurations)",
        kernel.name(),
        kernel.space().dimension(),
        kernel.space().cardinality_f64()
    );
    let mut profiler = SimulatedProfiler::new(kernel, 42);

    // 2. Profile a pool of random configurations and hold some out for
    //    evaluating the model (the paper's 7,500 / 2,500 protocol, shrunk).
    let dataset = Dataset::generate(
        &mut profiler,
        &DatasetConfig {
            configurations: 600,
            observations: 10,
            seed: 1,
        },
    );
    let split = dataset.split(450, 2);

    // 3. Run Algorithm 1: seed with a few well-measured examples, then take
    //    one observation at a time wherever the model expects to learn most.
    let config = LearnerConfig {
        initial_examples: 5,
        initial_observations: 10,
        candidates_per_iteration: 60,
        max_iterations: 250,
        evaluate_every: 25,
        acquisition: Acquisition::default_alc(),
        plan: SamplingPlan::sequential(10),
        ..Default::default()
    };
    let mut model = DynaTree::new(DynaTreeConfig {
        particles: 80,
        seed: 3,
        ..Default::default()
    });
    let run = ActiveLearner::new(config, &mut profiler).run(&mut model, &dataset, &split)?;

    // 4. Inspect the outcome.
    println!("\niteration  examples  observations  cost (s)  RMSE (s)");
    for p in run.curve.points() {
        println!(
            "{:>9}  {:>8}  {:>12}  {:>8.1}  {:.4}",
            p.iterations, p.training_examples, p.observations, p.cost_seconds, p.rmse
        );
    }
    println!(
        "\nvisited {} distinct configurations with {:.2} observations each on average",
        run.distinct_examples(),
        run.mean_observations_per_example()
    );
    println!(
        "total profiling cost: {:.1} s (compilation {:.1} s, runs {:.1} s)",
        run.ledger.total_seconds(),
        run.ledger.compile_seconds(),
        run.ledger.run_seconds()
    );

    // 5. Use the model: find the best configuration in the held-out set.
    let best = split
        .test_indices()
        .iter()
        .min_by(|&&a, &&b| {
            let pa = model
                .predict(&dataset.features(a))
                .map(|p| p.mean)
                .unwrap_or(f64::MAX);
            let pb = model
                .predict(&dataset.features(b))
                .map(|p| p.mean)
                .unwrap_or(f64::MAX);
            pa.partial_cmp(&pb).expect("finite predictions")
        })
        .copied()
        .expect("test set is non-empty");
    println!(
        "\npredicted-best held-out configuration: {} (measured mean {:.3} s)",
        dataset.points()[best].configuration,
        dataset.points()[best].mean_runtime
    );
    Ok(())
}
