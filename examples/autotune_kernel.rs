//! Autotuning scenario: use the learned runtime model to search a huge
//! configuration space for a fast configuration, paying only a tiny
//! profiling budget — the workload that motivates the paper's introduction.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example autotune_kernel [kernel] [--model FAMILY]
//! ```
//!
//! where `kernel` is one of the 11 SPAPT names (default: `mm`) and `FAMILY`
//! is any surrogate family name accepted by `SurrogateSpec::from_name`
//! (`dynatree`, `cart`, `gp`, `sgp`, `knn`, `mean`; default `dynatree`).
//! The `ALIC_MODEL` environment variable sets the family too, with the
//! `--model` flag taking precedence — the same override the experiment
//! binaries honour.

use alic::core::prelude::*;
use alic::data::dataset::{Dataset, DatasetConfig};
use alic::model::SurrogateSpec;
use alic::sim::profiler::{Profiler, SimulatedProfiler};
use alic::sim::spapt::{spapt_kernel, SpaptKernel};
use alic::stats::rng::seeded_rng;

fn main() -> Result<(), CoreError> {
    let mut kernel_name: Option<String> = None;
    let mut model_name = std::env::var("ALIC_MODEL").ok();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--model" {
            model_name = args.next();
        } else if kernel_name.is_none() {
            kernel_name = Some(arg);
        }
    }
    let kernel = kernel_name
        .as_deref()
        .and_then(SpaptKernel::from_name)
        .unwrap_or(SpaptKernel::Mm);
    let spec = match model_name.as_deref() {
        None => SurrogateSpec::dynatree(80),
        Some(name) => match SurrogateSpec::from_name(name) {
            // The example's profiling budget suits a mid-sized ensemble.
            Some(SurrogateSpec::DynaTree(_)) => SurrogateSpec::dynatree(80),
            Some(other) => other,
            None => {
                eprintln!(
                    "unknown model family {name:?}; valid names: {}",
                    SurrogateSpec::names().join(", ")
                );
                std::process::exit(2);
            }
        },
    };
    let model_spec = spec;
    let spec = spapt_kernel(kernel);
    println!(
        "autotuning {} over {:.2e} configurations",
        spec.name(),
        spec.space().cardinality_f64()
    );

    // Build the model with a small profiling budget.
    let mut profiler = SimulatedProfiler::new(spec.clone(), 11);
    let dataset = Dataset::generate(
        &mut profiler,
        &DatasetConfig {
            configurations: 500,
            observations: 8,
            seed: 5,
        },
    );
    let split = dataset.split(400, 6);
    let config = LearnerConfig {
        initial_examples: 5,
        initial_observations: 8,
        candidates_per_iteration: 50,
        max_iterations: 200,
        evaluate_every: 50,
        plan: SamplingPlan::sequential(8),
        ..Default::default()
    };
    let mut model = model_spec.build(7);
    let run = ActiveLearner::new(config, &mut profiler).run(model.as_mut(), &dataset, &split)?;
    println!(
        "model trained: RMSE {:.4} s after {:.1} s of profiling ({} runs)",
        run.curve.final_rmse().unwrap_or(f64::NAN),
        run.ledger.total_seconds(),
        run.ledger.runs()
    );

    // Search: score a large random sample of *unprofiled* configurations with
    // the model, then verify only the most promising handful.
    let mut rng = seeded_rng(99);
    let candidates = spec.space().sample_distinct(&mut rng, 5_000);
    let mut scored: Vec<(f64, &alic::sim::space::Configuration)> = candidates
        .iter()
        .map(|c| {
            let features = dataset.features_of(c);
            let prediction = model.predict(&features).map(|p| p.mean).unwrap_or(f64::MAX);
            (prediction, c)
        })
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite predictions"));

    let baseline = spec.space().default_configuration();
    let baseline_runtime = profiler.true_mean(&baseline);
    println!("\nuntuned (-O2 style) configuration: {baseline} -> {baseline_runtime:.4} s");
    println!("\ntop predicted configurations (verified with 5 runs each):");
    let mut best_measured = baseline_runtime;
    for (predicted, config) in scored.iter().take(5) {
        let measured: f64 = (0..5)
            .map(|_| profiler.measure(config).runtime)
            .sum::<f64>()
            / 5.0;
        best_measured = best_measured.min(measured);
        println!("  {config} predicted {predicted:.4} s, measured {measured:.4} s");
    }
    println!(
        "\nspeed-up over the untuned configuration: {:.2}x",
        baseline_runtime / best_measured
    );
    Ok(())
}
