//! A scripted `alic-serve` client session, in process.
//!
//! Drives the daemon's engine through the same line protocol a TCP or
//! stdin client would speak: create a session on a SPAPT kernel's space,
//! loop suggest → measure → observe against the simulated profiler, then
//! SIGKILL the daemon (drop it with no shutdown handshake) and show the
//! restarted daemon resuming the session with byte-identical answers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_client
//! ```

use alic::serve::protocol::{format_cost, parse_config};
use alic::serve::{ConnState, Engine, ServeConfig};
use alic::sim::profiler::{Profiler, SimulatedProfiler};
use alic::sim::spapt::{spapt_kernel, SpaptKernel};

/// Sends one request line and returns the reply, crashing on `err` — this
/// scripted client has no faults to recover from (see
/// `tests/serve_resume.rs` for the retrying recovery driver).
fn request(engine: &mut Engine, conn: &mut ConnState, line: &str) -> String {
    let reply = engine
        .handle_line(conn, line)
        .reply
        .expect("non-empty requests always draw a reply");
    println!("> {line}\n< {reply}");
    assert!(reply.starts_with("ok "), "unexpected error reply: {reply}");
    reply
}

fn main() {
    let dir = std::env::temp_dir().join(format!("alic-serve-client-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The measurement side: the simulated GEMVER kernel. A real deployment
    // would compile and time candidate configurations instead.
    let kernel = spapt_kernel(SpaptKernel::Gemver);
    let mut profiler = SimulatedProfiler::new(kernel, 42);

    let mut engine = Engine::open(ServeConfig::new(&dir)).expect("serve directory is writable");
    let mut conn = ConnState::new();
    request(&mut engine, &mut conn, "newsession gemver spapt");

    // The tuning loop: ask the session's surrogate where to measure next,
    // measure there, feed the cost back. Every `ok observed` reply means
    // the observation is already durable on disk.
    for round in 0..5 {
        let suggested = request(&mut engine, &mut conn, "suggest 3");
        for token in suggested.split_whitespace().skip(2) {
            let config = parse_config(token).expect("the daemon suggests valid configurations");
            let cost = profiler.measure(&config).runtime;
            request(
                &mut engine,
                &mut conn,
                &format!("observe {token} {}", format_cost(cost)),
            );
        }
        println!("round {round} done");
    }
    let best_before = request(&mut engine, &mut conn, "best");
    let suggest_before = request(&mut engine, &mut conn, "suggest 2");

    // Simulated SIGKILL: no `quit`, no flush — the daemon just vanishes.
    println!(
        "\n--- daemon killed; restarting from {} ---\n",
        dir.display()
    );
    drop(engine);

    let mut engine = Engine::open(ServeConfig::new(&dir)).expect("serve directory is readable");
    let mut conn = ConnState::new();
    request(&mut engine, &mut conn, "attach s000000");
    let best_after = request(&mut engine, &mut conn, "best");
    let suggest_after = request(&mut engine, &mut conn, "suggest 2");

    assert_eq!(best_before, best_after, "restart changed the best answer");
    assert_eq!(
        suggest_before, suggest_after,
        "restart changed the suggestion stream"
    );
    println!("\nrestart resumed the session bit-identically");

    let _ = std::fs::remove_dir_all(&dir);
}
