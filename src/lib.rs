//! `alic` — **A**ctive **L**earning for **I**terative **C**ompilation.
//!
//! Umbrella crate for the workspace reproducing *"Minimizing the Cost of
//! Iterative Compilation with Active Learning"* (Ogilvie, Petoumenos, Wang,
//! Leather — CGO 2017). It re-exports the individual crates so applications
//! can depend on a single package:
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`stats`] | `alic-stats` | summary statistics, confidence intervals, RMSE, normalization, linear algebra |
//! | [`sim`] | `alic-sim` | the iterative-compilation simulator (SPAPT-like kernels, noise, costs) |
//! | [`data`] | `alic-data` | dataset generation, train/test splits, serialization |
//! | [`model`] | `alic-model` | dynamic trees, CART, Gaussian processes, baselines |
//! | [`core`] | `alic-core` | the active-learning loop with sequential analysis (Algorithm 1) |
//! | [`serve`] | `alic-serve` | the crash-safe autotuning daemon (line protocol, checkpointed sessions) |
//! | [`experiments`] | `alic-experiments` | the harness regenerating every table and figure |
//!
//! # Quick start
//!
//! ```
//! use alic::core::prelude::*;
//! use alic::data::dataset::{Dataset, DatasetConfig};
//! use alic::model::dynatree::{DynaTree, DynaTreeConfig};
//! use alic::sim::profiler::SimulatedProfiler;
//! use alic::sim::spapt::{spapt_kernel, SpaptKernel};
//!
//! // 1. A simulated kernel to tune.
//! let mut profiler = SimulatedProfiler::new(spapt_kernel(SpaptKernel::Mvt), 7);
//!
//! // 2. A profiled dataset with a training pool and a held-out test set.
//! let dataset = Dataset::generate(
//!     &mut profiler,
//!     &DatasetConfig { configurations: 200, observations: 5, seed: 1 },
//! );
//! let split = dataset.split(150, 2);
//!
//! // 3. The paper's variable-observation active learner over a dynamic tree.
//! let config = LearnerConfig {
//!     initial_examples: 5,
//!     initial_observations: 5,
//!     candidates_per_iteration: 25,
//!     max_iterations: 40,
//!     evaluate_every: 10,
//!     plan: SamplingPlan::sequential(5),
//!     ..Default::default()
//! };
//! let mut model = DynaTree::new(DynaTreeConfig { particles: 40, seed: 3, ..Default::default() });
//! let run = ActiveLearner::new(config, &mut profiler).run(&mut model, &dataset, &split)?;
//! println!("final RMSE: {:.4} s after {:.1} s of profiling",
//!          run.curve.final_rmse().unwrap(), run.ledger.total_seconds());
//! # Ok::<(), alic::core::CoreError>(())
//! ```

#![warn(missing_docs)]

pub use alic_core as core;
pub use alic_data as data;
pub use alic_experiments as experiments;
pub use alic_model as model;
pub use alic_serve as serve;
pub use alic_sim as sim;
pub use alic_stats as stats;
