//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! keeps every `#[derive(Serialize, Deserialize)]` in the workspace compiling
//! as a *marker*: the traits carry no methods and are blanket-implemented for
//! every type, and the derive macros (re-exported from the sibling
//! `serde_derive` shim) generate nothing. Actual serialization in the
//! workspace is hand-written where needed (see `alic-data::io`), keeping the
//! door open to swapping the real `serde` back in when a registry is
//! available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: ?Sized + for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stand-in for the `serde::de` module.
pub mod de {
    pub use crate::DeserializeOwned;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Plain {
        #[allow(dead_code)]
        value: f64,
    }

    #[derive(Serialize, Deserialize)]
    enum Shape {
        #[allow(dead_code)]
        Unit,
        #[allow(dead_code)]
        Struct { field: usize },
    }

    fn assert_markers<T: Serialize + DeserializeOwned>() {}

    #[test]
    fn derives_compile_and_blanket_impls_apply() {
        assert_markers::<Plain>();
        assert_markers::<Shape>();
        assert_markers::<Vec<String>>();
    }
}
