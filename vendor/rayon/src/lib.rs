//! Offline stand-in for the `rayon` crate.
//!
//! Implements the small slice of the rayon API this workspace uses —
//! `par_iter()` / `into_par_iter()` followed by `map`, `filter_map`,
//! `for_each` or `collect` — on top of `std::thread::scope`. Work items are
//! handed out through an atomic cursor to however many worker threads
//! [`current_num_threads`] reports (the `RAYON_NUM_THREADS` environment
//! variable, else the machine's available parallelism), and results are
//! written back by index, so **output order is deterministic and independent
//! of thread count** — exactly the property the experiment harness relies on
//! for reproducible runs.
//!
//! Unlike real rayon there is no work-stealing pool: each adapter evaluates
//! eagerly when it has a closure to run. That preserves semantics (and
//! parallel speed-up for the coarse-grained jobs in this workspace) at a
//! fraction of the complexity.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Programmatic thread-count override; `0` means "no override". A shim
/// extension (real rayon uses `ThreadPoolBuilder`): tests toggle this instead
/// of mutating `RAYON_NUM_THREADS`, because `setenv` concurrent with `getenv`
/// from worker threads is undefined behavior on glibc.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-thread count for subsequent parallel operations;
/// `0` clears the override and returns to the environment-driven default.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

fn parse_thread_count(value: &str) -> Option<usize> {
    value.parse::<usize>().ok().filter(|&n| n > 0)
}

/// Number of worker threads used for parallel operations: the
/// [`set_num_threads`] override when set, else the `RAYON_NUM_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism.
///
/// The environment-driven default is computed once and cached:
/// `available_parallelism` reads `/proc` and cgroup files on Linux on
/// *every* call, which would turn each fine-grained parallel operation into
/// a handful of syscalls. Real rayon resolves its pool size once at pool
/// construction for the same reason; runtime reconfiguration goes through
/// [`set_num_threads`], which bypasses the cache.
pub fn current_num_threads() -> usize {
    static DEFAULT_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => *DEFAULT_THREADS.get_or_init(|| {
            std::env::var("RAYON_NUM_THREADS")
                .ok()
                .and_then(|v| parse_thread_count(&v))
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1)
                })
        }),
        n => n,
    }
}

std::thread_local! {
    /// Whether the current thread is one of this shim's workers. Nested
    /// parallel calls run serially inside a worker instead of spawning a
    /// fresh full-width thread set, so nesting (kernels → plans×repetitions)
    /// cannot oversubscribe the machine multiplicatively.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Maps `f` over `items` on the worker threads, preserving input order.
fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 || IN_WORKER.get() {
        return items.into_iter().map(f).collect();
    }
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<U>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let inputs = &inputs;
    let outputs = &outputs;
    let cursor = &cursor;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                IN_WORKER.set(true);
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= inputs.len() {
                        break;
                    }
                    let item = inputs[index]
                        .lock()
                        .expect("input slot poisoned")
                        .take()
                        .expect("each slot is claimed exactly once");
                    let result = f(item);
                    *outputs[index].lock().expect("output slot poisoned") = Some(result);
                }
            });
        }
    });
    outputs
        .iter()
        .map(|slot| {
            slot.lock()
                .expect("output slot poisoned")
                .take()
                .expect("worker filled every slot")
        })
        .collect()
}

/// An eager "parallel iterator": a buffer of items whose combinators run on
/// the worker threads.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel, preserving order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// Maps and filters in parallel, preserving the order of retained items.
    pub fn filter_map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> Option<U> + Sync,
    {
        ParIter {
            items: parallel_map(self.items, f).into_iter().flatten().collect(),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map(self.items, f);
    }

    /// Drains the (already computed) items into any collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

macro_rules! impl_range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_into_par_iter!(u32, u64, usize, i32, i64);

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type produced.
    type Item: Send + 'a;

    /// Returns a parallel iterator over references into `self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let doubled: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(doubled, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice_references() {
        let words = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lengths: Vec<usize> = words.par_iter().map(|w| w.len()).collect();
        assert_eq!(lengths, vec![1, 2, 3]);
    }

    #[test]
    fn collect_into_result_short_circuits_on_err() {
        let ok: Result<Vec<usize>, String> = (0..10usize).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 10);
        let err: Result<Vec<usize>, String> = (0..10usize)
            .into_par_iter()
            .map(|i| {
                if i == 5 {
                    Err("boom".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn filter_map_drops_items() {
        let evens: Vec<usize> = (0..20usize)
            .into_par_iter()
            .filter_map(|i| (i % 2 == 0).then_some(i))
            .collect();
        assert_eq!(evens.len(), 10);
    }

    #[test]
    fn nested_parallel_calls_run_serially_and_stay_correct() {
        let result: Vec<Vec<usize>> = (0..8usize)
            .into_par_iter()
            .map(|outer| {
                (0..8usize)
                    .into_par_iter()
                    .map(move |inner| outer * 10 + inner)
                    .collect()
            })
            .collect();
        for (outer, row) in result.iter().enumerate() {
            assert_eq!(row, &(0..8).map(|i| outer * 10 + i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn respects_thread_count_override() {
        crate::set_num_threads(1);
        assert_eq!(crate::current_num_threads(), 1);
        let single: Vec<usize> = (0..100usize).into_par_iter().map(|i| i + 1).collect();
        crate::set_num_threads(0);
        let multi: Vec<usize> = (0..100usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(single, multi);
    }

    #[test]
    fn env_values_parse_strictly() {
        assert_eq!(crate::parse_thread_count("4"), Some(4));
        assert_eq!(crate::parse_thread_count("0"), None);
        assert_eq!(crate::parse_thread_count("four"), None);
        assert_eq!(crate::parse_thread_count(""), None);
    }
}
