//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements the ChaCha stream cipher (Bernstein, 2008) as a deterministic,
//! platform-independent pseudo-random generator with 12 rounds —
//! [`ChaCha12Rng`] — against the vendored `rand` traits. Output streams are
//! deterministic for a seed but are **not** bit-compatible with the upstream
//! `rand_chacha` crate; the workspace only relies on internal reproducibility.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha pseudo-random generator with 12 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Key + nonce + counter state words (the input block).
    state: [u32; BLOCK_WORDS],
    /// Keystream block produced by the last permutation.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` forces a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    /// Number of `u32` words in a full state snapshot
    /// ([`state_words`](Self::state_words)): input block, keystream buffer,
    /// and the read index.
    pub const STATE_WORDS: usize = 2 * BLOCK_WORDS + 1;

    /// Captures the complete generator state — input block, buffered
    /// keystream, and read index — as `STATE_WORDS` words, so a generator
    /// mid-stream can be serialized and resumed bit-exactly with
    /// [`from_state_words`](Self::from_state_words).
    pub fn state_words(&self) -> [u32; Self::STATE_WORDS] {
        let mut words = [0u32; Self::STATE_WORDS];
        words[..BLOCK_WORDS].copy_from_slice(&self.state);
        words[BLOCK_WORDS..2 * BLOCK_WORDS].copy_from_slice(&self.buffer);
        words[2 * BLOCK_WORDS] = self.index as u32;
        words
    }

    /// Rebuilds a generator from a [`state_words`](Self::state_words)
    /// snapshot; the resumed stream continues exactly where the captured one
    /// stood. Returns `None` when the word count or read index is invalid.
    pub fn from_state_words(words: &[u32]) -> Option<Self> {
        if words.len() != Self::STATE_WORDS {
            return None;
        }
        let index = words[2 * BLOCK_WORDS] as usize;
        if index > BLOCK_WORDS {
            return None;
        }
        let mut state = [0u32; BLOCK_WORDS];
        let mut buffer = [0u32; BLOCK_WORDS];
        state.copy_from_slice(&words[..BLOCK_WORDS]);
        buffer.copy_from_slice(&words[BLOCK_WORDS..2 * BLOCK_WORDS]);
        Some(ChaCha12Rng {
            state,
            buffer,
            index,
        })
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..6 {
            // Two rounds per loop: one column round, one diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12/13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Words 12..16: block counter and nonce, all zero initially.
        ChaCha12Rng {
            state,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha12Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_looks_uniform() {
        let mut rng = ChaCha12Rng::seed_from_u64(1234);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn state_words_round_trip_resumes_mid_stream() {
        let mut rng = ChaCha12Rng::seed_from_u64(77);
        for _ in 0..41 {
            rng.next_u32();
        }
        let words = rng.state_words();
        let mut resumed = ChaCha12Rng::from_state_words(&words).unwrap();
        let a: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let b: Vec<u64> = (0..64).map(|_| resumed.next_u64()).collect();
        assert_eq!(a, b);
        assert!(ChaCha12Rng::from_state_words(&words[..32]).is_none());
        let mut bad = words;
        bad[32] = BLOCK_WORDS as u32 + 1;
        assert!(ChaCha12Rng::from_state_words(&bad).is_none());
    }

    #[test]
    fn blocks_advance_the_counter() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..BLOCK_WORDS).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..BLOCK_WORDS).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
