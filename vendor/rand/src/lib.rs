//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this vendored crate re-implements exactly the subset of the `rand 0.8`
//! API the workspace uses: [`RngCore`], [`SeedableRng`], the extension trait
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). Streams are *not* bit-compatible with upstream
//! `rand`; the workspace only relies on determinism within itself.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random-number generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed material accepted by [`SeedableRng::from_seed`].
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed by expanding it with a
    /// SplitMix64 stream (the same approach upstream `rand` takes).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly from raw random bits (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range of values a generator can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening multiply: unbiased enough for simulation purposes and
    // deterministic, which is what the workspace needs.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(sample_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let value = self.start + u * (self.end - self.start);
                // `start + u * span` can round up to exactly `end` even
                // though u < 1; keep the documented exclusive upper bound.
                if value < self.end {
                    value
                } else {
                    self.end.next_down()
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// High-level convenience methods, automatically available on every
/// [`RngCore`] implementor.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[derive(Clone)]
    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SplitMix(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: u32 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn float_range_never_returns_the_exclusive_upper_bound() {
        // A range so narrow that `start + u * span` rounds to `end` for most
        // draws; the clamp must keep every sample strictly below `end`.
        let mut rng = SplitMix(5);
        let start = 1.0f64;
        let end = start + 2.0 * f64::EPSILON;
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(start..end);
            assert!(v < end, "sample {v} reached the exclusive bound {end}");
            assert!(v >= start);
        }
    }

    #[test]
    fn standard_f64_is_in_unit_interval() {
        let mut rng = SplitMix(3);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SplitMix(13);
        let items = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), items.len());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
