//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API this workspace's tests use: the
//! `proptest!` macro over `name in strategy` parameters, range strategies for
//! integers and floats, `collection::vec` with fixed or ranged sizes, and the
//! `prop_assert!` / `prop_assert_eq!` assertions. Instead of shrinking
//! counter-examples it simply runs a fixed number of deterministic
//! pseudo-random cases per test (seeded from the test name), which keeps
//! failures reproducible without any dependencies.

/// Number of pseudo-random cases each `proptest!` test executes.
pub const DEFAULT_CASES: usize = 64;

/// Deterministic case generator used by the strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary label (the test name).
    pub fn from_label(label: &str) -> Self {
        // FNV-1a over the label bytes gives a stable, platform-independent seed.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in label.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value below `bound` (which must be positive).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Generation strategies.
pub mod strategy {
    use super::TestRng;

    /// A recipe for producing pseudo-random values of one type.
    pub trait Strategy {
        /// The type of values produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_strategy!(f32, f64);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// A number of elements: fixed or drawn from a range per case.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Always exactly this many elements.
        Fixed(usize),
        /// Uniformly between the bounds (upper exclusive).
        Between(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange::Between(r.start, r.end)
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            match *self {
                SizeRange::Fixed(n) => n,
                SizeRange::Between(lo, hi) => {
                    assert!(lo < hi, "empty size range");
                    lo + rng.below((hi - lo) as u64) as usize
                }
            }
        }
    }

    /// Strategy producing vectors of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors with `size` elements of `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` item becomes
/// a `#[test]` that runs [`DEFAULT_CASES`] deterministic pseudo-random cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
                for __proptest_case in 0..$crate::DEFAULT_CASES {
                    $( let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut __proptest_rng); )+
                    $body
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(value in 10usize..20, scale in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&value));
            prop_assert!((-1.0..1.0).contains(&scale));
        }

        #[test]
        fn vec_strategy_sizes(rows in crate::collection::vec(crate::collection::vec(-1e3f64..1e3, 4), 2..20)) {
            prop_assert!((2..20).contains(&rows.len()));
            for row in &rows {
                prop_assert_eq!(row.len(), 4);
                prop_assert!(row.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = crate::TestRng::from_label("x");
        let mut b = crate::TestRng::from_label("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
