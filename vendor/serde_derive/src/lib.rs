//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` crate implements `Serialize`/`Deserialize` as blanket
//! marker traits, so these derive macros have nothing to generate: they exist
//! purely so that `#[derive(Serialize, Deserialize)]` (and `#[serde(...)]`
//! helper attributes) keep compiling without network access to crates.io.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the trait is blanket-implemented in `serde`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; the trait is blanket-implemented in `serde`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
