//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `iter`, `iter_batched`) backed by a simple wall-clock
//! loop: a warm-up call followed by `sample_size` timed iterations, reporting
//! the mean time per iteration. When invoked with `--test` (as `cargo test`
//! does for `harness = false` bench targets) every benchmark body runs exactly
//! once so the target doubles as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup values.
    SmallInput,
    /// Large per-iteration setup values.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timing loop of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.iterations.max(1) as u32);
    }

    /// Times `routine` with a fresh `setup` value per call, excluding setup
    /// time from the measurement.
    pub fn iter_batched<S, O, Setup, R>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = Some(total / self.iterations.max(1) as u32);
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
    smoke_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness-less bench targets with `--test`; run
        // each body once there so benches double as smoke tests.
        let smoke_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            smoke_mode,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let report = run_one(self.iterations(None), &mut f);
        println!("bench {id}: {report}");
        self
    }

    fn iterations(&self, group_override: Option<u64>) -> u64 {
        if self.smoke_mode {
            1
        } else {
            group_override.unwrap_or(self.sample_size)
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(iterations: u64, f: &mut F) -> String {
    let mut bencher = Bencher {
        iterations,
        mean: None,
    };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => format!("{:.3?}/iter ({iterations} iterations)", mean),
        None => "no measurement recorded".to_string(),
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let iterations = self.parent.iterations(self.sample_size);
        let report = run_one(iterations, &mut f);
        println!("bench {}/{id}: {report}", self.name);
        self
    }

    /// Benchmarks `f` under `id` with a shared `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let iterations = self.parent.iterations(self.sample_size);
        let report = run_one(iterations, &mut |b: &mut Bencher| f(b, input));
        println!("bench {}/{id}: {report}", self.name);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Re-export matching criterion's path for `black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_mean() {
        let mut c = Criterion {
            sample_size: 3,
            smoke_mode: false,
        };
        let mut calls = 0u64;
        c.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // One warm-up call plus three timed iterations.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_apply_sample_size() {
        let mut c = Criterion {
            sample_size: 10,
            smoke_mode: false,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &_| {
            b.iter_batched(|| (), |()| calls += 1, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(calls, 3);
    }
}
