//! Ground-truth response surfaces.
//!
//! A response surface maps a configuration to the *true mean runtime* of the
//! corresponding binary. The shapes follow what the paper observes on real
//! hardware:
//!
//! * unroll factors produce plateau-then-climb responses (Figure 2: `adi`
//!   stays near 2.1 s until an unroll factor of about 10, then climbs and
//!   levels off near 3.1 s),
//! * tiling factors produce U-shaped responses with a sweet spot,
//! * a few parameter pairs interact,
//! * and the surface carries a small deterministic per-binary "layout
//!   wiggle" representing code-layout effects that persist across runs of
//!   the same binary.
//!
//! Every coefficient is derived deterministically from a seed so a kernel's
//! surface is identical across processes and platforms.

use rand::Rng;
use serde::{Deserialize, Serialize};

use alic_stats::rng::{seeded_stream, Rng as StatsRng};

use crate::space::{Configuration, ParamKind, ParameterSpace};

/// Parametric shape of a single parameter's effect on runtime.
///
/// All shapes are evaluated on the *normalized* parameter position
/// `t ∈ [0, 1]` and return a relative runtime contribution (e.g. `0.3` means
/// "+30% of the base runtime").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EffectShape {
    /// Flat response: the parameter barely matters.
    Flat {
        /// Constant relative contribution.
        level: f64,
    },
    /// Sigmoid rise from ~0 to `amplitude` once `t` passes `threshold`
    /// (the Figure 2 unroll response).
    RisingPlateau {
        /// Normalized position of the rise.
        threshold: f64,
        /// Steepness of the sigmoid (larger is sharper).
        steepness: f64,
        /// Total rise in relative runtime.
        amplitude: f64,
    },
    /// Quadratic valley: performance improves towards `optimum` and degrades
    /// away from it (typical tiling response).
    Valley {
        /// Normalized position of the best value.
        optimum: f64,
        /// Depth of the valley (how much the optimum helps), as a relative
        /// runtime reduction.
        depth: f64,
        /// Penalty factor for moving away from the optimum.
        penalty: f64,
    },
    /// Linear trend in the normalized position.
    Linear {
        /// Relative runtime change from `t = 0` to `t = 1`.
        slope: f64,
    },
}

impl EffectShape {
    /// Evaluates the shape at normalized position `t ∈ [0, 1]`.
    pub fn evaluate(&self, t: f64) -> f64 {
        match *self {
            EffectShape::Flat { level } => level,
            EffectShape::RisingPlateau {
                threshold,
                steepness,
                amplitude,
            } => {
                let z = steepness * (t - threshold);
                amplitude / (1.0 + (-z).exp())
            }
            EffectShape::Valley {
                optimum,
                depth,
                penalty,
            } => {
                let d = t - optimum;
                penalty * d * d - depth
            }
            EffectShape::Linear { slope } => slope * t,
        }
    }
}

/// Pairwise interaction between two parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Interaction {
    left: usize,
    right: usize,
    coefficient: f64,
}

/// Deterministic ground-truth response surface over a parameter space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseSurface {
    base_runtime: f64,
    shapes: Vec<EffectShape>,
    interactions: Vec<Interaction>,
    layout_wiggle: f64,
    mins: Vec<u32>,
    maxs: Vec<u32>,
}

impl ResponseSurface {
    /// Builds a surface for `space` with base runtime `base_runtime` seconds.
    ///
    /// Per-parameter shapes are drawn deterministically from `seed`;
    /// `overrides` pins the shape of specific parameters (used to reproduce
    /// the exact responses shown in the paper's Figures 1 and 2).
    pub fn new(
        space: &ParameterSpace,
        base_runtime: f64,
        seed: u64,
        overrides: &[(usize, EffectShape)],
    ) -> Self {
        let mut rng = seeded_stream(seed, 0xa11c);
        let dim = space.dimension();
        let mut shapes = Vec::with_capacity(dim);
        for (i, spec) in space.params().iter().enumerate() {
            // Earlier (outer) loops matter more, mirroring how outer-loop
            // transformations dominate runtime in loop nests.
            let importance = 1.0 / (1.0 + 0.35 * i as f64);
            let shape = Self::draw_shape(&mut rng, spec.kind, importance);
            shapes.push(shape);
        }
        for (index, shape) in overrides {
            if *index < shapes.len() {
                shapes[*index] = *shape;
            }
        }
        // A handful of pairwise interactions.
        let n_inter = (dim / 2).min(6);
        let mut interactions = Vec::with_capacity(n_inter);
        for _ in 0..n_inter {
            if dim < 2 {
                break;
            }
            let left = rng.gen_range(0..dim);
            let mut right = rng.gen_range(0..dim);
            if right == left {
                right = (right + 1) % dim;
            }
            let coefficient = rng.gen_range(-0.06..0.12);
            interactions.push(Interaction {
                left,
                right,
                coefficient,
            });
        }
        ResponseSurface {
            base_runtime,
            shapes,
            interactions,
            layout_wiggle: 0.004,
            mins: space.params().iter().map(|p| p.min).collect(),
            maxs: space.params().iter().map(|p| p.max).collect(),
        }
    }

    fn draw_shape(rng: &mut StatsRng, kind: ParamKind, importance: f64) -> EffectShape {
        match kind {
            ParamKind::Unroll => {
                let roll: f64 = rng.gen();
                if roll < 0.45 {
                    EffectShape::RisingPlateau {
                        threshold: rng.gen_range(0.2..0.6),
                        steepness: rng.gen_range(8.0..18.0),
                        amplitude: importance * rng.gen_range(0.1..0.5),
                    }
                } else if roll < 0.75 {
                    EffectShape::Valley {
                        optimum: rng.gen_range(0.1..0.5),
                        depth: importance * rng.gen_range(0.02..0.12),
                        penalty: importance * rng.gen_range(0.1..0.4),
                    }
                } else {
                    EffectShape::Flat {
                        level: rng.gen_range(-0.01..0.01),
                    }
                }
            }
            ParamKind::CacheTile => EffectShape::Valley {
                optimum: rng.gen_range(0.3..0.8),
                depth: importance * rng.gen_range(0.05..0.2),
                penalty: importance * rng.gen_range(0.2..0.6),
            },
            ParamKind::RegisterTile => EffectShape::Valley {
                optimum: rng.gen_range(0.1..0.5),
                depth: importance * rng.gen_range(0.01..0.08),
                penalty: importance * rng.gen_range(0.05..0.2),
            },
        }
    }

    /// Base runtime in seconds (the `-O2` reference point scale).
    pub fn base_runtime(&self) -> f64 {
        self.base_runtime
    }

    /// The per-parameter effect shapes.
    pub fn shapes(&self) -> &[EffectShape] {
        &self.shapes
    }

    /// Normalized position of `value` within parameter `index`'s range.
    fn normalized(&self, index: usize, value: u32) -> f64 {
        let min = self.mins[index];
        let max = self.maxs[index];
        if max == min {
            0.0
        } else {
            (value.saturating_sub(min)) as f64 / (max - min) as f64
        }
    }

    /// True mean runtime (seconds) of the binary produced by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` has a different arity than the surface's space.
    pub fn true_mean(&self, config: &Configuration) -> f64 {
        assert_eq!(
            config.len(),
            self.shapes.len(),
            "configuration arity does not match surface dimensionality"
        );
        let mut relative = 0.0;
        let mut positions = Vec::with_capacity(config.len());
        for (i, &v) in config.values().iter().enumerate() {
            let t = self.normalized(i, v);
            positions.push(t);
            relative += self.shapes[i].evaluate(t);
        }
        for inter in &self.interactions {
            relative += inter.coefficient * positions[inter.left] * positions[inter.right];
        }
        // Deterministic per-binary layout wiggle in [-1, 1].
        let wiggle = hash_to_unit(config) * self.layout_wiggle;
        let runtime = self.base_runtime * (1.0 + relative + wiggle);
        runtime.max(0.05 * self.base_runtime)
    }
}

/// Hashes a configuration to a deterministic value in `[-1, 1]`.
fn hash_to_unit(config: &Configuration) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in config.values() {
        h ^= v as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // Map the top 53 bits to [0, 1), then to [-1, 1].
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    2.0 * unit - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamSpec, ParameterSpace};

    fn unroll_space(dim: usize) -> ParameterSpace {
        ParameterSpace::new(
            (0..dim)
                .map(|i| ParamSpec::unroll(format!("u{i}")))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn surface_is_deterministic_for_a_seed() {
        let space = unroll_space(4);
        let a = ResponseSurface::new(&space, 1.0, 7, &[]);
        let b = ResponseSurface::new(&space, 1.0, 7, &[]);
        let config = Configuration::new(vec![5, 10, 15, 20]);
        assert_eq!(a.true_mean(&config), b.true_mean(&config));
    }

    #[test]
    fn different_seeds_give_different_surfaces() {
        let space = unroll_space(4);
        let a = ResponseSurface::new(&space, 1.0, 1, &[]);
        let b = ResponseSurface::new(&space, 1.0, 2, &[]);
        let config = Configuration::new(vec![20, 20, 20, 20]);
        assert_ne!(a.true_mean(&config), b.true_mean(&config));
    }

    #[test]
    fn runtimes_are_positive_and_bounded() {
        let space = unroll_space(6);
        let surface = ResponseSurface::new(&space, 2.0, 3, &[]);
        let mut rng = alic_stats::rng::seeded_rng(9);
        for _ in 0..200 {
            let c = space.sample(&mut rng);
            let y = surface.true_mean(&c);
            assert!(y > 0.0);
            assert!(
                y < 2.0 * 6.0,
                "relative effects should stay moderate, got {y}"
            );
        }
    }

    #[test]
    fn rising_plateau_override_reproduces_figure2_shape() {
        // One unroll parameter with the adi-like response: flat then +~48%.
        let space = unroll_space(1);
        let shape = EffectShape::RisingPlateau {
            threshold: 0.33,
            steepness: 14.0,
            amplitude: 0.48,
        };
        let surface = ResponseSurface::new(&space, 2.1, 5, &[(0, shape)]);
        let low = surface.true_mean(&Configuration::new(vec![2]));
        let high = surface.true_mean(&Configuration::new(vec![30]));
        assert!(
            low < 2.25,
            "low unroll should stay near the base runtime, got {low}"
        );
        assert!(
            high > 2.9,
            "high unroll should climb towards ~3.1 s, got {high}"
        );
        // Monotone non-decreasing along the sweep.
        let mut prev = 0.0;
        for u in 1..=30u32 {
            let y = surface.true_mean(&Configuration::new(vec![u]));
            assert!(y + 1e-6 >= prev, "response must not decrease (u={u})");
            prev = y;
        }
    }

    #[test]
    fn valley_shape_has_interior_minimum() {
        let shape = EffectShape::Valley {
            optimum: 0.5,
            depth: 0.1,
            penalty: 0.4,
        };
        let at_opt = shape.evaluate(0.5);
        assert!(at_opt < shape.evaluate(0.0));
        assert!(at_opt < shape.evaluate(1.0));
    }

    #[test]
    fn effect_shapes_evaluate_reasonably() {
        assert_eq!(EffectShape::Flat { level: 0.02 }.evaluate(0.7), 0.02);
        assert!((EffectShape::Linear { slope: 0.3 }.evaluate(0.5) - 0.15).abs() < 1e-12);
        let rp = EffectShape::RisingPlateau {
            threshold: 0.5,
            steepness: 10.0,
            amplitude: 0.4,
        };
        assert!(rp.evaluate(0.0) < 0.05);
        assert!(rp.evaluate(1.0) > 0.35);
    }

    #[test]
    fn layout_wiggle_is_small() {
        let space = unroll_space(3);
        let surface = ResponseSurface::new(&space, 1.0, 11, &[]);
        // Two configurations differing only in the least-important parameter
        // should have close but not identical runtimes.
        let a = surface.true_mean(&Configuration::new(vec![5, 5, 5]));
        let b = surface.true_mean(&Configuration::new(vec![5, 5, 6]));
        assert!((a - b).abs() < 0.3);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mismatched_configuration_panics() {
        let space = unroll_space(2);
        let surface = ResponseSurface::new(&space, 1.0, 1, &[]);
        surface.true_mean(&Configuration::new(vec![1]));
    }
}
