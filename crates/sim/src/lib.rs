//! Iterative-compilation simulator.
//!
//! The paper evaluates its active-learning technique on 11 kernels of the
//! SPAPT autotuning suite, compiled with gcc and timed on an Intel i7-4770K.
//! That hardware/software stack is not available here, so this crate builds
//! the closest synthetic equivalent: a **deterministic simulator** of the
//! iterative-compilation measurement process.
//!
//! For every kernel the simulator defines
//!
//! * a tunable **parameter space** (loop unroll factors, cache-tile sizes and
//!   register-tile factors per loop — [`space`]),
//! * a smooth ground-truth **response surface** mapping a configuration to a
//!   mean runtime ([`surface`]), shaped like the responses the paper shows
//!   (plateau-then-climb unroll response of Figure 2, U-shaped tiling
//!   response),
//! * a **heteroskedastic noise model** ([`noise`]) with Gaussian measurement
//!   jitter whose magnitude varies across the space, rare interference
//!   spikes, and per-run memory-layout perturbations, calibrated per kernel
//!   to the variance spreads of Table 2,
//! * a **compile-cost model** ([`cost`]) charging more for heavily unrolled
//!   code, and
//! * a [`Profiler`](profiler::Profiler) implementation
//!   ([`profiler::SimulatedProfiler`]) that exposes exactly the interface an
//!   iterative-compilation framework sees on real hardware: *compile a
//!   configuration, run it once, get one noisy runtime*.
//!
//! All algorithms in the workspace interact with the simulator only through
//! the [`profiler::Profiler`] trait, so swapping in a real compiler-and-run
//! harness requires implementing that single trait.
//!
//! # Examples
//!
//! ```
//! use alic_sim::spapt::{spapt_kernel, SpaptKernel};
//! use alic_sim::profiler::{Profiler, SimulatedProfiler};
//!
//! let spec = spapt_kernel(SpaptKernel::Mm);
//! let mut profiler = SimulatedProfiler::new(spec, 42);
//! let config = profiler.space().default_configuration();
//! let m = profiler.measure(&config);
//! assert!(m.runtime > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod kernel;
pub mod noise;
pub mod profiler;
pub mod space;
pub mod spapt;
pub mod surface;

pub use kernel::KernelSpec;
pub use profiler::{Measurement, Profiler, SimulatedProfiler};
pub use space::{Configuration, ParamKind, ParamSpec, ParameterSpace};
pub use spapt::SpaptKernel;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration had the wrong number of parameters for the space.
    ArityMismatch {
        /// Number of parameters the space defines.
        expected: usize,
        /// Number of values the configuration carried.
        actual: usize,
    },
    /// A configuration value was outside its parameter's allowed range.
    ValueOutOfRange {
        /// Index of the offending parameter.
        param: usize,
        /// The offending value.
        value: u32,
    },
    /// A kernel specification had no tunable parameters.
    EmptySpace,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ArityMismatch { expected, actual } => write!(
                f,
                "configuration has {actual} values but the space defines {expected} parameters"
            ),
            SimError::ValueOutOfRange { param, value } => {
                write!(f, "value {value} is out of range for parameter {param}")
            }
            SimError::EmptySpace => write!(f, "parameter space has no tunable parameters"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SimError>;
