//! Compile-cost model.
//!
//! The paper measures training cost as "the cumulative compilation and
//! runtimes of any executables used in training" (§4.3). Compilation is not
//! free, and its cost grows with how aggressively the code is transformed:
//! larger unroll factors and deeper tiling produce more code for the compiler
//! to process. This module provides a simple, deterministic model of that
//! cost.

use serde::{Deserialize, Serialize};

use crate::space::{Configuration, ParamKind, ParameterSpace};

/// Deterministic compile-time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompileCostModel {
    /// Compile time of the untuned configuration, in seconds.
    pub base_compile_time: f64,
    /// Additional relative cost when every unroll factor is at its maximum.
    pub unroll_weight: f64,
    /// Additional relative cost when every cache-tile exponent is maximal.
    pub tile_weight: f64,
    /// Additional relative cost when every register-tile factor is maximal.
    pub register_weight: f64,
}

impl CompileCostModel {
    /// Creates a model with the given base compile time and default
    /// transformation weights.
    pub fn new(base_compile_time: f64) -> Self {
        CompileCostModel {
            base_compile_time,
            unroll_weight: 0.8,
            tile_weight: 0.15,
            register_weight: 0.1,
        }
    }

    /// Compile time (seconds) for `config` in `space`.
    ///
    /// # Panics
    ///
    /// Panics if `config` has a different arity than `space`.
    pub fn compile_time(&self, space: &ParameterSpace, config: &Configuration) -> f64 {
        assert_eq!(
            config.len(),
            space.dimension(),
            "configuration arity does not match the parameter space"
        );
        let mut relative = 0.0;
        let mut unroll_count = 0usize;
        let mut tile_count = 0usize;
        let mut register_count = 0usize;
        for (spec, &v) in space.params().iter().zip(config.values()) {
            let t = if spec.max == spec.min {
                0.0
            } else {
                (v - spec.min) as f64 / (spec.max - spec.min) as f64
            };
            match spec.kind {
                ParamKind::Unroll => {
                    relative += self.unroll_weight * t;
                    unroll_count += 1;
                }
                ParamKind::CacheTile => {
                    relative += self.tile_weight * t;
                    tile_count += 1;
                }
                ParamKind::RegisterTile => {
                    relative += self.register_weight * t;
                    register_count += 1;
                }
            }
        }
        // Normalize so the maximal configuration costs roughly
        // (1 + unroll_weight + tile_weight + register_weight) × base,
        // independent of how many parameters of each kind exist.
        let normalizer =
            (unroll_count.max(1) + tile_count.max(1) + register_count.max(1)) as f64 / 3.0;
        self.base_compile_time * (1.0 + relative / normalizer)
    }
}

impl Default for CompileCostModel {
    fn default() -> Self {
        CompileCostModel::new(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamSpec, ParameterSpace};

    fn space() -> ParameterSpace {
        ParameterSpace::new(vec![
            ParamSpec::unroll("u1"),
            ParamSpec::unroll("u2"),
            ParamSpec::cache_tile("t1"),
            ParamSpec::register_tile("r1"),
        ])
        .unwrap()
    }

    #[test]
    fn minimal_configuration_costs_the_base_time() {
        let space = space();
        let model = CompileCostModel::new(2.0);
        let cost = model.compile_time(&space, &space.default_configuration());
        assert!((cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn more_unrolling_costs_more() {
        let space = space();
        let model = CompileCostModel::new(1.0);
        let low = model.compile_time(&space, &Configuration::new(vec![1, 1, 0, 1]));
        let high = model.compile_time(&space, &Configuration::new(vec![30, 30, 0, 1]));
        assert!(high > low);
    }

    #[test]
    fn cost_is_monotone_in_each_parameter() {
        let space = space();
        let model = CompileCostModel::new(1.5);
        let base = Configuration::new(vec![10, 10, 5, 8]);
        let base_cost = model.compile_time(&space, &base);
        for i in 0..4 {
            let mut values = base.values().to_vec();
            values[i] += 1;
            let bumped = model.compile_time(&space, &Configuration::new(values));
            assert!(bumped >= base_cost, "parameter {i} decreased compile cost");
        }
    }

    #[test]
    fn cost_stays_within_expected_band() {
        let space = space();
        let model = CompileCostModel::new(1.0);
        let max_config = Configuration::new(vec![30, 30, 11, 16]);
        let cost = model.compile_time(&space, &max_config);
        assert!(cost > 1.0 && cost < 3.0, "cost {cost} outside sane band");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mismatched_arity_panics() {
        let space = space();
        CompileCostModel::default().compile_time(&space, &Configuration::new(vec![1]));
    }
}
