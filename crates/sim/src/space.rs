//! Tunable parameter spaces and configurations.
//!
//! Every SPAPT search problem is defined by a set of integer tuning
//! parameters — loop unroll factors, cache-tile sizes, register-tile factors
//! (§4.1 of the paper). A [`ParameterSpace`] describes those parameters and a
//! [`Configuration`] assigns each a concrete value.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Result, SimError};

/// The kind of code transformation a tunable parameter controls.
///
/// The kind determines both the ground-truth response shape used by the
/// simulator and the compile-cost contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// Loop unroll factor (the paper's i1/i2 unroll factors; Figures 1–2).
    Unroll,
    /// Cache tiling (blocking) factor, expressed as an exponent of two.
    CacheTile,
    /// Register tiling factor.
    RegisterTile,
}

impl ParamKind {
    /// Human-readable name of the transformation.
    pub fn label(self) -> &'static str {
        match self {
            ParamKind::Unroll => "unroll",
            ParamKind::CacheTile => "cache-tile",
            ParamKind::RegisterTile => "register-tile",
        }
    }
}

/// One tunable parameter: a named integer with an inclusive range.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Parameter name, e.g. `"U_i1"`.
    pub name: String,
    /// Transformation kind.
    pub kind: ParamKind,
    /// Smallest allowed value (inclusive).
    pub min: u32,
    /// Largest allowed value (inclusive).
    pub max: u32,
}

impl ParamSpec {
    /// Creates a parameter specification.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(name: impl Into<String>, kind: ParamKind, min: u32, max: u32) -> Self {
        assert!(min <= max, "parameter range is empty ({min}..={max})");
        ParamSpec {
            name: name.into(),
            kind,
            min,
            max,
        }
    }

    /// Standard unroll-factor parameter `1..=30` as used in the paper's
    /// motivation study.
    pub fn unroll(name: impl Into<String>) -> Self {
        ParamSpec::new(name, ParamKind::Unroll, 1, 30)
    }

    /// Standard cache-tile exponent parameter `0..=11` (tile sizes 1–2048).
    pub fn cache_tile(name: impl Into<String>) -> Self {
        ParamSpec::new(name, ParamKind::CacheTile, 0, 11)
    }

    /// Standard register-tile parameter `1..=16`.
    pub fn register_tile(name: impl Into<String>) -> Self {
        ParamSpec::new(name, ParamKind::RegisterTile, 1, 16)
    }

    /// Number of distinct values the parameter can take.
    pub fn cardinality(&self) -> u64 {
        (self.max - self.min + 1) as u64
    }

    /// Whether `value` is inside the allowed range.
    pub fn contains(&self, value: u32) -> bool {
        (self.min..=self.max).contains(&value)
    }
}

/// A concrete assignment of one value per tunable parameter.
///
/// Configurations are plain value vectors; validity with respect to a space
/// is checked by [`ParameterSpace::validate`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    values: Vec<u32>,
}

impl Configuration {
    /// Creates a configuration from raw parameter values.
    pub fn new(values: Vec<u32>) -> Self {
        Configuration { values }
    }

    /// The raw parameter values.
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Number of parameter values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the configuration has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The configuration as a feature vector of `f64`, suitable for model
    /// input (before normalization).
    pub fn to_features(&self) -> Vec<f64> {
        self.values.iter().map(|&v| v as f64).collect()
    }
}

impl From<Vec<u32>> for Configuration {
    fn from(values: Vec<u32>) -> Self {
        Configuration::new(values)
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// The full tunable search space of a kernel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParameterSpace {
    params: Vec<ParamSpec>,
}

impl ParameterSpace {
    /// Creates a space from its parameter specifications.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySpace`] when `params` is empty.
    pub fn new(params: Vec<ParamSpec>) -> Result<Self> {
        if params.is_empty() {
            return Err(SimError::EmptySpace);
        }
        Ok(ParameterSpace { params })
    }

    /// The parameter specifications.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Number of tunable parameters (the model's feature dimensionality).
    pub fn dimension(&self) -> usize {
        self.params.len()
    }

    /// Total number of distinct configurations (the paper's Table 1 "search
    /// space" column), saturating at `u64::MAX`.
    pub fn cardinality(&self) -> u64 {
        self.params
            .iter()
            .fold(1u64, |acc, p| acc.saturating_mul(p.cardinality()))
    }

    /// Total number of distinct configurations as a floating-point number
    /// (the spaces in the paper reach 1.33e27, far beyond `u64`).
    pub fn cardinality_f64(&self) -> f64 {
        self.params.iter().map(|p| p.cardinality() as f64).product()
    }

    /// The configuration with every parameter at its minimum (the untuned
    /// `-O2` baseline point).
    pub fn default_configuration(&self) -> Configuration {
        Configuration::new(self.params.iter().map(|p| p.min).collect())
    }

    /// Checks that `config` is valid for this space.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ArityMismatch`] or [`SimError::ValueOutOfRange`].
    pub fn validate(&self, config: &Configuration) -> Result<()> {
        if config.len() != self.dimension() {
            return Err(SimError::ArityMismatch {
                expected: self.dimension(),
                actual: config.len(),
            });
        }
        for (i, (&v, spec)) in config.values().iter().zip(&self.params).enumerate() {
            if !spec.contains(v) {
                return Err(SimError::ValueOutOfRange { param: i, value: v });
            }
        }
        Ok(())
    }

    /// Draws one configuration uniformly at random.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Configuration {
        Configuration::new(
            self.params
                .iter()
                .map(|p| rng.gen_range(p.min..=p.max))
                .collect(),
        )
    }

    /// Draws `count` *distinct* configurations uniformly at random.
    ///
    /// The paper profiles 10,000 distinct randomly selected configurations
    /// per kernel (§4.5). Distinctness is enforced by rejection, which is
    /// cheap because the spaces are many orders of magnitude larger than the
    /// requested sample.
    pub fn sample_distinct<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
    ) -> Vec<Configuration> {
        let mut seen = std::collections::HashSet::with_capacity(count);
        let mut out = Vec::with_capacity(count);
        // Bound the loop to avoid spinning forever on tiny spaces.
        let card = self.cardinality();
        let target = (count as u64).min(card) as usize;
        let mut attempts = 0u64;
        let max_attempts = (target as u64).saturating_mul(1000).max(10_000);
        while out.len() < target && attempts < max_attempts {
            attempts += 1;
            let config = self.sample(rng);
            if seen.insert(config.clone()) {
                out.push(config);
            }
        }
        // For pathological small spaces, fall back to enumeration.
        if out.len() < target {
            for config in self.enumerate() {
                if out.len() >= target {
                    break;
                }
                if seen.insert(config.clone()) {
                    out.push(config);
                }
            }
        }
        out
    }

    /// Exhaustively enumerates the space in lexicographic order.
    ///
    /// Intended for small sub-spaces such as the 30×30 unroll plane of the
    /// Figure 1 motivation study; enumerating one of the full SPAPT-sized
    /// spaces would never terminate in practice.
    pub fn enumerate(&self) -> Enumerate<'_> {
        Enumerate {
            space: self,
            next: Some(self.default_configuration()),
        }
    }

    /// Returns the neighbouring configurations of `config` (each parameter
    /// moved one step up or down), used by local-search baselines.
    pub fn neighbours(&self, config: &Configuration) -> Vec<Configuration> {
        let mut out = Vec::new();
        for (i, spec) in self.params.iter().enumerate() {
            let v = config.values()[i];
            if v > spec.min {
                let mut values = config.values().to_vec();
                values[i] = v - 1;
                out.push(Configuration::new(values));
            }
            if v < spec.max {
                let mut values = config.values().to_vec();
                values[i] = v + 1;
                out.push(Configuration::new(values));
            }
        }
        out
    }
}

/// Iterator over every configuration of a [`ParameterSpace`], in
/// lexicographic order. Produced by [`ParameterSpace::enumerate`].
#[derive(Debug)]
pub struct Enumerate<'a> {
    space: &'a ParameterSpace,
    next: Option<Configuration>,
}

impl Iterator for Enumerate<'_> {
    type Item = Configuration;

    fn next(&mut self) -> Option<Configuration> {
        let current = self.next.take()?;
        // Compute the successor.
        let mut values = current.values().to_vec();
        let mut idx = values.len();
        loop {
            if idx == 0 {
                self.next = None;
                break;
            }
            idx -= 1;
            let spec = &self.space.params()[idx];
            if values[idx] < spec.max {
                values[idx] += 1;
                self.next = Some(Configuration::new(values));
                break;
            }
            values[idx] = spec.min;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alic_stats::rng::seeded_rng;
    use std::collections::HashSet;

    fn small_space() -> ParameterSpace {
        ParameterSpace::new(vec![
            ParamSpec::new("U_i1", ParamKind::Unroll, 1, 3),
            ParamSpec::new("T_j", ParamKind::CacheTile, 0, 2),
        ])
        .unwrap()
    }

    #[test]
    fn cardinality_is_product_of_ranges() {
        assert_eq!(small_space().cardinality(), 9);
        assert_eq!(small_space().cardinality_f64(), 9.0);
    }

    #[test]
    fn standard_parameter_constructors() {
        assert_eq!(ParamSpec::unroll("u").cardinality(), 30);
        assert_eq!(ParamSpec::cache_tile("t").cardinality(), 12);
        assert_eq!(ParamSpec::register_tile("r").cardinality(), 16);
    }

    #[test]
    fn empty_space_is_rejected() {
        assert_eq!(ParameterSpace::new(vec![]), Err(SimError::EmptySpace));
    }

    #[test]
    fn validation_catches_arity_and_range_errors() {
        let space = small_space();
        assert!(space.validate(&Configuration::new(vec![1, 0])).is_ok());
        assert_eq!(
            space.validate(&Configuration::new(vec![1])),
            Err(SimError::ArityMismatch {
                expected: 2,
                actual: 1
            })
        );
        assert_eq!(
            space.validate(&Configuration::new(vec![4, 0])),
            Err(SimError::ValueOutOfRange { param: 0, value: 4 })
        );
    }

    #[test]
    fn default_configuration_is_valid_and_minimal() {
        let space = small_space();
        let d = space.default_configuration();
        assert!(space.validate(&d).is_ok());
        assert_eq!(d.values(), &[1, 0]);
    }

    #[test]
    fn random_samples_are_valid() {
        let space = small_space();
        let mut rng = seeded_rng(1);
        for _ in 0..100 {
            let c = space.sample(&mut rng);
            assert!(space.validate(&c).is_ok());
        }
    }

    #[test]
    fn distinct_sampling_returns_unique_configs() {
        let space = ParameterSpace::new(vec![
            ParamSpec::unroll("a"),
            ParamSpec::unroll("b"),
            ParamSpec::unroll("c"),
        ])
        .unwrap();
        let mut rng = seeded_rng(7);
        let configs = space.sample_distinct(&mut rng, 500);
        assert_eq!(configs.len(), 500);
        let unique: HashSet<_> = configs.iter().collect();
        assert_eq!(unique.len(), 500);
    }

    #[test]
    fn distinct_sampling_caps_at_space_size() {
        let space = small_space();
        let mut rng = seeded_rng(3);
        let configs = space.sample_distinct(&mut rng, 100);
        assert_eq!(configs.len(), 9);
    }

    #[test]
    fn enumeration_visits_every_configuration_once() {
        let space = small_space();
        let all: Vec<Configuration> = space.enumerate().collect();
        assert_eq!(all.len(), 9);
        let unique: HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 9);
        assert_eq!(all[0].values(), &[1, 0]);
        assert_eq!(all[8].values(), &[3, 2]);
    }

    #[test]
    fn neighbours_respect_bounds() {
        let space = small_space();
        let corner = space.default_configuration();
        let n = space.neighbours(&corner);
        // Only upward moves exist at the minimum corner.
        assert_eq!(n.len(), 2);
        for c in &n {
            assert!(space.validate(c).is_ok());
        }
        let middle = Configuration::new(vec![2, 1]);
        assert_eq!(space.neighbours(&middle).len(), 4);
    }

    #[test]
    fn features_are_plain_float_copies() {
        let c = Configuration::new(vec![3, 7, 11]);
        assert_eq!(c.to_features(), vec![3.0, 7.0, 11.0]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(format!("{c}"), "[3, 7, 11]");
    }

    #[test]
    #[should_panic(expected = "range is empty")]
    fn param_spec_rejects_inverted_range() {
        ParamSpec::new("bad", ParamKind::Unroll, 5, 2);
    }
}
