//! Simulated stand-ins for the 11 SPAPT benchmarks of the paper.
//!
//! The paper evaluates on 11 search problems from the SPAPT suite
//! (Balaprakash et al., ICCS 2012): `adi`, `atax`, `bicgkernel`,
//! `correlation`, `dgemv3`, `gemver`, `hessian`, `jacobi`, `lu`, `mm` and
//! `mvt`. For each one this module defines a [`KernelSpec`] whose
//!
//! * parameter-space cardinality is of the same order as the "search space"
//!   column of Table 1,
//! * runtime scale matches the RMSE magnitudes of Table 1 / Figure 6,
//! * noise calibration follows the per-kernel variance spreads of Table 2
//!   (e.g. `correlation` is extremely noisy, `mvt` and `lu` are almost
//!   quiet), and
//! * key response shapes are pinned to reproduce Figures 1 and 2 (the `adi`
//!   unroll plateau-then-climb and the `mm` unroll plane).
//!
//! The exact cardinalities differ from the paper's because the real SPAPT
//! constraint sets are not public in the paper; EXPERIMENTS.md records the
//! values actually used.

use serde::{Deserialize, Serialize};

use crate::kernel::KernelSpec;
use crate::noise::NoiseProfile;
use crate::space::ParamSpec;
use crate::surface::EffectShape;

/// The 11 SPAPT benchmarks used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SpaptKernel {
    Adi,
    Atax,
    Bicgkernel,
    Correlation,
    Dgemv3,
    Gemver,
    Hessian,
    Jacobi,
    Lu,
    Mm,
    Mvt,
}

impl SpaptKernel {
    /// All 11 kernels, in the order used by the paper's Table 1.
    pub fn all() -> [SpaptKernel; 11] {
        [
            SpaptKernel::Adi,
            SpaptKernel::Atax,
            SpaptKernel::Bicgkernel,
            SpaptKernel::Correlation,
            SpaptKernel::Dgemv3,
            SpaptKernel::Gemver,
            SpaptKernel::Hessian,
            SpaptKernel::Jacobi,
            SpaptKernel::Lu,
            SpaptKernel::Mm,
            SpaptKernel::Mvt,
        ]
    }

    /// Lower-case benchmark name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            SpaptKernel::Adi => "adi",
            SpaptKernel::Atax => "atax",
            SpaptKernel::Bicgkernel => "bicgkernel",
            SpaptKernel::Correlation => "correlation",
            SpaptKernel::Dgemv3 => "dgemv3",
            SpaptKernel::Gemver => "gemver",
            SpaptKernel::Hessian => "hessian",
            SpaptKernel::Jacobi => "jacobi",
            SpaptKernel::Lu => "lu",
            SpaptKernel::Mm => "mm",
            SpaptKernel::Mvt => "mvt",
        }
    }

    /// Parses a benchmark name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        let lower = name.to_ascii_lowercase();
        SpaptKernel::all().into_iter().find(|k| k.name() == lower)
    }
}

impl std::fmt::Display for SpaptKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Noise calibration derived from the paper's Table 2.
///
/// `sigma_quiet` approximates the square root of the *minimum*
/// per-configuration runtime variance of the kernel, `sigma_loud` the square
/// root of a high quantile, and the pocket multiplier pushes the worst
/// configurations towards the square root of the *maximum* variance. The
/// resulting per-configuration variances span the same orders of magnitude
/// that Table 2 reports.
fn calibrated_noise(sigma_quiet: f64, sigma_loud: f64, outlier_scale: f64) -> NoiseProfile {
    NoiseProfile {
        sigma_quiet,
        sigma_loud,
        pocket_fraction: 0.04,
        pocket_multiplier: 3.0,
        outlier_probability: 0.015,
        outlier_scale,
        layout_jitter: 0.001,
    }
}

fn unrolls(prefix: &str, count: usize) -> Vec<ParamSpec> {
    (1..=count)
        .map(|i| ParamSpec::unroll(format!("U_{prefix}{i}")))
        .collect()
}

/// Builds the simulated [`KernelSpec`] for one SPAPT benchmark.
///
/// # Examples
///
/// ```
/// use alic_sim::spapt::{spapt_kernel, SpaptKernel};
/// let adi = spapt_kernel(SpaptKernel::Adi);
/// assert_eq!(adi.name(), "adi");
/// assert!(adi.space().cardinality_f64() > 1e12);
/// ```
pub fn spapt_kernel(kernel: SpaptKernel) -> KernelSpec {
    match kernel {
        SpaptKernel::Adi => {
            // Table 1: search space 3.78e14; Table 2: mean var 2.34e-3, max 0.14.
            let mut params = unrolls("i", 9);
            params.push(ParamSpec::cache_tile("T_j"));
            KernelSpec::new(
                "adi",
                params,
                2.1,
                2.0,
                calibrated_noise(3.0e-5, 0.12, 0.04),
            )
            .expect("non-empty parameter list")
            .with_surface_seed(101)
            // Figure 2: flat near 2.1 s, climbing to ~3.1 s past unroll 10.
            .with_shape_override(
                0,
                EffectShape::RisingPlateau {
                    threshold: 0.33,
                    steepness: 14.0,
                    amplitude: 0.48,
                },
            )
        }
        SpaptKernel::Atax => {
            let mut params = unrolls("i", 7);
            params.push(ParamSpec::cache_tile("T_i"));
            params.push(ParamSpec::cache_tile("T_j"));
            KernelSpec::new(
                "atax",
                params,
                1.2,
                1.2,
                calibrated_noise(3.0e-5, 0.06, 0.05),
            )
            .expect("non-empty parameter list")
            .with_surface_seed(102)
        }
        SpaptKernel::Bicgkernel => KernelSpec::new(
            "bicgkernel",
            unrolls("i", 6),
            0.9,
            0.8,
            calibrated_noise(1.5e-5, 0.07, 0.05),
        )
        .expect("non-empty parameter list")
        .with_surface_seed(103),
        SpaptKernel::Correlation => {
            // Table 2: by far the noisiest kernel (mean var 0.42, max 8.02).
            let mut params = unrolls("i", 9);
            params.push(ParamSpec::cache_tile("T_i"));
            KernelSpec::new(
                "correlation",
                params,
                3.0,
                1.5,
                calibrated_noise(1.0e-3, 1.3, 0.25),
            )
            .expect("non-empty parameter list")
            .with_surface_seed(104)
        }
        SpaptKernel::Dgemv3 => {
            // Largest space in Table 1 (1.33e27): many loops to tune.
            KernelSpec::new(
                "dgemv3",
                unrolls("i", 18),
                0.8,
                1.0,
                calibrated_noise(3.0e-5, 0.055, 0.04),
            )
            .expect("non-empty parameter list")
            .with_surface_seed(105)
        }
        SpaptKernel::Gemver => {
            let mut params = unrolls("i", 10);
            params.push(ParamSpec::cache_tile("T_i"));
            KernelSpec::new(
                "gemver",
                params,
                2.5,
                1.8,
                calibrated_noise(4.0e-5, 0.23, 0.06),
            )
            .expect("non-empty parameter list")
            .with_surface_seed(106)
        }
        SpaptKernel::Hessian => KernelSpec::new(
            "hessian",
            unrolls("i", 5),
            0.1,
            0.4,
            calibrated_noise(5.0e-6, 4.7e-3, 0.03),
        )
        .expect("non-empty parameter list")
        .with_surface_seed(107),
        SpaptKernel::Jacobi => KernelSpec::new(
            "jacobi",
            unrolls("i", 5),
            1.0,
            0.7,
            calibrated_noise(1.6e-5, 0.1, 0.05),
        )
        .expect("non-empty parameter list")
        .with_surface_seed(108),
        SpaptKernel::Lu => KernelSpec::new(
            "lu",
            unrolls("i", 6),
            0.2,
            0.5,
            calibrated_noise(4.0e-6, 3.5e-3, 0.02),
        )
        .expect("non-empty parameter list")
        .with_surface_seed(109),
        SpaptKernel::Mm => {
            // Figure 1: the i1 × i2 unroll plane of matrix multiplication.
            let mut params = unrolls("i", 5);
            params.push(ParamSpec::cache_tile("T_i"));
            params.push(ParamSpec::cache_tile("T_j"));
            KernelSpec::new(
                "mm",
                params,
                0.08,
                0.3,
                calibrated_noise(1.7e-5, 0.012, 0.03),
            )
            .expect("non-empty parameter list")
            .with_surface_seed(110)
            .with_shape_override(
                0,
                EffectShape::RisingPlateau {
                    threshold: 0.45,
                    steepness: 10.0,
                    amplitude: 0.30,
                },
            )
            .with_shape_override(
                1,
                EffectShape::Valley {
                    optimum: 0.35,
                    depth: 0.05,
                    penalty: 0.25,
                },
            )
        }
        SpaptKernel::Mvt => KernelSpec::new(
            "mvt",
            unrolls("i", 5),
            0.03,
            0.2,
            calibrated_noise(3.0e-6, 9.0e-4, 0.02),
        )
        .expect("non-empty parameter list")
        .with_surface_seed(111),
    }
}

/// Builds all 11 simulated SPAPT kernels in Table 1 order.
pub fn all_spapt_kernels() -> Vec<KernelSpec> {
    SpaptKernel::all().into_iter().map(spapt_kernel).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{Profiler, SimulatedProfiler};
    use alic_stats::summary::Summary;

    #[test]
    fn all_kernels_have_distinct_names_and_seeds() {
        let kernels = all_spapt_kernels();
        assert_eq!(kernels.len(), 11);
        let names: std::collections::HashSet<_> = kernels.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 11);
        let seeds: std::collections::HashSet<_> =
            kernels.iter().map(|k| k.surface_seed()).collect();
        assert_eq!(seeds.len(), 11);
    }

    #[test]
    fn names_round_trip() {
        for k in SpaptKernel::all() {
            assert_eq!(SpaptKernel::from_name(k.name()), Some(k));
            assert_eq!(format!("{k}"), k.name());
        }
        assert_eq!(SpaptKernel::from_name("ADI"), Some(SpaptKernel::Adi));
        assert_eq!(SpaptKernel::from_name("nosuch"), None);
    }

    #[test]
    fn search_space_orders_of_magnitude_match_table1() {
        // (kernel, paper cardinality) — we require the simulated space to be
        // within two orders of magnitude.
        let expectations = [
            (SpaptKernel::Adi, 3.78e14),
            (SpaptKernel::Atax, 2.57e12),
            (SpaptKernel::Bicgkernel, 5.83e8),
            (SpaptKernel::Correlation, 3.78e14),
            (SpaptKernel::Dgemv3, 1.33e27),
            (SpaptKernel::Gemver, 1.14e16),
            (SpaptKernel::Hessian, 1.95e7),
            (SpaptKernel::Jacobi, 1.95e7),
            (SpaptKernel::Lu, 5.83e8),
            (SpaptKernel::Mm, 3.18e9),
            (SpaptKernel::Mvt, 1.95e7),
        ];
        for (kernel, paper) in expectations {
            let actual = spapt_kernel(kernel).space().cardinality_f64();
            let ratio = actual / paper;
            assert!(
                (0.01..=100.0).contains(&ratio),
                "{kernel}: simulated cardinality {actual:e} too far from paper {paper:e}"
            );
        }
    }

    #[test]
    fn correlation_is_much_noisier_than_mvt() {
        let correlation = spapt_kernel(SpaptKernel::Correlation);
        let mvt = spapt_kernel(SpaptKernel::Mvt);
        assert!(correlation.noise().sigma_loud > 1000.0 * mvt.noise().sigma_loud);
    }

    #[test]
    fn adi_reproduces_the_figure2_sweep() {
        let profiler = SimulatedProfiler::new(spapt_kernel(SpaptKernel::Adi), 1);
        let space = profiler.space().clone();
        let mut low_end = Vec::new();
        let mut high_end = Vec::new();
        for u in 1..=30u32 {
            let mut values: Vec<u32> = space.default_configuration().values().to_vec();
            values[0] = u;
            let y = profiler.true_mean(&crate::space::Configuration::new(values));
            if u <= 8 {
                low_end.push(y);
            }
            if u >= 25 {
                high_end.push(y);
            }
        }
        let low = Summary::from_slice(&low_end).mean;
        let high = Summary::from_slice(&high_end).mean;
        assert!(
            low < 2.4,
            "low-unroll plateau should sit near 2.1 s, got {low}"
        );
        assert!(
            high > low + 0.7,
            "high unroll should climb by ~1 s, got {high} vs {low}"
        );
    }

    #[test]
    fn runtime_scales_are_ordered_like_the_paper() {
        // correlation/adi/gemver are seconds-scale, mm/mvt are tens of
        // milliseconds.
        let runtime = |k| spapt_kernel(k).base_runtime();
        assert!(runtime(SpaptKernel::Correlation) > 1.0);
        assert!(runtime(SpaptKernel::Adi) > 1.0);
        assert!(runtime(SpaptKernel::Mm) < 0.2);
        assert!(runtime(SpaptKernel::Mvt) < 0.2);
    }

    #[test]
    fn measured_variance_reflects_table2_ordering() {
        // Sample a few random configurations per kernel and check that the
        // noisiest kernel (correlation) has far higher measured variance than
        // one of the quiet ones (lu).
        let measure_var = |kernel: SpaptKernel| {
            let mut profiler = SimulatedProfiler::new(spapt_kernel(kernel), 3);
            let mut rng = alic_stats::rng::seeded_rng(9);
            let mut vars = Vec::new();
            for _ in 0..10 {
                let config = profiler.space().sample(&mut rng);
                let xs: Vec<f64> = (0..35).map(|_| profiler.measure(&config).runtime).collect();
                vars.push(Summary::from_slice(&xs).variance);
            }
            Summary::from_slice(&vars).mean
        };
        let correlation = measure_var(SpaptKernel::Correlation);
        let lu = measure_var(SpaptKernel::Lu);
        assert!(
            correlation > 100.0 * lu,
            "correlation variance {correlation} should dwarf lu variance {lu}"
        );
    }
}
