//! Kernel specifications.
//!
//! A [`KernelSpec`] bundles everything the simulator needs to stand in for
//! one benchmark of the paper's evaluation: the tunable parameter space, the
//! scale of its runtime and compile time, the calibration of its measurement
//! noise, and (optionally) pinned response shapes for specific parameters so
//! that the figures of the paper can be reproduced exactly.

use serde::{Deserialize, Serialize};

use crate::noise::NoiseProfile;
use crate::space::{ParamSpec, ParameterSpace};
use crate::surface::EffectShape;
use crate::Result;

/// Complete description of a simulated benchmark kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSpec {
    name: String,
    space: ParameterSpace,
    base_runtime: f64,
    base_compile_time: f64,
    noise: NoiseProfile,
    surface_seed: u64,
    shape_overrides: Vec<(usize, EffectShape)>,
}

impl KernelSpec {
    /// Creates a kernel specification.
    ///
    /// # Errors
    ///
    /// Returns an error if `params` is empty.
    pub fn new(
        name: impl Into<String>,
        params: Vec<ParamSpec>,
        base_runtime: f64,
        base_compile_time: f64,
        noise: NoiseProfile,
    ) -> Result<Self> {
        Ok(KernelSpec {
            name: name.into(),
            space: ParameterSpace::new(params)?,
            base_runtime,
            base_compile_time,
            noise,
            surface_seed: 0,
            shape_overrides: Vec::new(),
        })
    }

    /// Builder-style: sets the seed from which the ground-truth surface is
    /// derived. Kernels with different seeds have different surfaces.
    pub fn with_surface_seed(mut self, seed: u64) -> Self {
        self.surface_seed = seed;
        self
    }

    /// Builder-style: pins the response shape of the parameter at `index`.
    pub fn with_shape_override(mut self, index: usize, shape: EffectShape) -> Self {
        self.shape_overrides.push((index, shape));
        self
    }

    /// Builder-style: replaces the noise profile.
    pub fn with_noise(mut self, noise: NoiseProfile) -> Self {
        self.noise = noise;
        self
    }

    /// Kernel name (e.g. `"adi"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tunable parameter space.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    /// Runtime scale of the untuned kernel, in seconds.
    pub fn base_runtime(&self) -> f64 {
        self.base_runtime
    }

    /// Compile time of the untuned kernel, in seconds.
    pub fn base_compile_time(&self) -> f64 {
        self.base_compile_time
    }

    /// Noise calibration for this kernel.
    pub fn noise(&self) -> &NoiseProfile {
        &self.noise
    }

    /// Seed from which the ground-truth surface is derived.
    pub fn surface_seed(&self) -> u64 {
        self.surface_seed
    }

    /// Pinned response shapes, as `(parameter index, shape)` pairs.
    pub fn shape_overrides(&self) -> &[(usize, EffectShape)] {
        &self.shape_overrides
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParamKind;

    #[test]
    fn builder_methods_compose() {
        let spec = KernelSpec::new(
            "toy",
            vec![ParamSpec::unroll("u")],
            1.5,
            0.5,
            NoiseProfile::quiet(),
        )
        .unwrap()
        .with_surface_seed(9)
        .with_shape_override(0, EffectShape::Linear { slope: 0.2 })
        .with_noise(NoiseProfile::moderate());

        assert_eq!(spec.name(), "toy");
        assert_eq!(spec.surface_seed(), 9);
        assert_eq!(spec.shape_overrides().len(), 1);
        assert_eq!(spec.space().dimension(), 1);
        assert_eq!(spec.space().params()[0].kind, ParamKind::Unroll);
        assert!((spec.base_runtime() - 1.5).abs() < 1e-12);
        assert!((spec.base_compile_time() - 0.5).abs() < 1e-12);
        assert_eq!(spec.noise(), &NoiseProfile::moderate());
    }

    #[test]
    fn empty_parameter_list_is_rejected() {
        let err = KernelSpec::new("bad", vec![], 1.0, 1.0, NoiseProfile::quiet());
        assert!(err.is_err());
    }
}
