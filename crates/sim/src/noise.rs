//! Heteroskedastic measurement-noise model.
//!
//! The paper's central premise is that runtime measurements are noisy, that
//! the amount of noise varies wildly across the optimization space (Table 2
//! shows per-kernel variance spanning six to eight orders of magnitude
//! between configurations), and that the noise therefore has to be handled
//! rather than assumed away. This module models the noise sources discussed
//! in §1:
//!
//! * **Measurement jitter** — zero-mean Gaussian noise whose standard
//!   deviation varies *log-linearly* between a quiet end ([`NoiseProfile::
//!   sigma_quiet`]) and a loud end ([`NoiseProfile::sigma_loud`]) of a
//!   smooth, deterministic *noise field*, giving the orders-of-magnitude
//!   spread Table 2 reports,
//! * **High-noise pockets** — small regions of the space where the noise is
//!   several times larger still (the "some parts of the space suffer from
//!   extreme noise" observation of §5.2),
//! * **Interference spikes** — rare, strictly positive outliers modelling
//!   other processes stealing cores/caches/memory bandwidth,
//! * **Per-run layout perturbation** — a uniform relative perturbation
//!   modelling address-space layout randomization re-randomizing every run.

use rand::Rng;
use serde::{Deserialize, Serialize};

use alic_stats::rng::seeded_stream;

use crate::space::{Configuration, ParameterSpace};

/// Per-kernel calibration of the noise model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseProfile {
    /// Standard deviation of the Gaussian jitter at the quiet end of the
    /// noise field, in seconds.
    pub sigma_quiet: f64,
    /// Standard deviation at the loud end of the noise field, in seconds.
    pub sigma_loud: f64,
    /// Fraction of the space (approximately) covered by high-noise pockets.
    pub pocket_fraction: f64,
    /// Additional noise multiplier inside a pocket.
    pub pocket_multiplier: f64,
    /// Probability that a single run is hit by an interference spike.
    pub outlier_probability: f64,
    /// Mean size of an interference spike, as a fraction of the true mean.
    pub outlier_scale: f64,
    /// Half-width of the per-run layout perturbation, as a fraction of the
    /// true mean runtime.
    pub layout_jitter: f64,
}

impl NoiseProfile {
    /// A quiet profile suitable for tests that need near-deterministic
    /// measurements.
    pub fn quiet() -> Self {
        NoiseProfile {
            sigma_quiet: 1e-6,
            sigma_loud: 1e-6,
            pocket_fraction: 0.0,
            pocket_multiplier: 1.0,
            outlier_probability: 0.0,
            outlier_scale: 0.0,
            layout_jitter: 0.0,
        }
    }

    /// A moderate default profile (roughly the median kernel of Table 2).
    pub fn moderate() -> Self {
        NoiseProfile {
            sigma_quiet: 2e-4,
            sigma_loud: 0.02,
            pocket_fraction: 0.04,
            pocket_multiplier: 5.0,
            outlier_probability: 0.02,
            outlier_scale: 0.05,
            layout_jitter: 0.002,
        }
    }

    /// Returns a copy with every noise magnitude multiplied by `factor`.
    ///
    /// Used by the noise-robustness ablation (the paper's §7 proposes
    /// artificially introducing noise as future work).
    pub fn scaled(&self, factor: f64) -> Self {
        NoiseProfile {
            sigma_quiet: self.sigma_quiet * factor,
            sigma_loud: self.sigma_loud * factor,
            pocket_fraction: self.pocket_fraction,
            pocket_multiplier: self.pocket_multiplier,
            outlier_probability: (self.outlier_probability * factor).min(0.5),
            outlier_scale: self.outlier_scale * factor,
            layout_jitter: self.layout_jitter * factor,
        }
    }

    /// Ratio between the loud and quiet ends of the noise field.
    pub fn dynamic_range(&self) -> f64 {
        if self.sigma_quiet > 0.0 {
            self.sigma_loud / self.sigma_quiet
        } else {
            1.0
        }
    }
}

impl Default for NoiseProfile {
    fn default() -> Self {
        NoiseProfile::moderate()
    }
}

/// Deterministic, seeded noise model over a parameter space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    profile: NoiseProfile,
    // Random projection weights defining the smooth noise field.
    field_weights: Vec<f64>,
    field_phase: f64,
    // Second projection defining pocket membership.
    pocket_weights: Vec<f64>,
    pocket_phase: f64,
    mins: Vec<u32>,
    maxs: Vec<u32>,
}

impl NoiseModel {
    /// Builds a noise model for `space`, deriving the noise field
    /// deterministically from `seed`.
    pub fn new(space: &ParameterSpace, profile: NoiseProfile, seed: u64) -> Self {
        let mut rng = seeded_stream(seed, 0x0153);
        let dim = space.dimension();
        let field_weights: Vec<f64> = (0..dim).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let pocket_weights: Vec<f64> = (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect();
        NoiseModel {
            profile,
            field_weights,
            field_phase: rng.gen_range(0.0..std::f64::consts::TAU),
            pocket_weights,
            pocket_phase: rng.gen_range(0.0..std::f64::consts::TAU),
            mins: space.params().iter().map(|p| p.min).collect(),
            maxs: space.params().iter().map(|p| p.max).collect(),
        }
    }

    /// The calibration profile in use.
    pub fn profile(&self) -> &NoiseProfile {
        &self.profile
    }

    /// Replaces the calibration profile (e.g. with a scaled one).
    pub fn set_profile(&mut self, profile: NoiseProfile) {
        self.profile = profile;
    }

    fn normalized_positions(&self, config: &Configuration) -> Vec<f64> {
        config
            .values()
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let min = self.mins[i];
                let max = self.maxs[i];
                if max == min {
                    0.0
                } else {
                    (v.saturating_sub(min)) as f64 / (max - min) as f64
                }
            })
            .collect()
    }

    /// The smooth noise-field value at `config`, in `[0, 1]`.
    pub fn field(&self, config: &Configuration) -> f64 {
        let t = self.normalized_positions(config);
        let projection: f64 = t
            .iter()
            .zip(&self.field_weights)
            .map(|(x, w)| x * w)
            .sum::<f64>()
            + self.field_phase;
        0.5 * (1.0 + projection.cos())
    }

    /// Whether `config` lies inside a high-noise pocket.
    pub fn in_pocket(&self, config: &Configuration) -> bool {
        if self.profile.pocket_fraction <= 0.0 {
            return false;
        }
        let t = self.normalized_positions(config);
        let projection: f64 = t
            .iter()
            .zip(&self.pocket_weights)
            .map(|(x, w)| x * w)
            .sum::<f64>()
            + self.pocket_phase;
        // cos(projection) lands in [-1, 1]; configurations in the top
        // `pocket_fraction` slice of that range are "pockets".
        let u = 0.5 * (1.0 + projection.cos());
        u > 1.0 - self.profile.pocket_fraction
    }

    /// Standard deviation of the Gaussian jitter at `config`, in seconds.
    ///
    /// Interpolates log-linearly between `sigma_quiet` and `sigma_loud`
    /// according to the noise field, then applies the pocket multiplier.
    pub fn sigma(&self, config: &Configuration) -> f64 {
        let field = self.field(config);
        let quiet = self.profile.sigma_quiet.max(1e-12);
        let loud = self.profile.sigma_loud.max(quiet);
        let mut sigma = quiet * (loud / quiet).powf(field);
        if self.in_pocket(config) {
            sigma *= self.profile.pocket_multiplier;
        }
        sigma
    }

    /// Draws one noisy runtime observation around `true_mean` at `config`.
    ///
    /// The result is clamped to stay strictly positive.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        config: &Configuration,
        true_mean: f64,
    ) -> f64 {
        let sigma = self.sigma(config);
        // Box-Muller Gaussian.
        let gaussian = {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let mut runtime = true_mean + sigma * gaussian;
        // Per-run layout perturbation (ASLR re-randomizes every execution).
        if self.profile.layout_jitter > 0.0 {
            let jitter = rng.gen_range(-1.0..1.0) * self.profile.layout_jitter * true_mean;
            runtime += jitter;
        }
        // Interference spike: strictly positive, exponential tail.
        if self.profile.outlier_probability > 0.0
            && rng.gen::<f64>() < self.profile.outlier_probability
        {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            runtime += -u.ln() * self.profile.outlier_scale * true_mean;
        }
        runtime.max(1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamSpec, ParameterSpace};
    use alic_stats::rng::seeded_rng;
    use alic_stats::summary::Summary;

    fn space() -> ParameterSpace {
        ParameterSpace::new(vec![
            ParamSpec::unroll("a"),
            ParamSpec::unroll("b"),
            ParamSpec::cache_tile("t"),
        ])
        .unwrap()
    }

    #[test]
    fn quiet_profile_is_essentially_deterministic() {
        let space = space();
        let model = NoiseModel::new(&space, NoiseProfile::quiet(), 1);
        let config = space.default_configuration();
        let mut rng = seeded_rng(5);
        for _ in 0..50 {
            let y = model.sample(&mut rng, &config, 1.0);
            assert!((y - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn sample_mean_converges_to_true_mean() {
        let space = space();
        let mut profile = NoiseProfile::moderate();
        profile.outlier_probability = 0.0; // keep symmetric for this check
        let model = NoiseModel::new(&space, profile, 2);
        let config = space.default_configuration();
        let mut rng = seeded_rng(7);
        let samples: Vec<f64> = (0..5000)
            .map(|_| model.sample(&mut rng, &config, 2.0))
            .collect();
        let s = Summary::from_slice(&samples);
        assert!((s.mean - 2.0).abs() < 0.01, "mean drifted: {}", s.mean);
    }

    #[test]
    fn sigma_spans_orders_of_magnitude_across_the_space() {
        let space = space();
        let model = NoiseModel::new(&space, NoiseProfile::moderate(), 3);
        let mut rng = seeded_rng(11);
        let sigmas: Vec<f64> = (0..2000)
            .map(|_| model.sigma(&space.sample(&mut rng)))
            .collect();
        let s = Summary::from_slice(&sigmas);
        assert!(
            s.max / s.min > 20.0,
            "noise field should span a wide dynamic range, got {}..{}",
            s.min,
            s.max
        );
        assert!(sigmas.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn pockets_cover_roughly_the_requested_fraction() {
        let space = space();
        let mut profile = NoiseProfile::moderate();
        profile.pocket_fraction = 0.1;
        let model = NoiseModel::new(&space, profile, 4);
        let mut rng = seeded_rng(13);
        let hits = (0..5000)
            .filter(|_| model.in_pocket(&space.sample(&mut rng)))
            .count();
        let frac = hits as f64 / 5000.0;
        assert!(
            frac > 0.02 && frac < 0.3,
            "pocket fraction {frac} out of band"
        );
    }

    #[test]
    fn outliers_skew_measurements_upwards() {
        let space = space();
        let mut profile = NoiseProfile::quiet();
        profile.outlier_probability = 0.3;
        profile.outlier_scale = 0.5;
        let model = NoiseModel::new(&space, profile, 5);
        let config = space.default_configuration();
        let mut rng = seeded_rng(17);
        let samples: Vec<f64> = (0..4000)
            .map(|_| model.sample(&mut rng, &config, 1.0))
            .collect();
        let s = Summary::from_slice(&samples);
        assert!(
            s.mean > 1.05,
            "interference should inflate the mean, got {}",
            s.mean
        );
        assert!(s.max > 1.3);
    }

    #[test]
    fn scaled_profile_scales_noise() {
        let base = NoiseProfile::moderate();
        let double = base.scaled(2.0);
        assert!((double.sigma_quiet - 2.0 * base.sigma_quiet).abs() < 1e-15);
        assert!((double.sigma_loud - 2.0 * base.sigma_loud).abs() < 1e-15);
        assert!(double.outlier_probability <= 0.5);
        assert!((base.dynamic_range() - double.dynamic_range()).abs() < 1e-9);
    }

    #[test]
    fn samples_are_always_positive() {
        let space = space();
        let mut profile = NoiseProfile::moderate();
        profile.sigma_quiet = 10.0;
        profile.sigma_loud = 10.0; // absurdly noisy
        let model = NoiseModel::new(&space, profile, 6);
        let config = space.default_configuration();
        let mut rng = seeded_rng(19);
        for _ in 0..500 {
            assert!(model.sample(&mut rng, &config, 0.01) > 0.0);
        }
    }

    #[test]
    fn noise_field_is_deterministic() {
        let space = space();
        let a = NoiseModel::new(&space, NoiseProfile::moderate(), 42);
        let b = NoiseModel::new(&space, NoiseProfile::moderate(), 42);
        let config = Configuration::new(vec![10, 20, 5]);
        assert_eq!(a.field(&config), b.field(&config));
        assert_eq!(a.sigma(&config), b.sigma(&config));
    }

    #[test]
    fn sigma_interpolates_between_quiet_and_loud_ends() {
        let space = space();
        let profile = NoiseProfile {
            sigma_quiet: 1e-5,
            sigma_loud: 1e-2,
            pocket_fraction: 0.0,
            ..NoiseProfile::moderate()
        };
        let model = NoiseModel::new(&space, profile, 7);
        let mut rng = seeded_rng(23);
        for _ in 0..500 {
            let sigma = model.sigma(&space.sample(&mut rng));
            assert!(
                (1e-5 - 1e-12..=1e-2 + 1e-12).contains(&sigma),
                "sigma {sigma} out of bounds"
            );
        }
    }
}
