//! The profiler interface and its simulated implementation.
//!
//! Iterative compilation interacts with the outside world through exactly two
//! operations: *compile a configuration* and *run the resulting binary once,
//! obtaining one (noisy) runtime*. The [`Profiler`] trait captures that
//! interface; [`SimulatedProfiler`] implements it on top of the synthetic
//! kernel models of this crate, and a real harness driving an actual compiler
//! could implement the same trait without touching the learning code.

use std::collections::HashSet;

use alic_stats::rng::{seeded_stream, Rng as StatsRng};

use crate::cost::CompileCostModel;
use crate::kernel::KernelSpec;
use crate::noise::{NoiseModel, NoiseProfile};
use crate::space::{Configuration, ParameterSpace};
use crate::surface::ResponseSurface;

/// The result of compiling (if needed) and running a configuration once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// The observed runtime of this single run, in seconds.
    pub runtime: f64,
    /// The compilation time charged for this measurement, in seconds.
    ///
    /// Non-zero only for the first measurement of a configuration: binaries
    /// are cached afterwards, exactly as an iterative-compilation harness
    /// would cache them on disk.
    pub compile_time: f64,
    /// Whether this measurement triggered a (re)compilation.
    pub compiled: bool,
}

impl Measurement {
    /// Total cost charged for this measurement (compile + run), in seconds.
    pub fn cost(&self) -> f64 {
        self.runtime + self.compile_time
    }
}

/// Source of runtime observations for an iterative-compilation learner.
///
/// Implementations must charge realistic costs: the paper's evaluation metric
/// is the *cumulative compilation and runtime cost* of all profiling work
/// (§4.3), so every [`measure`](Profiler::measure) call reports the cost it
/// incurred.
pub trait Profiler {
    /// The tunable parameter space of the benchmark being profiled.
    fn space(&self) -> &ParameterSpace;

    /// Name of the benchmark being profiled.
    fn kernel_name(&self) -> &str;

    /// Compiles `config` if necessary and runs it once, returning the
    /// observed runtime and the charged cost.
    fn measure(&mut self, config: &Configuration) -> Measurement;

    /// Ground-truth mean runtime of `config`.
    ///
    /// Only available because this is a simulator; it is used exclusively
    /// for *evaluating* learned models (computing RMSE against the truth),
    /// never by the learners themselves.
    fn true_mean(&self, config: &Configuration) -> f64;
}

/// Simulated profiler for one kernel.
///
/// # Examples
///
/// ```
/// use alic_sim::profiler::{Profiler, SimulatedProfiler};
/// use alic_sim::spapt::{spapt_kernel, SpaptKernel};
///
/// let mut profiler = SimulatedProfiler::new(spapt_kernel(SpaptKernel::Mvt), 7);
/// let config = profiler.space().default_configuration();
/// let first = profiler.measure(&config);
/// let second = profiler.measure(&config);
/// assert!(first.compiled);
/// assert!(!second.compiled); // binary is cached
/// ```
#[derive(Debug, Clone)]
pub struct SimulatedProfiler {
    spec: KernelSpec,
    surface: ResponseSurface,
    noise: NoiseModel,
    cost: CompileCostModel,
    rng: StatsRng,
    compiled: HashSet<Configuration>,
    runs: u64,
    total_cost: f64,
}

impl SimulatedProfiler {
    /// Creates a profiler for `spec`. All randomness (measurement noise) is
    /// derived from `seed`, so two profilers with the same spec and seed
    /// produce identical measurement streams.
    pub fn new(spec: KernelSpec, seed: u64) -> Self {
        let surface = ResponseSurface::new(
            spec.space(),
            spec.base_runtime(),
            spec.surface_seed(),
            spec.shape_overrides(),
        );
        let noise = NoiseModel::new(spec.space(), *spec.noise(), spec.surface_seed());
        let cost = CompileCostModel::new(spec.base_compile_time());
        let rng = seeded_stream(seed, 0x9A0F);
        SimulatedProfiler {
            spec,
            surface,
            noise,
            cost,
            rng,
            compiled: HashSet::new(),
            runs: 0,
            total_cost: 0.0,
        }
    }

    /// The kernel specification backing this profiler.
    pub fn spec(&self) -> &KernelSpec {
        &self.spec
    }

    /// The noise model in use (exposed for calibration experiments).
    pub fn noise_model(&self) -> &NoiseModel {
        &self.noise
    }

    /// Rescales all noise magnitudes by `factor` (noise-robustness ablation).
    pub fn scale_noise(&mut self, factor: f64) {
        let scaled: NoiseProfile = self.spec.noise().scaled(factor);
        self.noise.set_profile(scaled);
    }

    /// Number of runs executed so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Cumulative compile + run cost charged so far, in seconds.
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Number of distinct configurations compiled so far.
    pub fn distinct_compiled(&self) -> usize {
        self.compiled.len()
    }

    /// Compile time that would be charged for `config` (without running it).
    pub fn compile_time(&self, config: &Configuration) -> f64 {
        self.cost.compile_time(self.spec.space(), config)
    }
}

impl Profiler for SimulatedProfiler {
    fn space(&self) -> &ParameterSpace {
        self.spec.space()
    }

    fn kernel_name(&self) -> &str {
        self.spec.name()
    }

    fn measure(&mut self, config: &Configuration) -> Measurement {
        let newly_compiled = self.compiled.insert(config.clone());
        let compile_time = if newly_compiled {
            self.cost.compile_time(self.spec.space(), config)
        } else {
            0.0
        };
        let true_mean = self.surface.true_mean(config);
        let runtime = self.noise.sample(&mut self.rng, config, true_mean);
        self.runs += 1;
        self.total_cost += runtime + compile_time;
        Measurement {
            runtime,
            compile_time,
            compiled: newly_compiled,
        }
    }

    fn true_mean(&self, config: &Configuration) -> f64 {
        self.surface.true_mean(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseProfile;
    use crate::space::ParamSpec;
    use alic_stats::summary::Summary;

    fn toy_spec(noise: NoiseProfile) -> KernelSpec {
        KernelSpec::new(
            "toy",
            vec![ParamSpec::unroll("u1"), ParamSpec::unroll("u2")],
            1.0,
            0.5,
            noise,
        )
        .unwrap()
        .with_surface_seed(3)
    }

    #[test]
    fn compile_cost_is_charged_only_once_per_configuration() {
        let mut profiler = SimulatedProfiler::new(toy_spec(NoiseProfile::quiet()), 1);
        let config = Configuration::new(vec![10, 20]);
        let first = profiler.measure(&config);
        let second = profiler.measure(&config);
        assert!(first.compiled && first.compile_time > 0.0);
        assert!(!second.compiled && second.compile_time == 0.0);
        assert_eq!(profiler.distinct_compiled(), 1);
        assert_eq!(profiler.runs(), 2);
    }

    #[test]
    fn measurements_follow_the_ground_truth_under_quiet_noise() {
        let mut profiler = SimulatedProfiler::new(toy_spec(NoiseProfile::quiet()), 2);
        let config = Configuration::new(vec![5, 5]);
        let truth = profiler.true_mean(&config);
        let m = profiler.measure(&config);
        assert!((m.runtime - truth).abs() < 1e-3);
    }

    #[test]
    fn identical_seed_and_spec_replay_identical_streams() {
        let mut a = SimulatedProfiler::new(toy_spec(NoiseProfile::moderate()), 77);
        let mut b = SimulatedProfiler::new(toy_spec(NoiseProfile::moderate()), 77);
        let config = Configuration::new(vec![3, 9]);
        for _ in 0..10 {
            assert_eq!(a.measure(&config), b.measure(&config));
        }
    }

    #[test]
    fn different_seeds_give_different_noise() {
        let mut a = SimulatedProfiler::new(toy_spec(NoiseProfile::moderate()), 1);
        let mut b = SimulatedProfiler::new(toy_spec(NoiseProfile::moderate()), 2);
        let config = Configuration::new(vec![3, 9]);
        let ya: Vec<f64> = (0..5).map(|_| a.measure(&config).runtime).collect();
        let yb: Vec<f64> = (0..5).map(|_| b.measure(&config).runtime).collect();
        assert_ne!(ya, yb);
    }

    #[test]
    fn total_cost_accumulates_compile_and_run_time() {
        let mut profiler = SimulatedProfiler::new(toy_spec(NoiseProfile::quiet()), 5);
        let a = Configuration::new(vec![1, 1]);
        let b = Configuration::new(vec![30, 30]);
        let m1 = profiler.measure(&a);
        let m2 = profiler.measure(&b);
        let m3 = profiler.measure(&a);
        let expected = m1.cost() + m2.cost() + m3.cost();
        assert!((profiler.total_cost() - expected).abs() < 1e-12);
    }

    #[test]
    fn repeated_measurements_average_to_the_truth() {
        let mut spec_noise = NoiseProfile::moderate();
        spec_noise.outlier_probability = 0.0;
        let mut profiler = SimulatedProfiler::new(toy_spec(spec_noise), 11);
        let config = Configuration::new(vec![15, 7]);
        let truth = profiler.true_mean(&config);
        let samples: Vec<f64> = (0..3000)
            .map(|_| profiler.measure(&config).runtime)
            .collect();
        let s = Summary::from_slice(&samples);
        assert!(
            (s.mean - truth).abs() < 0.02 * truth + 0.01,
            "sample mean {} vs truth {truth}",
            s.mean
        );
    }

    #[test]
    fn noise_scaling_increases_variance() {
        let config = Configuration::new(vec![8, 22]);
        let sample_variance = |factor: f64| {
            let mut profiler = SimulatedProfiler::new(toy_spec(NoiseProfile::moderate()), 13);
            profiler.scale_noise(factor);
            let xs: Vec<f64> = (0..800)
                .map(|_| profiler.measure(&config).runtime)
                .collect();
            Summary::from_slice(&xs).variance
        };
        assert!(sample_variance(4.0) > sample_variance(1.0));
    }
}
