//! Dataset serialization and the workspace's generic JSON substrate.
//!
//! Datasets are expensive to profile (the paper's took days of machine time),
//! so being able to save and reload them is essential. JSON is used for
//! portability and easy inspection. Because the build environment has no
//! registry access, the JSON codec is hand-written instead of going through
//! `serde_json`; the format is plain JSON and stays loadable by any external
//! tool.
//!
//! Besides the [`Dataset`] codec, the module exposes the underlying parser
//! and a canonical writer as [`JsonValue`], which downstream crates use to
//! hand-roll their own codecs (most importantly the campaign ledger in
//! `alic-core::runner`, whose byte-identical shard/resume/merge guarantee
//! depends on the writer's deterministic, shortest-round-trip output).

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::dataset::{DataPoint, Dataset};
use crate::{DataError, Result};
use alic_sim::space::Configuration;

/// Serializes a dataset as JSON to any writer.
///
/// # Errors
///
/// Returns an error when the underlying write fails or when a point holds a
/// non-finite number (JSON cannot represent NaN or infinities; erroring at
/// write time beats producing a file that cannot be loaded back).
pub fn write_dataset<W: Write>(dataset: &Dataset, mut writer: W) -> Result<()> {
    let mut out = String::new();
    out.push_str("{\"kernel\":");
    write_json_string(&mut out, dataset.kernel());
    out.push_str(",\"points\":[");
    for (i, point) in dataset.points().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_point(&mut out, point)?;
    }
    out.push_str("]}");
    writer.write_all(out.as_bytes())?;
    Ok(())
}

fn finite(value: f64, field: &'static str) -> Result<f64> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(DataError::NonFinite { field })
    }
}

fn write_point(out: &mut String, point: &DataPoint) -> Result<()> {
    out.push_str("{\"configuration\":[");
    for (i, v) in point.configuration.values().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    let _ = write!(
        out,
        "],\"mean_runtime\":{:?},\"runtime_variance\":{:?},\"observations\":{},\
         \"compile_time\":{:?},\"true_mean\":{:?}}}",
        finite(point.mean_runtime, "mean_runtime")?,
        finite(point.runtime_variance, "runtime_variance")?,
        point.observations,
        finite(point.compile_time, "compile_time")?,
        finite(point.true_mean, "true_mean")?
    );
    Ok(())
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deserializes a dataset from JSON read from any reader.
///
/// # Errors
///
/// Returns an error when the stream cannot be read or parsed.
pub fn read_dataset<R: Read>(mut reader: R) -> Result<Dataset> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    parse_dataset(&text)
}

/// Saves a dataset to a JSON file at `path`.
///
/// The document is fully serialized (and validated) in memory before the
/// destination is touched, so a validation failure never truncates an
/// existing file.
///
/// # Errors
///
/// Returns an error when serialization fails or the file cannot be created
/// or written.
pub fn save_dataset(dataset: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    let mut buffer = Vec::new();
    write_dataset(dataset, &mut buffer)?;
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(&buffer)?;
    writer.flush()?;
    Ok(())
}

/// Loads a dataset from a JSON file at `path`.
///
/// # Errors
///
/// Returns an error when the file cannot be opened or parsed.
pub fn load_dataset(path: impl AsRef<Path>) -> Result<Dataset> {
    let file = File::open(path)?;
    read_dataset(BufReader::new(file))
}

// --- Minimal recursive-descent JSON parser and canonical writer. ------------

/// Maximum container nesting the parser accepts. The dataset schema needs a
/// depth of three; the bound turns adversarially nested input into a parse
/// error instead of a stack overflow.
const MAX_DEPTH: usize = 128;

fn parse_dataset(text: &str) -> Result<Dataset> {
    dataset_from_value(&JsonValue::parse(text)?)
}

fn parse_error(message: impl Into<String>) -> DataError {
    DataError::Parse(message.into())
}

/// A parsed JSON document.
///
/// This is the workspace's registry-free substitute for `serde_json::Value`
/// (the vendored `serde` is a no-op marker): a plain tree with a strict
/// parser ([`JsonValue::parse`]) and a canonical writer
/// ([`JsonValue::to_json_string`]). Object fields keep their insertion
/// order, numbers are `f64` (exact for integers up to 2^53), and the writer
/// emits the shortest float representation that round-trips bit-exactly —
/// the property the campaign ledger's byte-identical merge guarantee rests
/// on.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON number (always stored as `f64`).
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<JsonValue>),
    /// A JSON object; fields keep their insertion order.
    Object(Vec<(String, JsonValue)>),
    /// A JSON boolean.
    Bool(bool),
    /// The JSON `null` literal.
    Null,
}

impl JsonValue {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Parse`] on malformed input, trailing characters,
    /// nesting beyond an internal depth bound, or numbers outside the finite
    /// `f64` range.
    pub fn parse(text: &str) -> Result<JsonValue> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parse_error("trailing characters after the JSON document"));
        }
        Ok(value)
    }

    /// Looks up a field of an object.
    ///
    /// # Errors
    ///
    /// Returns a parse error when `self` is not an object or the field is
    /// missing.
    pub fn field<'a>(&'a self, name: &str) -> Result<&'a JsonValue> {
        match self {
            JsonValue::Object(fields) => fields
                .iter()
                .find(|(key, _)| key == name)
                .map(|(_, value)| value)
                .ok_or_else(|| parse_error(format!("missing field '{name}'"))),
            _ => Err(parse_error(format!(
                "expected an object with field '{name}'"
            ))),
        }
    }

    /// The value as a number.
    ///
    /// # Errors
    ///
    /// Returns a parse error when the value is not a number.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            JsonValue::Number(n) => Ok(*n),
            _ => Err(parse_error("expected a number")),
        }
    }

    /// The value as a non-negative integer.
    ///
    /// # Errors
    ///
    /// Returns a parse error when the value is not a non-negative integer
    /// representable exactly in `f64`.
    pub fn as_usize(&self) -> Result<usize> {
        usize::try_from(self.as_u64()?).map_err(|_| parse_error("integer out of range"))
    }

    /// Largest integer representable exactly in the `f64` numbers of a
    /// [`JsonValue`] (2^53). [`JsonValue::as_u64`] rejects anything larger;
    /// codecs built on this type must enforce the same bound when encoding
    /// so that every value they write can be read back.
    pub const MAX_EXACT_INTEGER: u64 = 1 << 53;

    /// The value as a non-negative 64-bit integer.
    ///
    /// # Errors
    ///
    /// Returns a parse error when the value is not a non-negative integer
    /// representable exactly in `f64` (everything above
    /// [`JsonValue::MAX_EXACT_INTEGER`] has lost integer precision, and
    /// `as u64` would silently saturate).
    pub fn as_u64(&self) -> Result<u64> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > Self::MAX_EXACT_INTEGER as f64 {
            return Err(parse_error("expected a non-negative integer"));
        }
        Ok(n as u64)
    }

    /// The value as an array.
    ///
    /// # Errors
    ///
    /// Returns a parse error when the value is not an array.
    pub fn as_array(&self) -> Result<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Ok(items),
            _ => Err(parse_error("expected an array")),
        }
    }

    /// The value as a string.
    ///
    /// # Errors
    ///
    /// Returns a parse error when the value is not a string.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            JsonValue::String(s) => Ok(s),
            _ => Err(parse_error("expected a string")),
        }
    }

    /// Whether the value is the `null` literal.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Serializes the value in canonical form: no whitespace, object fields
    /// in insertion order, floats in Rust's shortest round-trip
    /// representation. Writing and re-parsing a value is the identity, and
    /// two equal values always serialize to identical bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::NonFinite`] when the tree contains a NaN or an
    /// infinite number (JSON cannot represent them).
    pub fn to_json_string(&self) -> Result<String> {
        let mut out = String::new();
        self.write_into(&mut out)?;
        Ok(out)
    }

    /// Appends the canonical serialization to `out` (the allocation-reusing
    /// core of [`JsonValue::to_json_string`]).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::NonFinite`] when the tree contains a NaN or an
    /// infinite number.
    pub fn write_into(&self, out: &mut String) -> Result<()> {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if !n.is_finite() {
                    return Err(DataError::NonFinite {
                        field: "json number",
                    });
                }
                let _ = write!(out, "{n:?}");
            }
            JsonValue::String(s) => write_json_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out)?;
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, key);
                    out.push(':');
                    value.write_into(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(parse_error(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.nested(Self::parse_object),
            Some(b'[') => self.nested(Self::parse_array),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(_) => self.parse_number(),
            None => Err(parse_error("unexpected end of input")),
        }
    }

    fn nested(&mut self, parse: impl FnOnce(&mut Self) -> Result<JsonValue>) -> Result<JsonValue> {
        if self.depth >= MAX_DEPTH {
            return Err(parse_error("maximum nesting depth exceeded"));
        }
        self.depth += 1;
        let value = parse(self);
        self.depth -= 1;
        value
    }

    fn parse_keyword(&mut self, keyword: &str, value: JsonValue) -> Result<JsonValue> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(parse_error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => {
                    return Err(parse_error(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => {
                    return Err(parse_error(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(parse_error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.parse_hex4()?;
                            let code = if (0xD800..=0xDBFF).contains(&code) {
                                // UTF-16 surrogate pair (e.g. Python's
                                // `ensure_ascii` output): the low half must
                                // follow as another \u escape.
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(parse_error("unpaired UTF-16 high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(parse_error("invalid UTF-16 low surrogate"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| parse_error("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(parse_error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 encoded character. Only the bytes of
                    // this character are validated (the lead byte gives the
                    // length), keeping string parsing O(n) overall.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC2..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF4 => 4,
                        _ => return Err(parse_error("invalid UTF-8 in string")),
                    };
                    let slice = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| parse_error("truncated UTF-8 character"))?;
                    let c = std::str::from_utf8(slice)
                        .map_err(|_| parse_error("invalid UTF-8 in string"))?
                        .chars()
                        .next()
                        .expect("non-empty by construction");
                    out.push(c);
                    self.pos += len;
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape (cursor on the `u`),
    /// leaving the cursor on the last digit.
    fn parse_hex4(&mut self) -> Result<u32> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| parse_error("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| parse_error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| parse_error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(parse_error(format!("expected a value at byte {start}")));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| parse_error("invalid number"))?;
        let number = text
            .parse::<f64>()
            .map_err(|_| parse_error(format!("invalid number '{text}'")))?;
        // str::parse saturates out-of-range magnitudes (1e999 -> inf); reject
        // them so loaded datasets keep the finiteness invariant the writer
        // enforces.
        if !number.is_finite() {
            return Err(parse_error(format!("number '{text}' is out of range")));
        }
        Ok(JsonValue::Number(number))
    }
}

fn dataset_from_value(value: &JsonValue) -> Result<Dataset> {
    let kernel = value.field("kernel")?.as_str()?.to_string();
    let points: Vec<DataPoint> = value
        .field("points")?
        .as_array()?
        .iter()
        .map(point_from_value)
        .collect::<Result<_>>()?;
    if points.is_empty() {
        return Err(parse_error("dataset has no points"));
    }
    // Dataset::from_points panics on ragged or empty configurations (its
    // callers construct them from one parameter space); turn hostile files
    // into errors instead.
    let dimension = points[0].configuration.values().len();
    if dimension == 0 {
        return Err(parse_error("configuration arrays must not be empty"));
    }
    if points
        .iter()
        .any(|p| p.configuration.values().len() != dimension)
    {
        return Err(parse_error(
            "configuration arrays must all have the same length",
        ));
    }
    Ok(Dataset::from_points(kernel, points))
}

fn point_from_value(value: &JsonValue) -> Result<DataPoint> {
    let configuration: Vec<u32> = value
        .field("configuration")?
        .as_array()?
        .iter()
        .map(|v| {
            let n = v.as_usize()?;
            u32::try_from(n).map_err(|_| parse_error("configuration value out of range"))
        })
        .collect::<Result<_>>()?;
    Ok(DataPoint {
        configuration: Configuration::new(configuration),
        mean_runtime: value.field("mean_runtime")?.as_f64()?,
        runtime_variance: value.field("runtime_variance")?.as_f64()?,
        observations: value.field("observations")?.as_usize()?,
        compile_time: value.field("compile_time")?.as_f64()?,
        true_mean: value.field("true_mean")?.as_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DataPoint, Dataset};
    use alic_sim::space::Configuration;

    fn tiny_dataset() -> Dataset {
        let points = vec![
            DataPoint {
                configuration: Configuration::new(vec![1, 2]),
                mean_runtime: 1.5,
                runtime_variance: 0.01,
                observations: 5,
                compile_time: 0.4,
                true_mean: 1.49,
            },
            DataPoint {
                configuration: Configuration::new(vec![3, 4]),
                mean_runtime: 2.5,
                runtime_variance: 0.02,
                observations: 5,
                compile_time: 0.5,
                true_mean: 2.52,
            },
        ];
        Dataset::from_points("toy", points)
    }

    #[test]
    fn json_roundtrip_preserves_the_dataset() {
        let dataset = tiny_dataset();
        let mut buffer = Vec::new();
        write_dataset(&dataset, &mut buffer).unwrap();
        let loaded = read_dataset(buffer.as_slice()).unwrap();
        assert_eq!(dataset, loaded);
    }

    #[test]
    fn roundtrip_is_exact_for_awkward_floats() {
        let points = vec![DataPoint {
            configuration: Configuration::new(vec![7]),
            mean_runtime: 0.1 + 0.2, // famously not 0.3
            runtime_variance: 1.0 / 3.0,
            observations: 3,
            compile_time: f64::MIN_POSITIVE,
            true_mean: 1e-300,
        }];
        let dataset = Dataset::from_points("kernel \"x\"\n", points);
        let mut buffer = Vec::new();
        write_dataset(&dataset, &mut buffer).unwrap();
        let loaded = read_dataset(buffer.as_slice()).unwrap();
        assert_eq!(dataset, loaded);
    }

    #[test]
    fn file_roundtrip_preserves_the_dataset() {
        let dataset = tiny_dataset();
        let dir = std::env::temp_dir().join("alic-data-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dataset.json");
        save_dataset(&dataset, &path).unwrap();
        let loaded = load_dataset(&path).unwrap();
        assert_eq!(dataset, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let err = read_dataset("not json".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("parse"));
    }

    #[test]
    fn missing_fields_are_parse_errors() {
        let err = read_dataset("{\"kernel\":\"toy\"}".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("points"));
        let err = read_dataset("{\"kernel\":\"toy\",\"points\":[]}".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("no points"));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_dataset("/nonexistent/path/dataset.json").unwrap_err();
        assert!(err.to_string().contains("I/O"));
    }

    fn point_json(configuration: &str, mean_runtime: &str) -> String {
        format!(
            "{{\"configuration\":{configuration},\"mean_runtime\":{mean_runtime},\
             \"runtime_variance\":0.1,\"observations\":2,\"compile_time\":0.3,\"true_mean\":1.0}}"
        )
    }

    #[test]
    fn ragged_or_empty_configurations_are_parse_errors_not_panics() {
        let ragged = format!(
            "{{\"kernel\":\"k\",\"points\":[{},{}]}}",
            point_json("[1]", "1.0"),
            point_json("[1,2]", "1.0")
        );
        let err = read_dataset(ragged.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("same length"), "{err}");

        let empty = format!(
            "{{\"kernel\":\"k\",\"points\":[{}]}}",
            point_json("[]", "1.0")
        );
        let err = read_dataset(empty.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("must not be empty"), "{err}");
    }

    #[test]
    fn out_of_range_numbers_are_rejected_on_read() {
        let json = format!(
            "{{\"kernel\":\"k\",\"points\":[{}]}}",
            point_json("[1]", "1e999")
        );
        let err = read_dataset(json.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn deeply_nested_input_is_a_parse_error_not_a_stack_overflow() {
        let bomb = "[".repeat(100_000);
        let err = read_dataset(bomb.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("depth"));
    }

    #[test]
    fn non_finite_values_are_rejected_at_write_time() {
        let mut bad = tiny_dataset().points().to_vec();
        bad[0].runtime_variance = f64::NAN;
        let dataset = Dataset::from_points("toy", bad);
        let err = write_dataset(&dataset, Vec::new()).unwrap_err();
        assert!(
            err.to_string().contains("runtime_variance"),
            "error should name the field: {err}"
        );
    }

    #[test]
    fn json_value_roundtrip_is_the_identity() {
        let value = JsonValue::Object(vec![
            ("a".to_string(), JsonValue::Number(0.1 + 0.2)),
            ("b".to_string(), JsonValue::Number(-0.0)),
            ("c".to_string(), JsonValue::Number(1e-300)),
            ("n".to_string(), JsonValue::Null),
            ("t".to_string(), JsonValue::Bool(true)),
            (
                "s".to_string(),
                JsonValue::String("quote \" slash \\ tab\t".to_string()),
            ),
            (
                "v".to_string(),
                JsonValue::Array(vec![JsonValue::Number(5.0), JsonValue::Number(42.0)]),
            ),
        ]);
        let text = value.to_json_string().unwrap();
        let reparsed = JsonValue::parse(&text).unwrap();
        assert_eq!(reparsed, value);
        // Canonical: serializing the reparsed tree gives identical bytes.
        assert_eq!(reparsed.to_json_string().unwrap(), text);
    }

    #[test]
    fn json_value_writer_rejects_non_finite_numbers() {
        let value = JsonValue::Array(vec![JsonValue::Number(f64::NAN)]);
        let err = value.to_json_string().unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn json_value_integer_accessors_validate() {
        let v = JsonValue::parse("[5, 5.5, -1, 1e300]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_u64().unwrap(), 5);
        assert_eq!(items[0].as_usize().unwrap(), 5);
        assert!(items[1].as_u64().is_err());
        assert!(items[2].as_u64().is_err());
        assert!(items[3].as_u64().is_err());
        assert!(JsonValue::Null.is_null());
        assert!(!items[0].is_null());
    }

    #[test]
    fn utf16_surrogate_pairs_in_strings_are_decoded() {
        // External tools (e.g. Python's json with ensure_ascii) escape
        // astral-plane characters as surrogate pairs.
        let json = "{\"kernel\":\"k\\ud83d\\ude00\",\"points\":[{\"configuration\":[1],\
                    \"mean_runtime\":1.0,\"runtime_variance\":0.1,\"observations\":2,\
                    \"compile_time\":0.3,\"true_mean\":1.0}]}";
        let dataset = read_dataset(json.as_bytes()).unwrap();
        assert_eq!(dataset.kernel(), "k\u{1F600}");
        let err =
            read_dataset("{\"kernel\":\"\\ud83d oops\",\"points\":[]}".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("surrogate"));
    }
}
