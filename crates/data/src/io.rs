//! Dataset serialization.
//!
//! Datasets are expensive to profile (the paper's took days of machine time),
//! so being able to save and reload them is essential. JSON is used for
//! portability and easy inspection.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::dataset::Dataset;
use crate::Result;

/// Serializes a dataset as JSON to any writer.
///
/// # Errors
///
/// Returns an error when serialization or the underlying write fails.
pub fn write_dataset<W: Write>(dataset: &Dataset, writer: W) -> Result<()> {
    serde_json::to_writer(writer, dataset)?;
    Ok(())
}

/// Deserializes a dataset from JSON read from any reader.
///
/// # Errors
///
/// Returns an error when the stream cannot be read or parsed.
pub fn read_dataset<R: Read>(reader: R) -> Result<Dataset> {
    Ok(serde_json::from_reader(reader)?)
}

/// Saves a dataset to a JSON file at `path`.
///
/// # Errors
///
/// Returns an error when the file cannot be created or written.
pub fn save_dataset(dataset: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    let file = File::create(path)?;
    write_dataset(dataset, BufWriter::new(file))
}

/// Loads a dataset from a JSON file at `path`.
///
/// # Errors
///
/// Returns an error when the file cannot be opened or parsed.
pub fn load_dataset(path: impl AsRef<Path>) -> Result<Dataset> {
    let file = File::open(path)?;
    read_dataset(BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DataPoint, Dataset};
    use alic_sim::space::Configuration;

    fn tiny_dataset() -> Dataset {
        let points = vec![
            DataPoint {
                configuration: Configuration::new(vec![1, 2]),
                mean_runtime: 1.5,
                runtime_variance: 0.01,
                observations: 5,
                compile_time: 0.4,
                true_mean: 1.49,
            },
            DataPoint {
                configuration: Configuration::new(vec![3, 4]),
                mean_runtime: 2.5,
                runtime_variance: 0.02,
                observations: 5,
                compile_time: 0.5,
                true_mean: 2.52,
            },
        ];
        Dataset::from_points("toy", points)
    }

    #[test]
    fn json_roundtrip_preserves_the_dataset() {
        let dataset = tiny_dataset();
        let mut buffer = Vec::new();
        write_dataset(&dataset, &mut buffer).unwrap();
        let loaded = read_dataset(buffer.as_slice()).unwrap();
        assert_eq!(dataset, loaded);
    }

    #[test]
    fn file_roundtrip_preserves_the_dataset() {
        let dataset = tiny_dataset();
        let dir = std::env::temp_dir().join("alic-data-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dataset.json");
        save_dataset(&dataset, &path).unwrap();
        let loaded = load_dataset(&path).unwrap();
        assert_eq!(dataset, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let err = read_dataset("not json".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("parse"));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_dataset("/nonexistent/path/dataset.json").unwrap_err();
        assert!(err.to_string().contains("I/O"));
    }
}
