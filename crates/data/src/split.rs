//! Train/test splits.

use serde::{Deserialize, Serialize};

use alic_stats::rng::seeded_stream;
use alic_stats::sampling::split_indices;

/// Disjoint train/test index sets over a dataset.
///
/// The paper (§4.5) marks 7,500 of the 10,000 profiled configurations as the
/// training pool and evaluates on the remaining 2,500.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainTestSplit {
    train: Vec<usize>,
    test: Vec<usize>,
}

impl TrainTestSplit {
    /// Splits `0..population` into `train_size` training indices and the rest
    /// as test indices, shuffled deterministically by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `train_size > population`.
    pub fn new(population: usize, train_size: usize, seed: u64) -> Self {
        let mut rng = seeded_stream(seed, 0x5917);
        let (train, test) = split_indices(&mut rng, population, train_size);
        TrainTestSplit { train, test }
    }

    /// Indices available for training (the paper's pool `F`).
    pub fn train_indices(&self) -> &[usize] {
        &self.train
    }

    /// Held-out test indices.
    pub fn test_indices(&self) -> &[usize] {
        &self.test
    }

    /// Total number of indices covered by the split.
    pub fn population(&self) -> usize {
        self.train.len() + self.test.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn paper_sized_split() {
        let split = TrainTestSplit::new(10_000, 7_500, 1);
        assert_eq!(split.train_indices().len(), 7_500);
        assert_eq!(split.test_indices().len(), 2_500);
        assert_eq!(split.population(), 10_000);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let a = TrainTestSplit::new(100, 60, 7);
        let b = TrainTestSplit::new(100, 60, 7);
        let c = TrainTestSplit::new(100, 60, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #[test]
        fn prop_split_is_disjoint_and_complete(population in 1usize..400, seed in 0u64..100) {
            let train_size = population / 2;
            let split = TrainTestSplit::new(population, train_size, seed);
            let train: HashSet<_> = split.train_indices().iter().copied().collect();
            let test: HashSet<_> = split.test_indices().iter().copied().collect();
            prop_assert_eq!(train.len(), train_size);
            prop_assert_eq!(train.len() + test.len(), population);
            prop_assert!(train.is_disjoint(&test));
            prop_assert!(train.union(&test).all(|&i| i < population));
        }
    }
}
