//! Profiled datasets.

use rand::Rng as _;
use serde::{Deserialize, Serialize};

use alic_sim::profiler::Profiler;
use alic_sim::space::Configuration;
use alic_stats::normalize::Normalizer;
use alic_stats::rng::seeded_stream;
use alic_stats::summary::Summary;
use alic_stats::FeatureMatrix;

use crate::split::TrainTestSplit;

/// How a dataset is generated from a profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of distinct configurations to profile (the paper uses 10,000).
    pub configurations: usize,
    /// Number of runtime observations per configuration (the paper uses 35).
    pub observations: usize,
    /// Seed for configuration selection.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            configurations: 10_000,
            observations: 35,
            seed: 0,
        }
    }
}

/// One profiled configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// The configuration that was profiled.
    pub configuration: Configuration,
    /// Mean runtime over the recorded observations, in seconds.
    pub mean_runtime: f64,
    /// Unbiased sample variance of the recorded observations.
    pub runtime_variance: f64,
    /// Number of observations behind the mean.
    pub observations: usize,
    /// Compilation time charged for this configuration, in seconds.
    pub compile_time: f64,
    /// Ground-truth mean runtime from the simulator (used only for
    /// evaluating models, never for training them).
    pub true_mean: f64,
}

/// A profiled dataset for one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    kernel: String,
    points: Vec<DataPoint>,
    normalizer: Normalizer,
}

impl Dataset {
    /// Profiles `config.configurations` distinct random configurations with
    /// `config.observations` runs each, mirroring §4.5 of the paper.
    pub fn generate<P: Profiler>(profiler: &mut P, config: &DatasetConfig) -> Self {
        let mut rng = seeded_stream(config.seed, 0xDA7A);
        let configurations = profiler
            .space()
            .sample_distinct(&mut rng, config.configurations);
        let mut points = Vec::with_capacity(configurations.len());
        for configuration in configurations {
            let mut runtimes = Vec::with_capacity(config.observations);
            let mut compile_time = 0.0;
            for _ in 0..config.observations.max(1) {
                let m = profiler.measure(&configuration);
                compile_time += m.compile_time;
                runtimes.push(m.runtime);
            }
            let summary = Summary::from_slice(&runtimes);
            points.push(DataPoint {
                true_mean: profiler.true_mean(&configuration),
                configuration,
                mean_runtime: summary.mean,
                runtime_variance: summary.variance,
                observations: summary.count,
                compile_time,
            });
        }
        let raw: Vec<Vec<f64>> = points
            .iter()
            .map(|p| p.configuration.to_features())
            .collect();
        let normalizer = Normalizer::fit(&raw).expect("dataset is never empty");
        Dataset {
            kernel: profiler.kernel_name().to_string(),
            points,
            normalizer,
        }
    }

    /// Builds a dataset directly from points (used by tests and loaders).
    pub fn from_points(kernel: impl Into<String>, points: Vec<DataPoint>) -> Self {
        let raw: Vec<Vec<f64>> = points
            .iter()
            .map(|p| p.configuration.to_features())
            .collect();
        let normalizer = Normalizer::fit(&raw).expect("points must not be empty");
        Dataset {
            kernel: kernel.into(),
            points,
            normalizer,
        }
    }

    /// Kernel name this dataset was profiled from.
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// The profiled points.
    pub fn points(&self) -> &[DataPoint] {
        &self.points
    }

    /// Number of profiled configurations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The feature normalizer fitted on this dataset (scaling and centring,
    /// §4.5).
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// Normalized feature vector of point `index`.
    pub fn features(&self, index: usize) -> Vec<f64> {
        self.normalizer
            .transform_row(&self.points[index].configuration.to_features())
            .expect("points have consistent dimensionality")
    }

    /// Normalized feature vectors of every point, in order.
    pub fn all_features(&self) -> Vec<Vec<f64>> {
        (0..self.len()).map(|i| self.features(i)).collect()
    }

    /// Normalized features of the given points, gathered into flat row-major
    /// storage — the representation the learner keeps its pool and test sets
    /// in, so candidate sets can be zero-copy row views.
    pub fn features_matrix(&self, indices: &[usize]) -> FeatureMatrix {
        let dim = self.features(0).len();
        let mut matrix = FeatureMatrix::with_capacity(dim, indices.len());
        for &i in indices {
            matrix.push_row(&self.features(i));
        }
        matrix
    }

    /// Normalized features of every point as a flat row-major matrix.
    pub fn all_features_matrix(&self) -> FeatureMatrix {
        let indices: Vec<usize> = (0..self.len()).collect();
        self.features_matrix(&indices)
    }

    /// Normalized feature vector for an arbitrary configuration.
    pub fn features_of(&self, configuration: &Configuration) -> Vec<f64> {
        self.normalizer
            .transform_row(&configuration.to_features())
            .expect("configuration dimensionality matches the dataset")
    }

    /// Total profiling cost (compile + runs) that generating this dataset
    /// charged, in seconds.
    pub fn generation_cost(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.compile_time + p.mean_runtime * p.observations as f64)
            .sum()
    }

    /// Splits the dataset into `train_size` training points and the rest as
    /// test points, shuffled with `seed` (the paper uses 7,500 / 2,500).
    ///
    /// # Panics
    ///
    /// Panics if `train_size > len()`.
    pub fn split(&self, train_size: usize, seed: u64) -> TrainTestSplit {
        TrainTestSplit::new(self.len(), train_size, seed)
    }

    /// The point with the lowest mean runtime (the tuning goal).
    pub fn best_point(&self) -> Option<&DataPoint> {
        self.points.iter().min_by(|a, b| {
            a.mean_runtime
                .partial_cmp(&b.mean_runtime)
                .expect("finite runtimes")
        })
    }

    /// Draws `count` indices uniformly at random (with `seed`), useful for
    /// sub-sampling reference sets.
    pub fn sample_indices(&self, count: usize, seed: u64) -> Vec<usize> {
        let mut rng = seeded_stream(seed, 0x5a3e);
        (0..count.min(self.len()))
            .map(|_| rng.gen_range(0..self.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alic_sim::noise::NoiseProfile;
    use alic_sim::profiler::SimulatedProfiler;
    use alic_sim::space::ParamSpec;
    use alic_sim::KernelSpec;

    fn toy_profiler(noise: NoiseProfile) -> SimulatedProfiler {
        let spec = KernelSpec::new(
            "toy",
            vec![ParamSpec::unroll("u1"), ParamSpec::unroll("u2")],
            1.0,
            0.5,
            noise,
        )
        .unwrap()
        .with_surface_seed(5);
        SimulatedProfiler::new(spec, 3)
    }

    fn small_dataset() -> Dataset {
        let mut profiler = toy_profiler(NoiseProfile::quiet());
        Dataset::generate(
            &mut profiler,
            &DatasetConfig {
                configurations: 120,
                observations: 3,
                seed: 1,
            },
        )
    }

    #[test]
    fn generates_the_requested_number_of_distinct_points() {
        let dataset = small_dataset();
        assert_eq!(dataset.len(), 120);
        let unique: std::collections::HashSet<_> = dataset
            .points()
            .iter()
            .map(|p| p.configuration.clone())
            .collect();
        assert_eq!(unique.len(), 120);
        assert_eq!(dataset.kernel(), "toy");
    }

    #[test]
    fn quiet_noise_means_sample_mean_matches_truth() {
        let dataset = small_dataset();
        for p in dataset.points() {
            assert!((p.mean_runtime - p.true_mean).abs() < 1e-2);
            assert_eq!(p.observations, 3);
            assert!(p.compile_time > 0.0);
        }
    }

    #[test]
    fn features_are_normalized() {
        let dataset = small_dataset();
        let features = dataset.all_features();
        // Column means should be near zero after centring.
        for d in 0..2 {
            let column: Vec<f64> = features.iter().map(|f| f[d]).collect();
            let mean = column.iter().sum::<f64>() / column.len() as f64;
            assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn features_of_matches_indexed_features() {
        let dataset = small_dataset();
        let direct = dataset.features(7);
        let via_config = dataset.features_of(&dataset.points()[7].configuration);
        assert_eq!(direct, via_config);
    }

    #[test]
    fn features_matrix_matches_per_point_features() {
        let dataset = small_dataset();
        let indices = vec![3usize, 11, 7, 0];
        let matrix = dataset.features_matrix(&indices);
        assert_eq!(matrix.len(), indices.len());
        for (row, &i) in matrix.rows().zip(&indices) {
            assert_eq!(row, dataset.features(i).as_slice());
        }
        let all = dataset.all_features_matrix();
        assert_eq!(all.len(), dataset.len());
        assert_eq!(all.row(5), dataset.features(5).as_slice());
    }

    #[test]
    fn generation_cost_counts_compiles_and_runs() {
        let dataset = small_dataset();
        assert!(dataset.generation_cost() > 0.0);
        // Roughly: 120 configurations × (compile ~0.5 s + 3 runs × ~1 s).
        assert!(dataset.generation_cost() > 120.0 * 1.0);
    }

    #[test]
    fn best_point_has_minimum_runtime() {
        let dataset = small_dataset();
        let best = dataset.best_point().unwrap();
        assert!(dataset
            .points()
            .iter()
            .all(|p| p.mean_runtime >= best.mean_runtime));
    }

    #[test]
    fn generation_is_deterministic_in_seed_and_profiler_seed() {
        let make = || {
            let mut profiler = toy_profiler(NoiseProfile::moderate());
            Dataset::generate(
                &mut profiler,
                &DatasetConfig {
                    configurations: 40,
                    observations: 4,
                    seed: 9,
                },
            )
        };
        let a = make();
        let b = make();
        assert_eq!(a, b);
    }

    #[test]
    fn sample_indices_are_in_range() {
        let dataset = small_dataset();
        for i in dataset.sample_indices(30, 2) {
            assert!(i < dataset.len());
        }
    }
}
