//! Dataset generation, train/test splitting and serialization.
//!
//! The paper's experimental protocol (§4.5) profiles each benchmark with
//! 10,000 distinct, randomly selected configurations, records each one's
//! mean runtime over 35 executions together with its compilation time, marks
//! 7,500 of them as the training pool and evaluates models on the remaining
//! 2,500. This crate implements that protocol on top of any
//! [`Profiler`](alic_sim::profiler::Profiler) and provides the normalized
//! feature representation (§4.5: features are scaled and centred).
//!
//! # Examples
//!
//! ```
//! use alic_data::dataset::{Dataset, DatasetConfig};
//! use alic_sim::profiler::SimulatedProfiler;
//! use alic_sim::spapt::{spapt_kernel, SpaptKernel};
//!
//! let mut profiler = SimulatedProfiler::new(spapt_kernel(SpaptKernel::Mvt), 1);
//! let dataset = Dataset::generate(
//!     &mut profiler,
//!     &DatasetConfig { configurations: 200, observations: 5, seed: 7 },
//! );
//! let split = dataset.split(150, 11);
//! assert_eq!(split.train_indices().len(), 150);
//! assert_eq!(split.test_indices().len(), 50);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataset;
pub mod io;
pub mod split;

pub use dataset::{DataPoint, Dataset, DatasetConfig};
pub use io::JsonValue;
pub use split::TrainTestSplit;

/// Errors produced by the data crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum DataError {
    /// An I/O operation failed while reading or writing a dataset.
    Io(std::io::Error),
    /// A dataset file could not be parsed.
    Parse(String),
    /// A dataset cannot be serialized because a field holds a non-finite
    /// number (JSON has no representation for NaN or infinities).
    NonFinite {
        /// Name of the offending [`DataPoint`] field.
        field: &'static str,
    },
    /// A split request was inconsistent with the dataset size.
    InvalidSplit {
        /// Requested training-set size.
        requested: usize,
        /// Number of points in the dataset.
        available: usize,
    },
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "dataset I/O failed: {e}"),
            DataError::Parse(e) => write!(f, "dataset parse failed: {e}"),
            DataError::NonFinite { field } => {
                write!(
                    f,
                    "dataset serialization failed: non-finite value in '{field}'"
                )
            }
            DataError::InvalidSplit {
                requested,
                available,
            } => write!(
                f,
                "cannot reserve {requested} training points from a dataset of {available}"
            ),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, DataError>;
