//! Table 2 — spread of variance and confidence-interval width per kernel.
//!
//! For every benchmark the paper samples configurations, records 35 runtimes
//! each, and reports the minimum / mean / maximum of (a) the runtime
//! variance, (b) the 95% CI half-width relative to the mean for a 35-sample
//! plan and (c) the same ratio for a 5-sample plan. The table demonstrates
//! both how different the kernels are from each other and how wildly the
//! noise varies *within* a single kernel — the core motivation for an
//! adaptive sampling plan.

use serde::{Deserialize, Serialize};

use alic_core::runner;
use alic_sim::profiler::{Profiler, SimulatedProfiler};
use alic_sim::spapt::{spapt_kernel, SpaptKernel};
use alic_stats::ci::confidence_interval;
use alic_stats::rng::derive_seed;
use alic_stats::summary::Summary;

use crate::scale::Scale;

/// Minimum / mean / maximum triple, as printed in the paper's table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spread {
    /// Smallest observed value.
    pub min: f64,
    /// Mean observed value.
    pub mean: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Spread {
    fn from_values(values: &[f64]) -> Self {
        let summary = Summary::from_slice(values);
        Spread {
            min: summary.min,
            mean: summary.mean,
            max: summary.max,
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Spread of the per-configuration runtime variance.
    pub variance: Spread,
    /// Spread of the 95% CI half-width over mean for the full-sample plan.
    pub ci_ratio_full: Spread,
    /// Spread of the 95% CI half-width over mean for a 5-sample plan.
    pub ci_ratio_5: Spread,
    /// Observations per configuration used for the full-sample columns.
    pub observations: usize,
}

/// Runs the Table 2 study for one kernel.
pub fn run_kernel(
    kernel: SpaptKernel,
    configurations: usize,
    observations: usize,
    seed: u64,
) -> Table2Row {
    let spec = spapt_kernel(kernel);
    let mut profiler = SimulatedProfiler::new(spec, seed);
    let mut rng = alic_stats::rng::seeded_stream(seed, 0x7AB2);
    let configs = profiler.space().sample_distinct(&mut rng, configurations);

    let mut variances = Vec::with_capacity(configs.len());
    let mut ratio_full = Vec::with_capacity(configs.len());
    let mut ratio_5 = Vec::with_capacity(configs.len());
    for config in &configs {
        let samples: Vec<f64> = (0..observations)
            .map(|_| profiler.measure(config).runtime)
            .collect();
        let summary = Summary::from_slice(&samples);
        variances.push(summary.variance);
        let full_ci = confidence_interval(&samples, 0.95).expect("non-empty sample");
        ratio_full.push(full_ci.ratio_to_mean());
        let five = &samples[..samples.len().min(5)];
        let five_ci = confidence_interval(five, 0.95).expect("non-empty sample");
        ratio_5.push(five_ci.ratio_to_mean());
    }

    Table2Row {
        benchmark: kernel.name().to_string(),
        variance: Spread::from_values(&variances),
        ci_ratio_full: Spread::from_values(&ratio_full),
        ci_ratio_5: Spread::from_values(&ratio_5),
        observations,
    }
}

/// The full Table 2 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Result {
    /// One row per benchmark, in the paper's order.
    pub rows: Vec<Table2Row>,
}

impl Table2Result {
    /// Fraction of sampled configurations (across all kernels) whose
    /// CI/mean ratio breaches `threshold` under the full-sample plan —
    /// the "5% of examples broke the threshold" style statistic of §4.3.
    pub fn row(&self, name: &str) -> Option<&Table2Row> {
        self.rows.iter().find(|r| r.benchmark == name)
    }
}

/// Runs Table 2 for all kernels at the given scale.
///
/// Table 2 has no learner dimension (kernels are profiled directly), so its
/// unit is simply one kernel row; the rows run on the campaign runner's
/// work-stealing executor ([`runner::map_units`]) with per-kernel derived
/// seeds, like every other experiment stage.
pub fn run(scale: Scale) -> Table2Result {
    let configurations = scale.table2_configurations();
    let observations = scale.observations();
    let kernels = SpaptKernel::all();
    let rows: Vec<Table2Row> = runner::map_units(&kernels, |&kernel| {
        run_kernel(
            kernel,
            configurations,
            observations,
            derive_seed(7, kernel as u64),
        )
    });
    Table2Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spreads_are_ordered() {
        let row = run_kernel(SpaptKernel::Mm, 40, 12, 1);
        assert!(row.variance.min <= row.variance.mean);
        assert!(row.variance.mean <= row.variance.max);
        assert!(row.ci_ratio_5.mean >= row.ci_ratio_full.mean * 0.5);
        assert_eq!(row.observations, 12);
    }

    #[test]
    fn fewer_samples_give_wider_relative_intervals() {
        let row = run_kernel(SpaptKernel::Gemver, 40, 20, 2);
        assert!(
            row.ci_ratio_5.mean > row.ci_ratio_full.mean,
            "5-sample CI ({}) should be wider than the full-sample CI ({})",
            row.ci_ratio_5.mean,
            row.ci_ratio_full.mean
        );
    }

    #[test]
    fn correlation_is_the_noisiest_kernel() {
        let correlation = run_kernel(SpaptKernel::Correlation, 40, 12, 3);
        let lu = run_kernel(SpaptKernel::Lu, 40, 12, 3);
        assert!(correlation.variance.mean > 100.0 * lu.variance.mean);
    }

    #[test]
    fn variance_spans_orders_of_magnitude_within_a_kernel() {
        let row = run_kernel(SpaptKernel::Adi, 80, 15, 4);
        assert!(
            row.variance.max / row.variance.min.max(1e-15) > 100.0,
            "within-kernel variance spread should be wide: {:?}",
            row.variance
        );
    }
}
