//! Runs the two ablations: acquisition-function choice (ALC vs. ALM vs.
//! random) and robustness to artificially scaled noise.

use alic_experiments::ablation;
use alic_experiments::report::{emit, format_sci, TextTable};
use alic_experiments::RunOptions;
use alic_sim::spapt::SpaptKernel;

fn main() {
    let options = RunOptions::from_args();
    let config = options.comparison_config();
    println!("== Ablations ({}) ==\n", options.describe());

    // Acquisition-function ablation on a quiet and a noisy kernel.
    let mut acquisition_table = TextTable::new(vec![
        "benchmark",
        "acquisition",
        "best RMSE (s)",
        "mean cost (s)",
    ]);
    for kernel in [SpaptKernel::Gemver, SpaptKernel::Correlation] {
        for row in ablation::acquisition_ablation_with(kernel, &config) {
            acquisition_table.push_row(vec![
                kernel.name().to_string(),
                row.acquisition,
                format_sci(row.best_rmse),
                format_sci(row.mean_cost),
            ]);
        }
    }
    emit(
        "Acquisition-function ablation (variable-observation plan)",
        &acquisition_table,
        "ablation_acquisition.csv",
    );

    // Noise-robustness ablation (the paper's proposed future work, §7).
    let mut noise_table = TextTable::new(vec![
        "benchmark",
        "noise scale",
        "lowest common RMSE (s)",
        "speed-up vs baseline",
    ]);
    for kernel in [SpaptKernel::Gemver, SpaptKernel::Jacobi] {
        for row in ablation::noise_ablation_with(kernel, &[0.5, 1.0, 2.0, 4.0], &config) {
            noise_table.push_row(vec![
                kernel.name().to_string(),
                format!("{:.1}x", row.noise_scale),
                format_sci(row.lowest_common_rmse),
                row.speedup
                    .map(|s| format!("{s:.2}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    emit(
        "Noise-robustness ablation",
        &noise_table,
        "ablation_noise.csv",
    );
}
