//! Regenerates Figure 2: runtime versus unroll factor for `adi` with a single
//! observation per factor.

use alic_experiments::fig2;
use alic_experiments::report::{emit, TextTable};
use alic_experiments::RunOptions;

fn main() {
    // Figure 2 is a raw measurement sweep; options are validated for a
    // uniform CLI even though neither scale nor surrogate changes the sweep.
    let _options = RunOptions::from_args();
    println!("== Figure 2: adi runtime vs. unroll factor, one sample per point ==");
    println!("(kernels are profiled directly here; scale and --model/ALIC_MODEL do not apply)\n");
    let result = fig2::run(1);

    let mut table = TextTable::new(vec![
        "unroll factor",
        "observed runtime (s)",
        "true mean (s)",
    ]);
    for p in &result.points {
        table.push_row(vec![
            p.unroll.to_string(),
            format!("{:.4}", p.observed_runtime),
            format!("{:.4}", p.true_mean),
        ]);
    }
    emit("Figure 2: single-sample sweep", &table, "fig2.csv");

    println!(
        "low-unroll plateau (factors 1-8):   {:.3} s",
        result.plateau_level()
    );
    println!(
        "high-unroll plateau (factors 25-30): {:.3} s",
        result.high_level()
    );
    println!(
        "\n(The paper observes a plateau around 2.1 s climbing to about 3.1 s past an unroll \
         factor of 10; the simulated adi kernel reproduces that shape.)"
    );
}
