//! Regenerates Table 2: the spread of runtime variance and of the 95% CI to
//! mean ratio for the full-sample and 5-sample plans.

use alic_experiments::report::{emit, format_sci, TextTable};
use alic_experiments::{table2, RunOptions};

fn main() {
    // Table 2 characterizes the kernels' noise, independent of any surrogate
    // model; options are still validated for a uniform CLI.
    let options = RunOptions::from_args();
    let scale = options.scale;
    println!("== Table 2: variance and confidence-interval spreads ({scale} scale) ==");
    println!("(kernels are profiled directly here; --model/ALIC_MODEL does not apply)\n");
    let result = table2::run(scale);

    let mut table = TextTable::new(vec![
        "benchmark",
        "var min",
        "var mean",
        "var max",
        "full-sample CI/mean min",
        "full-sample CI/mean mean",
        "full-sample CI/mean max",
        "5-sample CI/mean min",
        "5-sample CI/mean mean",
        "5-sample CI/mean max",
    ]);
    for row in &result.rows {
        table.push_row(vec![
            row.benchmark.clone(),
            format_sci(row.variance.min),
            format_sci(row.variance.mean),
            format_sci(row.variance.max),
            format_sci(row.ci_ratio_full.min),
            format_sci(row.ci_ratio_full.mean),
            format_sci(row.ci_ratio_full.max),
            format_sci(row.ci_ratio_5.min),
            format_sci(row.ci_ratio_5.mean),
            format_sci(row.ci_ratio_5.max),
        ]);
    }
    emit("Table 2", &table, "table2.csv");

    println!(
        "(Columns mirror the paper's Table 2; the full-sample plan uses {} observations at this \
         scale. Note how correlation dwarfs every other kernel and how each kernel's variance \
         spans orders of magnitude across its own space.)",
        result.rows.first().map(|r| r.observations).unwrap_or(35)
    );
}
