//! Regenerates Figure 1: MAE over the `mm` unroll plane for one sample vs.
//! the optimal number of samples, plus the optimal sample counts.

use alic_experiments::report::{emit, format_sci, TextTable};
use alic_experiments::{fig1, RunOptions};

fn main() {
    // Figure 1 is a dataset-level study: the surrogate model plays no role,
    // but the option is still validated for a uniform CLI.
    let options = RunOptions::from_args();
    let scale = options.scale;
    println!("== Figure 1: sample-size study on the mm unroll plane ({scale} scale) ==");
    println!("(kernels are profiled directly here; --model/ALIC_MODEL does not apply)\n");
    let result = fig1::run(scale);

    let mut table = TextTable::new(vec![
        "unroll i1",
        "unroll i2",
        "mean runtime (s)",
        "MAE 1 sample (s)",
        "MAE optimal (s)",
        "optimal samples",
    ]);
    for p in &result.points {
        table.push_row(vec![
            p.unroll_i1.to_string(),
            p.unroll_i2.to_string(),
            format_sci(p.mean_runtime),
            format_sci(p.mae_single),
            format_sci(p.mae_optimal),
            p.optimal_samples.to_string(),
        ]);
    }
    emit("Figure 1 (a-c): per-point statistics", &table, "fig1.csv");

    println!(
        "fixed plan ({} samples/point): {} runs",
        result.observations_per_point, result.fixed_plan_runs
    );
    println!(
        "optimal plan ('perfect knowledge'): {} runs ({:.1}% of the fixed plan)",
        result.optimal_plan_runs,
        100.0 * result.optimal_fraction()
    );
    println!(
        "\n(The paper reports 31,500 runs for the fixed plan versus 15,131 with perfect \
         knowledge — roughly half; the simulated kernel reproduces the same qualitative gap.)"
    );
}
