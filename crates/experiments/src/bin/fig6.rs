//! Regenerates Figure 6: RMSE over evaluation time for the three sampling
//! plans on the six benchmarks the paper plots.

use alic_experiments::report::{emit_text, format_sci, TextTable};
use alic_experiments::{fig6, RunOptions};

fn main() {
    let options = RunOptions::from_args();
    println!(
        "== Figure 6: RMSE vs. evaluation time for three sampling plans ({}) ==\n",
        options.describe()
    );
    let result = fig6::run_with(&options.comparison_config());

    for kernel in &result.kernels {
        println!("--- {} ---", kernel.benchmark);
        let mut table = TextTable::new(vec!["cost (s)", "all obs", "one obs", "variable obs"]);
        // All series share the same grid; print a subsampled view.
        let grid_len = kernel.series[0].costs.len();
        let stride = (grid_len / 12).max(1);
        for i in (0..grid_len).step_by(stride) {
            let row: Vec<String> = std::iter::once(format_sci(kernel.series[0].costs[i]))
                .chain(kernel.series.iter().map(|s| format_sci(s.rmse[i])))
                .collect();
            table.push_row(row);
        }
        println!("{table}");

        // Full-resolution CSV per kernel.
        let mut csv = TextTable::new(vec![
            "cost_seconds",
            "all_observations",
            "one_observation",
            "variable_observations",
        ]);
        for i in 0..grid_len {
            let row: Vec<String> = std::iter::once(kernel.series[0].costs[i].to_string())
                .chain(kernel.series.iter().map(|s| s.rmse[i].to_string()))
                .collect();
            csv.push_row(row);
        }
        if let Some(path) = emit_text(&format!("fig6_{}.csv", kernel.benchmark), &csv.to_csv()) {
            println!("[csv written to {}]\n", path.display());
        }
    }
    println!(
        "(Interpretation, as in the paper: 'one observation' plateaus early on noisy kernels, \
         'all observations' is accurate but slow, and 'variable observations' tracks the accurate \
         curve at a fraction of the cost on most kernels.)"
    );
}
