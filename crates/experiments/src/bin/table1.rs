//! Regenerates Table 1: lowest common RMSE, cost to reach it for the
//! 35-observation baseline and the variable-observation technique, and the
//! per-benchmark speed-up with its geometric mean.

use alic_experiments::report::{emit, format_sci, TextTable};
use alic_experiments::{table1, RunOptions};

fn main() {
    let options = RunOptions::from_args();
    println!(
        "== Table 1: profiling cost to reach the lowest common RMSE ({}) ==\n",
        options.describe()
    );
    let (table1_result, _outcomes) = table1::run_with(&options.comparison_config());

    let mut table = TextTable::new(vec![
        "benchmark",
        "search space",
        "lowest common RMSE (s)",
        "cost of the baseline (s)",
        "cost of our approach (s)",
        "speed-up",
    ]);
    for row in &table1_result.rows {
        table.push_row(vec![
            row.benchmark.clone(),
            format_sci(row.search_space),
            format_sci(row.lowest_common_rmse),
            row.baseline_cost
                .map(format_sci)
                .unwrap_or_else(|| "-".into()),
            row.variable_cost
                .map(format_sci)
                .unwrap_or_else(|| "-".into()),
            row.speedup
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    emit("Table 1", &table, "table1.csv");

    match table1_result.geometric_mean_speedup {
        Some(gm) => println!("geometric mean speed-up: {gm:.2}x"),
        None => println!(
            "geometric mean speed-up: not available (no kernel produced a finite speed-up)"
        ),
    }
    println!(
        "\n(The paper reports a geometric-mean reduction of 3.97x, ranging from 0.29x on adi to \
         26x on gemver; absolute seconds differ on the simulator but the qualitative ordering \
         should match.)"
    );
}
