//! Regenerates Figure 5: the per-benchmark reduction of profiling cost
//! (speed-up of the variable-observation plan over the baseline) as an ASCII
//! bar chart.

use alic_experiments::fig5::Fig5Result;
use alic_experiments::report::{emit, TextTable};
use alic_experiments::{table1, RunOptions};

fn main() {
    let options = RunOptions::from_args();
    println!(
        "== Figure 5: reduction of profiling cost ({}) ==\n",
        options.describe()
    );
    let (table1_result, _outcomes) = table1::run_with(&options.comparison_config());
    let fig = Fig5Result::from_table1(&table1_result);

    let mut table = TextTable::new(vec!["benchmark", "reduction of profiling cost"]);
    for bar in &fig.bars {
        table.push_row(vec![bar.label.clone(), format!("{:.2}", bar.reduction)]);
    }
    emit("Figure 5 data", &table, "fig5.csv");

    println!("{}", fig.ascii_chart());
    println!(
        "(The paper's figure ranges from 0.29x on adi to 26x on gemver with a 3.97x geometric \
         mean.)"
    );
}
