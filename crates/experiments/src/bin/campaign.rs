//! Sharded, resumable campaign runner over the full experiment matrix
//! (kernels × models × sampling plans × repetitions). See
//! [`alic_experiments::campaign`] for the CLI contract.

use alic_experiments::campaign::{self, CampaignOptions};

fn main() {
    let options = CampaignOptions::from_args();
    if let Err(e) = campaign::run(&options) {
        eprintln!("campaign failed: {e}");
        std::process::exit(1);
    }
}
