//! Reproduction harness for every table and figure of the paper.
//!
//! Each module regenerates one piece of the paper's evaluation on top of the
//! simulated SPAPT kernels and prints the same rows/series the paper reports:
//!
//! | Module / binary | Paper artefact |
//! |---|---|
//! | [`fig1`]    (`cargo run -p alic-experiments --bin fig1`)    | Figure 1 (a–c): MAE over the `mm` unroll plane for 1 vs. optimal samples, and the optimal sample count |
//! | [`fig2`]    (`--bin fig2`)    | Figure 2: runtime vs. unroll factor for `adi`, one sample per point |
//! | [`table1`]  (`--bin table1`)  | Table 1: lowest common RMSE, cost to reach it for the baseline and the variable plan, speed-up, geometric mean |
//! | [`table2`]  (`--bin table2`)  | Table 2: spread of variance and 95% CI/mean for 35- and 5-sample plans |
//! | [`fig5`]    (`--bin fig5`)    | Figure 5: per-kernel reduction of profiling cost (bar-chart values) |
//! | [`fig6`]    (`--bin fig6`)    | Figure 6 (a–f): RMSE vs. evaluation time for the three sampling plans |
//! | [`ablation`](`--bin ablation`)| §3.3 / §7 ablations: acquisition function and artificial-noise robustness |
//! | [`campaign`] (`--bin campaign`)| Sharded, resumable campaign over kernels × models × plans × repetitions |
//!
//! Every binary accepts an optional scale argument (`quick`, `laptop`,
//! `full`) controlling how much work is done; `laptop` (the default)
//! reproduces the qualitative shapes in seconds to minutes, while `full`
//! approaches the paper's protocol sizes. Binaries that build learners also
//! accept `--model <name>` (or the `ALIC_MODEL` environment variable) to run
//! the whole protocol against any surrogate family of
//! [`SurrogateSpec`](alic_model::SurrogateSpec) — see [`options`].
//!
//! All learner-driven binaries run on the zero-copy batched scoring pipeline
//! (flat [`FeatureMatrix`](alic_stats::FeatureMatrix) pools, batch
//! `alc_scores`/`predict_batch`), so their wall-clock cost tracks the
//! `perf_report` numbers in `BENCH_PR2.json`; results stay bit-identical for
//! a fixed seed regardless of the worker-thread count.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod campaign;
pub mod fig1;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod options;
pub mod report;
pub mod scale;
pub mod table1;
pub mod table2;

pub use campaign::CampaignOptions;
pub use options::RunOptions;
pub use scale::Scale;
