//! Table 1 — lowest common RMSE, cost to reach it, and speed-up per kernel.
//!
//! For every benchmark the paper reports the lowest average RMSE that both
//! the 35-observation baseline and the variable-observation technique reach,
//! the profiling seconds each needed to first reach it, and their ratio (the
//! speed-up), closing with the geometric mean over the 11 kernels.

use serde::{Deserialize, Serialize};

use alic_core::experiment::{ComparisonConfig, ComparisonOutcome};
use alic_core::plan::SamplingPlan;
use alic_core::runner::{self, CampaignSpec};
use alic_sim::spapt::{spapt_kernel, SpaptKernel};
use alic_stats::error::geometric_mean;

use crate::scale::Scale;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Size of the simulated search space.
    pub search_space: f64,
    /// Lowest RMSE both approaches reach (seconds).
    pub lowest_common_rmse: f64,
    /// Profiling cost of the fixed-observation baseline to reach it (s).
    pub baseline_cost: Option<f64>,
    /// Profiling cost of the variable-observation approach to reach it (s).
    pub variable_cost: Option<f64>,
    /// Speed-up (baseline cost / variable cost).
    pub speedup: Option<f64>,
}

/// The full Table 1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// One row per benchmark, in the paper's order.
    pub rows: Vec<Table1Row>,
    /// Geometric mean of the per-benchmark speed-ups.
    pub geometric_mean_speedup: Option<f64>,
}

/// Runs the full plan comparison for the given kernels and converts the
/// outcomes into Table 1 rows.
pub fn rows_from_outcomes(
    outcomes: &[ComparisonOutcome],
    config: &ComparisonConfig,
) -> Table1Result {
    let baseline_plan = config
        .plans
        .iter()
        .copied()
        .find(|p| !p.allows_revisits() && p.observations_per_visit() > 1)
        .unwrap_or(SamplingPlan::fixed35());
    let variable_plan = config
        .plans
        .iter()
        .copied()
        .find(|p| p.allows_revisits())
        .unwrap_or_default();

    let rows: Vec<Table1Row> = outcomes
        .iter()
        .map(|outcome| {
            let kernel = SpaptKernel::from_name(&outcome.kernel);
            let search_space = kernel
                .map(|k| spapt_kernel(k).space().cardinality_f64())
                .unwrap_or(f64::NAN);
            // Table 1 compares the baseline and the variable plan head to
            // head; the one-observation plan only appears in Figure 6.
            let pair = outcome.pairwise(baseline_plan, variable_plan);
            Table1Row {
                benchmark: outcome.kernel.clone(),
                search_space,
                lowest_common_rmse: pair
                    .map(|p| p.lowest_common_rmse)
                    .unwrap_or(outcome.lowest_common_rmse),
                baseline_cost: pair.and_then(|p| p.cost_first),
                variable_cost: pair.and_then(|p| p.cost_second),
                speedup: pair.and_then(|p| p.speedup()),
            }
        })
        .collect();

    let speedups: Vec<f64> = rows.iter().filter_map(|r| r.speedup).collect();
    let geometric_mean_speedup = geometric_mean(&speedups).ok();
    Table1Result {
        rows,
        geometric_mean_speedup,
    }
}

/// Runs the comparison for a set of kernels with an explicit configuration
/// (any scale, any [`SurrogateSpec`](alic_model::SurrogateSpec) family).
///
/// Executes as one flat campaign over the unit-based runner — every
/// `(kernel, plan, repetition)` cell is an independent work unit on the
/// work-stealing pool, so a cheap kernel finishing early never leaves
/// workers idle while an expensive one is still comparing plans. The same
/// matrix can be sharded, checkpointed and resumed across processes through
/// the `campaign` binary.
pub fn run_for_kernels_with(
    kernels: &[SpaptKernel],
    config: &ComparisonConfig,
) -> (Table1Result, Vec<ComparisonOutcome>) {
    let spec = CampaignSpec::new(
        kernels.iter().map(|&k| spapt_kernel(k)).collect(),
        vec![config.model],
        config.clone(),
    );
    let report =
        runner::run_campaign(&spec).expect("comparison configuration is internally consistent");
    let outcomes: Vec<ComparisonOutcome> = report.entries.into_iter().map(|e| e.outcome).collect();
    (rows_from_outcomes(&outcomes, config), outcomes)
}

/// Runs the comparison for a set of kernels at a given scale with the
/// default (dynamic-tree) surrogate.
pub fn run_for_kernels(
    kernels: &[SpaptKernel],
    scale: Scale,
) -> (Table1Result, Vec<ComparisonOutcome>) {
    run_for_kernels_with(kernels, &scale.comparison_config())
}

/// Runs Table 1 over all 11 benchmarks with an explicit configuration.
pub fn run_with(config: &ComparisonConfig) -> (Table1Result, Vec<ComparisonOutcome>) {
    run_for_kernels_with(&SpaptKernel::all(), config)
}

/// Runs Table 1 over all 11 benchmarks at the given scale.
pub fn run(scale: Scale) -> (Table1Result, Vec<ComparisonOutcome>) {
    run_with(&scale.comparison_config())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_produces_rows_with_speedups() {
        let kernels = [SpaptKernel::Mvt, SpaptKernel::Gemver];
        let (table, outcomes) = run_for_kernels(&kernels, Scale::Quick);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(outcomes.len(), 2);
        for row in &table.rows {
            assert!(row.lowest_common_rmse.is_finite());
            assert!(row.search_space > 1e6);
        }
        // At least one of the kernels should yield a finite speed-up.
        assert!(table.rows.iter().any(|r| r.speedup.is_some()));
    }

    #[test]
    fn geometric_mean_reflects_individual_speedups() {
        let kernels = [SpaptKernel::Mvt, SpaptKernel::Hessian];
        let (table, _) = run_for_kernels(&kernels, Scale::Quick);
        if let Some(gm) = table.geometric_mean_speedup {
            let speedups: Vec<f64> = table.rows.iter().filter_map(|r| r.speedup).collect();
            let lo = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = speedups.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(gm >= lo && gm <= hi);
        }
    }
}
