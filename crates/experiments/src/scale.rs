//! Experiment scale presets.
//!
//! The paper's full protocol (10,000 profiled configurations per kernel,
//! 2,500 learning iterations, 5,000 particles, 10 repetitions) takes days of
//! compute. The harness therefore offers three presets that keep the
//! experimental *structure* identical while trading run time for statistical
//! resolution.

use alic_core::experiment::ComparisonConfig;
use alic_core::learner::LearnerConfig;
use alic_core::plan::SamplingPlan;
use alic_data::dataset::DatasetConfig;
use alic_model::dynatree::DynaTreeConfig;
use alic_model::SurrogateSpec;

/// How much work an experiment binary performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Smoke-test sizes; finishes in a few seconds. Used by integration
    /// tests and Criterion benches.
    Quick,
    /// Laptop-scale sizes reproducing the qualitative shapes of the paper's
    /// results in minutes. The default.
    #[default]
    Laptop,
    /// Sizes approaching the paper's protocol; expect hours.
    Full,
}

impl Scale {
    /// Parses a scale name (`quick`, `laptop`, `full`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "quick" | "smoke" => Some(Scale::Quick),
            "laptop" | "default" => Some(Scale::Laptop),
            "full" | "paper" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Number of dynamic-tree particles appropriate for this scale (the
    /// paper's full protocol uses thousands; smoke tests get by with dozens).
    pub fn particles(self) -> usize {
        match self {
            Scale::Quick => 40,
            Scale::Laptop => 60,
            Scale::Full => 1_000,
        }
    }

    /// The default surrogate for this scale: the paper's dynamic tree with
    /// [`Scale::particles`] particles.
    pub fn default_model(self) -> SurrogateSpec {
        self.scaled_model(SurrogateSpec::default())
    }

    /// Adjusts a surrogate specification to this scale. Stochastic-ensemble
    /// hyper-parameters (the dynamic tree's particle count) follow the scale;
    /// every other family is already scale-independent and passes through
    /// unchanged.
    pub fn scaled_model(self, model: SurrogateSpec) -> SurrogateSpec {
        match model {
            SurrogateSpec::DynaTree(config) => SurrogateSpec::DynaTree(DynaTreeConfig {
                particles: self.particles(),
                ..config
            }),
            other => other,
        }
    }

    /// The plan-comparison configuration for this scale with an explicit
    /// surrogate model (used by the binaries' `--model` / `ALIC_MODEL`
    /// selection).
    pub fn comparison_config_for(self, model: SurrogateSpec) -> ComparisonConfig {
        ComparisonConfig {
            model: self.scaled_model(model),
            ..self.comparison_config()
        }
    }

    /// The plan-comparison configuration for this scale (used by Table 1,
    /// Figure 5, Figure 6 and the ablations).
    pub fn comparison_config(self) -> ComparisonConfig {
        match self {
            Scale::Quick => ComparisonConfig {
                learner: LearnerConfig {
                    initial_examples: 4,
                    initial_observations: 8,
                    candidates_per_iteration: 25,
                    max_iterations: 60,
                    evaluate_every: 10,
                    ..Default::default()
                },
                plans: default_plans(8),
                repetitions: 2,
                model: Scale::Quick.default_model(),
                dataset: DatasetConfig {
                    configurations: 300,
                    observations: 8,
                    seed: 0,
                },
                train_size: 220,
                grid_resolution: 60,
                seed: 0,
            },
            Scale::Laptop => ComparisonConfig {
                learner: LearnerConfig {
                    initial_examples: 5,
                    initial_observations: 35,
                    candidates_per_iteration: 60,
                    // Large enough that the 35-observation baseline completes
                    // a meaningful number of training examples within the
                    // cost window where all plans are simultaneously active.
                    max_iterations: 900,
                    evaluate_every: 15,
                    ..Default::default()
                },
                plans: default_plans(35),
                repetitions: 3,
                model: Scale::Laptop.default_model(),
                dataset: DatasetConfig {
                    configurations: 2_000,
                    observations: 35,
                    seed: 0,
                },
                train_size: 1_500,
                grid_resolution: 150,
                seed: 0,
            },
            Scale::Full => ComparisonConfig {
                learner: LearnerConfig {
                    initial_examples: 5,
                    initial_observations: 35,
                    candidates_per_iteration: 500,
                    max_iterations: 2_500,
                    evaluate_every: 25,
                    ..Default::default()
                },
                plans: default_plans(35),
                repetitions: 10,
                model: Scale::Full.default_model(),
                dataset: DatasetConfig {
                    configurations: 10_000,
                    observations: 35,
                    seed: 0,
                },
                train_size: 7_500,
                grid_resolution: 400,
                seed: 0,
            },
        }
    }

    /// Number of grid points per unroll axis for the Figure 1 study.
    pub fn fig1_grid(self) -> u32 {
        match self {
            Scale::Quick => 10,
            Scale::Laptop | Scale::Full => 30,
        }
    }

    /// Observations per configuration for the Figure 1 / Table 2 studies.
    pub fn observations(self) -> usize {
        match self {
            Scale::Quick => 15,
            Scale::Laptop | Scale::Full => 35,
        }
    }

    /// Number of random configurations sampled per kernel for Table 2.
    pub fn table2_configurations(self) -> usize {
        match self {
            Scale::Quick => 60,
            Scale::Laptop => 300,
            Scale::Full => 2_000,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Scale::Quick => "quick",
            Scale::Laptop => "laptop",
            Scale::Full => "full",
        };
        f.write_str(name)
    }
}

/// The paper's three sampling plans, with the fixed/"all observations" count
/// scaled alongside the rest of the preset.
fn default_plans(observations: usize) -> Vec<SamplingPlan> {
    vec![
        SamplingPlan::fixed(observations),
        SamplingPlan::one_observation(),
        SamplingPlan::sequential(observations),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        assert_eq!(Scale::from_name("quick"), Some(Scale::Quick));
        assert_eq!(Scale::from_name("LAPTOP"), Some(Scale::Laptop));
        assert_eq!(Scale::from_name("full"), Some(Scale::Full));
        assert_eq!(Scale::from_name("bogus"), None);
        assert_eq!(Scale::Laptop.to_string(), "laptop");
    }

    #[test]
    fn presets_grow_with_scale() {
        let quick = Scale::Quick.comparison_config();
        let laptop = Scale::Laptop.comparison_config();
        let full = Scale::Full.comparison_config();
        assert!(quick.learner.max_iterations < laptop.learner.max_iterations);
        assert!(laptop.learner.max_iterations < full.learner.max_iterations);
        assert!(quick.dataset.configurations < full.dataset.configurations);
        assert_eq!(full.learner.initial_observations, 35);
        assert_eq!(full.repetitions, 10);
    }

    #[test]
    fn every_preset_compares_the_papers_three_plans() {
        for scale in [Scale::Quick, Scale::Laptop, Scale::Full] {
            let config = scale.comparison_config();
            assert_eq!(config.plans.len(), 3);
            assert!(config.plans.iter().any(|p| p.allows_revisits()));
            assert!(config.plans.contains(&SamplingPlan::one_observation()));
        }
    }

    #[test]
    fn default_model_particles_grow_with_scale() {
        for scale in [Scale::Quick, Scale::Laptop, Scale::Full] {
            match scale.default_model() {
                SurrogateSpec::DynaTree(config) => assert_eq!(config.particles, scale.particles()),
                other => panic!("default model must be the dynamic tree, got {other}"),
            }
        }
        assert!(Scale::Quick.particles() < Scale::Full.particles());
    }

    #[test]
    fn scaled_model_leaves_deterministic_families_alone() {
        let cart = SurrogateSpec::from_name("cart").unwrap();
        assert_eq!(Scale::Full.scaled_model(cart), cart);
        let config = Scale::Quick.comparison_config_for(cart);
        assert_eq!(config.model, cart);
        // The rest of the preset is untouched by the model choice.
        assert_eq!(
            config.repetitions,
            Scale::Quick.comparison_config().repetitions
        );
    }
}
