//! Figure 6 — RMSE over evaluation time for three sampling plans.
//!
//! Figure 6 of the paper plots, for six representative benchmarks (`adi`,
//! `atax`, `correlation`, `gemver`, `jacobi`, `mvt`), the Root Mean Squared
//! Error of the learned model against cumulative profiling cost for the
//! "all observations", "one observation" and "variable observations"
//! approaches, averaged over ten runs and restricted to the cost range in
//! which all three are active. This module extracts exactly those series
//! from the plan-comparison outcomes.

use serde::{Deserialize, Serialize};

use alic_core::experiment::ComparisonOutcome;
use alic_sim::spapt::SpaptKernel;

use crate::scale::Scale;
use crate::table1;

/// The six benchmarks shown in Figure 6.
pub const FIG6_KERNELS: [SpaptKernel; 6] = [
    SpaptKernel::Adi,
    SpaptKernel::Atax,
    SpaptKernel::Correlation,
    SpaptKernel::Gemver,
    SpaptKernel::Jacobi,
    SpaptKernel::Mvt,
];

/// One averaged RMSE-versus-cost series for one sampling plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Plan label (matches the paper's legend).
    pub plan: String,
    /// Cost grid, in seconds.
    pub costs: Vec<f64>,
    /// Mean RMSE at each grid cost.
    pub rmse: Vec<f64>,
}

/// All series for one benchmark (one sub-figure of Figure 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCurves {
    /// Benchmark name.
    pub benchmark: String,
    /// One series per sampling plan.
    pub series: Vec<Series>,
}

/// The full Figure 6 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// One set of curves per benchmark.
    pub kernels: Vec<KernelCurves>,
}

/// Converts plan-comparison outcomes into Figure 6 series.
pub fn curves_from_outcomes(outcomes: &[ComparisonOutcome]) -> Fig6Result {
    let kernels = outcomes
        .iter()
        .map(|outcome| KernelCurves {
            benchmark: outcome.kernel.clone(),
            series: outcome
                .plans
                .iter()
                .map(|p| Series {
                    plan: p.plan.label(),
                    costs: p.averaged.costs.clone(),
                    rmse: p.averaged.mean_rmse.clone(),
                })
                .collect(),
        })
        .collect();
    Fig6Result { kernels }
}

/// Runs the comparison for the six Figure 6 benchmarks with an explicit
/// configuration (any scale, any surrogate family).
pub fn run_with(config: &alic_core::experiment::ComparisonConfig) -> Fig6Result {
    let (_, outcomes) = table1::run_for_kernels_with(&FIG6_KERNELS, config);
    curves_from_outcomes(&outcomes)
}

/// Runs the comparison for the six Figure 6 benchmarks at the given scale.
pub fn run(scale: Scale) -> Fig6Result {
    run_with(&scale.comparison_config())
}

#[cfg(test)]
mod tests {
    use super::*;
    use alic_sim::spapt::SpaptKernel;

    #[test]
    fn produces_three_series_per_kernel() {
        let (_, outcomes) = table1::run_for_kernels(&[SpaptKernel::Mvt], Scale::Quick);
        let fig = curves_from_outcomes(&outcomes);
        assert_eq!(fig.kernels.len(), 1);
        let curves = &fig.kernels[0];
        assert_eq!(curves.benchmark, "mvt");
        assert_eq!(curves.series.len(), 3);
        for series in &curves.series {
            assert_eq!(series.costs.len(), series.rmse.len());
            assert!(!series.costs.is_empty());
            assert!(series.rmse.iter().all(|r| r.is_finite()));
        }
    }

    #[test]
    fn series_share_a_common_cost_grid() {
        let (_, outcomes) = table1::run_for_kernels(&[SpaptKernel::Hessian], Scale::Quick);
        let fig = curves_from_outcomes(&outcomes);
        let curves = &fig.kernels[0];
        let reference = &curves.series[0].costs;
        for series in &curves.series[1..] {
            assert_eq!(&series.costs, reference);
        }
    }
}
