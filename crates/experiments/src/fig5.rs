//! Figure 5 — reduction of profiling cost per benchmark.
//!
//! Figure 5 is the bar-chart view of Table 1's final column: the per-kernel
//! reduction of profiling overhead (speed-up of the variable-observation
//! plan over the 35-observation baseline) plus the geometric mean. This
//! module derives those values from a Table 1 result and renders a plain
//! ASCII bar chart.

use serde::{Deserialize, Serialize};

use crate::table1::Table1Result;

/// One bar of the chart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bar {
    /// Benchmark name (or `"Geo-mean"`).
    pub label: String,
    /// Reduction of profiling cost (speed-up factor).
    pub reduction: f64,
}

/// The full Figure 5 data series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// Per-benchmark bars followed by the geometric mean.
    pub bars: Vec<Bar>,
}

impl Fig5Result {
    /// Derives the bars from a Table 1 result, sorted ascending by reduction
    /// as in the paper's figure.
    pub fn from_table1(table: &Table1Result) -> Self {
        let mut bars: Vec<Bar> = table
            .rows
            .iter()
            .filter_map(|row| {
                row.speedup.map(|s| Bar {
                    label: row.benchmark.clone(),
                    reduction: s,
                })
            })
            .collect();
        bars.sort_by(|a, b| {
            a.reduction
                .partial_cmp(&b.reduction)
                .expect("finite reductions")
        });
        if let Some(gm) = table.geometric_mean_speedup {
            bars.push(Bar {
                label: "Geo-mean".to_string(),
                reduction: gm,
            });
        }
        Fig5Result { bars }
    }

    /// Renders a plain ASCII bar chart (one row per benchmark).
    pub fn ascii_chart(&self) -> String {
        let max = self
            .bars
            .iter()
            .map(|b| b.reduction)
            .fold(0.0f64, f64::max)
            .max(1.0);
        let width = 50.0;
        let mut out = String::new();
        for bar in &self.bars {
            let filled = ((bar.reduction / max) * width).round().max(1.0) as usize;
            out.push_str(&format!(
                "{:<12} {:>7.2}x |{}\n",
                bar.label,
                bar.reduction,
                "#".repeat(filled)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1::Table1Row;

    fn table_with(speedups: &[(&str, Option<f64>)]) -> Table1Result {
        let rows = speedups
            .iter()
            .map(|(name, speedup)| Table1Row {
                benchmark: name.to_string(),
                search_space: 1e9,
                lowest_common_rmse: 0.05,
                baseline_cost: Some(100.0),
                variable_cost: speedup.map(|s| 100.0 / s),
                speedup: *speedup,
            })
            .collect();
        Table1Result {
            rows,
            geometric_mean_speedup: Some(4.0),
        }
    }

    #[test]
    fn bars_are_sorted_and_end_with_the_geometric_mean() {
        let table = table_with(&[
            ("adi", Some(0.3)),
            ("gemver", Some(26.0)),
            ("mm", Some(1.1)),
        ]);
        let fig = Fig5Result::from_table1(&table);
        assert_eq!(fig.bars.len(), 4);
        assert_eq!(fig.bars[0].label, "adi");
        assert_eq!(fig.bars.last().unwrap().label, "Geo-mean");
        assert!(fig.bars[0].reduction <= fig.bars[1].reduction);
    }

    #[test]
    fn kernels_without_a_speedup_are_skipped() {
        let table = table_with(&[("adi", None), ("mvt", Some(1.2))]);
        let fig = Fig5Result::from_table1(&table);
        assert_eq!(fig.bars.len(), 2); // mvt + Geo-mean
    }

    #[test]
    fn ascii_chart_has_one_line_per_bar() {
        let table = table_with(&[("a", Some(2.0)), ("b", Some(8.0))]);
        let fig = Fig5Result::from_table1(&table);
        let chart = fig.ascii_chart();
        assert_eq!(chart.lines().count(), fig.bars.len());
        assert!(chart.contains('#'));
    }
}
