//! Plain-text table formatting and CSV export shared by the experiment
//! binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, width)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}");
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a number in the compact scientific style the paper's tables use
/// (e.g. `2.62e4`, `0.087`).
pub fn format_sci(value: f64) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    let magnitude = value.abs();
    if (0.01..10_000.0).contains(&magnitude) {
        if magnitude >= 100.0 {
            format!("{value:.1}")
        } else {
            format!("{value:.3}")
        }
    } else {
        format!("{value:.2e}")
    }
}

/// Directory under which experiment binaries drop their CSV output.
pub fn output_dir() -> PathBuf {
    std::env::var_os("ALIC_OUTPUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("experiments"))
}

/// Writes `contents` to `<output dir>/<name>`, creating the directory if
/// needed, and returns the path written.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_output(name: &str, contents: &str) -> io::Result<PathBuf> {
    write_output_to(&output_dir(), name, contents)
}

/// Writes `contents` to `<dir>/<name>`, creating the directory if needed,
/// and returns the path written (the environment-independent core of
/// [`write_output`]).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_output_to(dir: &Path, name: &str, contents: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, contents)?;
    Ok(path)
}

/// Writes a table both to stdout and, as CSV, under the output directory.
/// I/O failures are reported to stderr but do not abort the experiment.
pub fn emit(title: &str, table: &TextTable, csv_name: &str) {
    println!("{title}");
    println!("{table}");
    match write_output(csv_name, &table.to_csv()) {
        Ok(path) => println!("[csv written to {}]\n", path.display()),
        Err(e) => eprintln!("[warning] could not write {csv_name}: {e}"),
    }
}

/// Convenience wrapper for writing an arbitrary text artefact (for example a
/// gnuplot-ready series) next to the CSV outputs.
pub fn emit_text(name: &str, contents: &str) -> Option<PathBuf> {
    match write_output(name, contents) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("[warning] could not write {name}: {e}");
            None
        }
    }
}

/// Returns the path `p` relative to the crate-independent output directory,
/// for display in summaries.
pub fn display_path(p: &Path) -> String {
    p.display().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = TextTable::new(vec!["benchmark", "speed-up"]);
        table.push_row(vec!["adi", "0.29"]);
        table.push_row(vec!["gemver", "26.00"]);
        let rendered = table.render();
        assert!(rendered.contains("benchmark"));
        assert!(rendered.lines().count() >= 4);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut table = TextTable::new(vec!["a", "b", "c"]);
        table.push_row(vec!["1"]);
        assert!(table.render().lines().count() == 3);
        assert_eq!(table.to_csv().lines().nth(1).unwrap(), "1,,");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut table = TextTable::new(vec!["name", "value"]);
        table.push_row(vec!["a,b", "say \"hi\""]);
        let csv = table.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn scientific_formatting_matches_paper_style() {
        assert_eq!(format_sci(0.0), "0");
        assert_eq!(format_sci(0.087), "0.087");
        assert_eq!(format_sci(26_200.0), "2.62e4");
        assert_eq!(format_sci(3.78e14), "3.78e14");
        assert_eq!(format_sci(57.46), "57.460");
        assert_eq!(format_sci(1.95e-7), "1.95e-7");
    }

    #[test]
    fn write_output_creates_the_file() {
        std::env::set_var(
            "ALIC_OUTPUT_DIR",
            std::env::temp_dir().join("alic-report-test"),
        );
        let path = write_output("unit-test.csv", "a,b\n1,2\n").unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).ok();
        std::env::remove_var("ALIC_OUTPUT_DIR");
    }
}
