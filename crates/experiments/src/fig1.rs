//! Figure 1 — the motivation study on the `mm` unroll plane.
//!
//! The paper compiles the SPAPT matrix-multiplication kernel with every
//! combination of unroll factors for its two outer loops (30 × 30 points),
//! runs each binary 35 times, and asks two questions per point:
//!
//! * Figure 1a — what Mean Absolute Error would a *single* observation have
//!   incurred relative to the 35-sample mean?
//! * Figures 1b/1c — what is the *smallest* number of samples whose mean
//!   stays within 0.1 ms of the 35-sample mean, and what error does that
//!   optimal plan leave?
//!
//! The punchline is the total number of runs: 31,500 for the fixed plan
//! versus roughly half with "perfect knowledge" of the per-point optimum.

use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use alic_sim::profiler::{Profiler, SimulatedProfiler};
use alic_sim::space::Configuration;
use alic_sim::spapt::{spapt_kernel, SpaptKernel};
use alic_stats::error::mean_absolute_deviation;
use alic_stats::rng::{seeded_stream, Rng as StatsRng};
use alic_stats::summary::Summary;

use crate::scale::Scale;

/// The paper's MAE threshold for the "optimal" sampling plan (0.1 ms).
pub const MAE_THRESHOLD_SECONDS: f64 = 1e-4;

/// Statistics for one point of the unroll plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanePoint {
    /// Unroll factor of loop i1.
    pub unroll_i1: u32,
    /// Unroll factor of loop i2.
    pub unroll_i2: u32,
    /// Mean runtime over all observations (the reference value).
    pub mean_runtime: f64,
    /// MAE of a single-observation estimate (Figure 1a).
    pub mae_single: f64,
    /// MAE of the optimal-size estimate (Figure 1b).
    pub mae_optimal: f64,
    /// Optimal number of samples (Figure 1c).
    pub optimal_samples: usize,
}

/// Result of the Figure 1 study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Per-point statistics over the unroll plane.
    pub points: Vec<PlanePoint>,
    /// Observations taken per point (35 in the paper).
    pub observations_per_point: usize,
    /// Total runs a fixed plan needs (`points × observations_per_point`).
    pub fixed_plan_runs: usize,
    /// Total runs the per-point optimal plan needs (Σ optimal samples).
    pub optimal_plan_runs: usize,
}

impl Fig1Result {
    /// Fraction of the fixed plan's runs that the optimal plan needs.
    pub fn optimal_fraction(&self) -> f64 {
        self.optimal_plan_runs as f64 / self.fixed_plan_runs as f64
    }
}

/// Expected absolute deviation of a `k`-sample mean from the full-sample
/// mean, estimated by drawing random subsets.
fn subset_mae(samples: &[f64], k: usize, reference: f64, rng: &mut StatsRng) -> f64 {
    if k >= samples.len() {
        return (Summary::from_slice(samples).mean - reference).abs();
    }
    const RESAMPLES: usize = 40;
    let mut indices: Vec<usize> = (0..samples.len()).collect();
    let mut deviations = Vec::with_capacity(RESAMPLES);
    for _ in 0..RESAMPLES {
        indices.shuffle(rng);
        let mean: f64 = indices[..k].iter().map(|&i| samples[i]).sum::<f64>() / k as f64;
        deviations.push((mean - reference).abs());
    }
    deviations.iter().sum::<f64>() / deviations.len() as f64
}

/// Runs the Figure 1 study at the given scale.
pub fn run(scale: Scale) -> Fig1Result {
    run_with(
        scale.fig1_grid(),
        scale.observations(),
        MAE_THRESHOLD_SECONDS,
        0,
    )
}

/// Runs the study with explicit parameters (exposed for tests and benches).
pub fn run_with(grid: u32, observations: usize, threshold: f64, seed: u64) -> Fig1Result {
    let spec = spapt_kernel(SpaptKernel::Mm);
    let mut profiler = SimulatedProfiler::new(spec, seed);
    let default_values: Vec<u32> = profiler.space().default_configuration().values().to_vec();
    let mut rng = seeded_stream(seed, 0xF161);

    let mut points = Vec::with_capacity((grid * grid) as usize);
    for i1 in 1..=grid {
        for i2 in 1..=grid {
            let mut values = default_values.clone();
            values[0] = i1;
            values[1] = i2;
            let configuration = Configuration::new(values);
            let samples: Vec<f64> = (0..observations)
                .map(|_| profiler.measure(&configuration).runtime)
                .collect();
            let reference = Summary::from_slice(&samples).mean;
            let mae_single =
                mean_absolute_deviation(&samples, reference).expect("sample set is non-empty");
            // Smallest k whose subsampled mean stays within the threshold.
            let mut optimal_samples = observations;
            let mut mae_optimal = 0.0;
            for k in 1..=observations {
                let mae = subset_mae(&samples, k, reference, &mut rng);
                if mae <= threshold {
                    optimal_samples = k;
                    mae_optimal = mae;
                    break;
                }
                mae_optimal = mae;
            }
            points.push(PlanePoint {
                unroll_i1: i1,
                unroll_i2: i2,
                mean_runtime: reference,
                mae_single,
                mae_optimal,
                optimal_samples,
            });
        }
    }
    let fixed_plan_runs = points.len() * observations;
    let optimal_plan_runs = points.iter().map(|p| p.optimal_samples).sum();
    Fig1Result {
        points,
        observations_per_point: observations,
        fixed_plan_runs,
        optimal_plan_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_result() -> Fig1Result {
        run_with(6, 12, MAE_THRESHOLD_SECONDS, 1)
    }

    #[test]
    fn covers_the_whole_plane() {
        let result = small_result();
        assert_eq!(result.points.len(), 36);
        assert_eq!(result.fixed_plan_runs, 36 * 12);
        assert!(result.points.iter().all(|p| p.mean_runtime > 0.0));
    }

    #[test]
    fn optimal_plan_never_exceeds_the_fixed_plan() {
        let result = small_result();
        assert!(result.optimal_plan_runs <= result.fixed_plan_runs);
        assert!(result.optimal_fraction() <= 1.0);
        for p in &result.points {
            assert!(p.optimal_samples >= 1 && p.optimal_samples <= 12);
        }
    }

    #[test]
    fn noisier_points_need_more_samples() {
        // Correlation between single-sample MAE and the optimal sample count
        // should be positive: points that are noisy with one sample need more.
        let result = small_result();
        let mut noisy_needs: Vec<usize> = Vec::new();
        let mut quiet_needs: Vec<usize> = Vec::new();
        let median_mae = {
            let mut maes: Vec<f64> = result.points.iter().map(|p| p.mae_single).collect();
            maes.sort_by(|a, b| a.partial_cmp(b).unwrap());
            maes[maes.len() / 2]
        };
        for p in &result.points {
            if p.mae_single > median_mae {
                noisy_needs.push(p.optimal_samples);
            } else {
                quiet_needs.push(p.optimal_samples);
            }
        }
        let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len().max(1) as f64;
        assert!(
            mean(&noisy_needs) >= mean(&quiet_needs),
            "noisy half should need at least as many samples ({} vs {})",
            mean(&noisy_needs),
            mean(&quiet_needs)
        );
    }

    #[test]
    fn some_points_get_away_with_a_single_sample() {
        // The mm plane has genuinely quiet regions (Table 2's min variance is
        // ~3e-10), so at least some points should need only one observation.
        let result = small_result();
        assert!(result.points.iter().any(|p| p.optimal_samples == 1));
    }
}
