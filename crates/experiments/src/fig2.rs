//! Figure 2 — runtime versus unroll factor for `adi` with one sample each.
//!
//! The paper unrolls loop i1 of the `adi` benchmark between 1 and 30, takes a
//! single runtime sample per factor, and observes that the underlying pattern
//! (a plateau around 2.1 s that climbs past an unroll factor of ~10 and
//! levels off near 3.1 s) is visible to the human eye despite the noise. The
//! same sweep over the simulated `adi` kernel reproduces that shape.

use serde::{Deserialize, Serialize};

use alic_sim::profiler::{Profiler, SimulatedProfiler};
use alic_sim::space::Configuration;
use alic_sim::spapt::{spapt_kernel, SpaptKernel};

/// One point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Unroll factor applied to loop i1.
    pub unroll: u32,
    /// Single observed runtime, in seconds.
    pub observed_runtime: f64,
    /// Ground-truth mean runtime, in seconds.
    pub true_mean: f64,
}

/// Result of the Figure 2 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Points in unroll-factor order.
    pub points: Vec<SweepPoint>,
}

impl Fig2Result {
    /// Mean observed runtime over the low-unroll plateau (factors 1–8).
    pub fn plateau_level(&self) -> f64 {
        mean(
            self.points
                .iter()
                .filter(|p| p.unroll <= 8)
                .map(|p| p.observed_runtime),
        )
    }

    /// Mean observed runtime over the high-unroll plateau (factors 25–30).
    pub fn high_level(&self) -> f64 {
        mean(
            self.points
                .iter()
                .filter(|p| p.unroll >= 25)
                .map(|p| p.observed_runtime),
        )
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let collected: Vec<f64> = values.collect();
    if collected.is_empty() {
        0.0
    } else {
        collected.iter().sum::<f64>() / collected.len() as f64
    }
}

/// Runs the sweep: unroll factors 1..=30, one observation each.
pub fn run(seed: u64) -> Fig2Result {
    let spec = spapt_kernel(SpaptKernel::Adi);
    let mut profiler = SimulatedProfiler::new(spec, seed);
    let default_values: Vec<u32> = profiler.space().default_configuration().values().to_vec();
    let max_unroll = profiler.space().params()[0].max;
    let mut points = Vec::new();
    for unroll in 1..=max_unroll {
        let mut values = default_values.clone();
        values[0] = unroll;
        let configuration = Configuration::new(values);
        let observed = profiler.measure(&configuration).runtime;
        points.push(SweepPoint {
            unroll,
            observed_runtime: observed,
            true_mean: profiler.true_mean(&configuration),
        });
    }
    Fig2Result { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_unroll_factors() {
        let result = run(1);
        assert_eq!(result.points.len(), 30);
        assert_eq!(result.points.first().unwrap().unroll, 1);
        assert_eq!(result.points.last().unwrap().unroll, 30);
    }

    #[test]
    fn reproduces_the_plateau_then_climb_shape() {
        let result = run(2);
        let low = result.plateau_level();
        let high = result.high_level();
        assert!(
            low < 2.5,
            "low-unroll plateau should sit near 2.1 s, got {low}"
        );
        assert!(
            high - low > 0.6,
            "high-unroll level should climb by roughly 1 s, got {low} -> {high}"
        );
    }

    #[test]
    fn observations_track_the_truth_within_noise() {
        let result = run(3);
        for p in &result.points {
            assert!(p.observed_runtime > 0.0);
            assert!(
                (p.observed_runtime - p.true_mean).abs() < 0.8,
                "observation should stay within the noise envelope"
            );
        }
    }
}
