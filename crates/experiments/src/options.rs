//! Shared command-line / environment options for the experiment binaries.
//!
//! Every binary accepts the same interface:
//!
//! * a positional scale name (`quick`, `laptop`, `full`), falling back to the
//!   `ALIC_SCALE` environment variable and then to the laptop default, and
//! * `--model <name>` (or `--model=<name>`), falling back to `ALIC_MODEL`
//!   and then to the paper's dynamic tree, selecting the surrogate family
//!   every learner in the protocol is built from.
//!
//! Model names are those of
//! [`SurrogateSpec::names`](alic_model::SurrogateSpec::names):
//! `dynatree`, `cart`, `gp`, `knn` and `mean`.

use alic_core::experiment::ComparisonConfig;
use alic_model::SurrogateSpec;

use crate::scale::Scale;

/// Parsed invocation options of one experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunOptions {
    /// How much work to perform.
    pub scale: Scale,
    /// Which surrogate family to build learners from.
    pub model: SurrogateSpec,
}

impl RunOptions {
    /// Parses the process arguments and environment, exiting with a usage
    /// message on invalid input.
    pub fn from_args() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("{message}");
                eprintln!(
                    "usage: <binary> [quick|laptop|full] [--model {}]",
                    SurrogateSpec::names().join("|")
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument stream; the process environment variables
    /// `ALIC_SCALE` and `ALIC_MODEL` fill anything the arguments leave unset.
    ///
    /// # Errors
    ///
    /// Returns a usage message when an argument or environment value is not
    /// understood.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        Self::parse_with_env(
            args,
            std::env::var("ALIC_SCALE").ok().as_deref(),
            std::env::var("ALIC_MODEL").ok().as_deref(),
        )
    }

    /// Parses an argument stream against explicit environment values (the
    /// hermetic core of [`RunOptions::parse`], independent of the real
    /// process environment).
    ///
    /// # Errors
    ///
    /// Returns a usage message when an argument or environment value is not
    /// understood.
    pub fn parse_with_env(
        args: impl IntoIterator<Item = String>,
        scale_env: Option<&str>,
        model_env: Option<&str>,
    ) -> Result<Self, String> {
        let mut scale: Option<Scale> = None;
        let mut model: Option<SurrogateSpec> = None;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            if let Some(name) = arg
                .strip_prefix("--model=")
                .map(str::to_string)
                .or_else(|| (arg == "--model").then(|| args.next().unwrap_or_default()))
            {
                model = Some(
                    SurrogateSpec::from_name(&name)
                        .ok_or_else(|| format!("unknown model '{name}'"))?,
                );
            } else if let Some(s) = Scale::from_name(&arg) {
                scale = Some(s);
            } else {
                return Err(format!("unknown argument '{arg}'"));
            }
        }
        if scale.is_none() {
            if let Some(value) = scale_env {
                scale = Some(
                    Scale::from_name(value)
                        .ok_or_else(|| format!("unknown scale '{value}' in ALIC_SCALE"))?,
                );
            }
        }
        if model.is_none() {
            if let Some(value) = model_env {
                model = Some(
                    SurrogateSpec::from_name(value)
                        .ok_or_else(|| format!("unknown model '{value}' in ALIC_MODEL"))?,
                );
            }
        }
        Ok(RunOptions {
            scale: scale.unwrap_or_default(),
            model: model.unwrap_or_default(),
        })
    }

    /// The plan-comparison configuration for these options: the scale preset
    /// with the selected surrogate (hyper-parameters adjusted to the scale,
    /// see [`Scale::scaled_model`]).
    pub fn comparison_config(&self) -> ComparisonConfig {
        self.scale.comparison_config_for(self.model)
    }

    /// Human-readable summary for banner lines, e.g. `laptop scale, dynatree
    /// model`.
    pub fn describe(&self) -> String {
        format!("{} scale, {} model", self.scale, self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    /// Hermetic parse: explicit (empty) environment, independent of whatever
    /// ALIC_SCALE / ALIC_MODEL the developer has exported.
    fn parse(args: &[&str]) -> Result<RunOptions, String> {
        RunOptions::parse_with_env(strings(args), None, None)
    }

    #[test]
    fn defaults_when_no_arguments() {
        let options = parse(&[]).unwrap();
        assert_eq!(options.scale, Scale::Laptop);
        assert_eq!(options.model.name(), "dynatree");
    }

    #[test]
    fn parses_scale_and_model_in_any_order() {
        let a = parse(&["quick", "--model", "cart"]).unwrap();
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.model.name(), "cart");
        let b = parse(&["--model=gp", "full"]).unwrap();
        assert_eq!(b.scale, Scale::Full);
        assert_eq!(b.model.name(), "gp");
    }

    #[test]
    fn rejects_unknown_input() {
        assert!(parse(&["--model", "bogus"]).is_err());
        assert!(parse(&["bogus"]).is_err());
        assert!(parse(&["--model"]).is_err());
    }

    #[test]
    fn environment_fills_unset_options_and_arguments_win() {
        let env = RunOptions::parse_with_env(strings(&[]), Some("full"), Some("knn")).unwrap();
        assert_eq!(env.scale, Scale::Full);
        assert_eq!(env.model.name(), "knn");
        let args_win = RunOptions::parse_with_env(
            strings(&["quick", "--model=cart"]),
            Some("full"),
            Some("knn"),
        )
        .unwrap();
        assert_eq!(args_win.scale, Scale::Quick);
        assert_eq!(args_win.model.name(), "cart");
        assert!(RunOptions::parse_with_env(strings(&[]), Some("bogus"), None).is_err());
        assert!(RunOptions::parse_with_env(strings(&[]), None, Some("bogus")).is_err());
    }

    #[test]
    fn every_model_name_is_selectable() {
        for &name in SurrogateSpec::names() {
            let options = parse(&["quick", "--model", name]).unwrap();
            assert_eq!(options.model.name(), name);
            let config = options.comparison_config();
            assert_eq!(config.model.name(), name);
        }
    }

    #[test]
    fn describe_mentions_both_axes() {
        let options = parse(&["quick", "--model", "knn"]).unwrap();
        assert_eq!(options.describe(), "quick scale, knn model");
    }
}
