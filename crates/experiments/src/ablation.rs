//! Ablations: acquisition function and artificial-noise robustness.
//!
//! Two design points the paper discusses but does not tabulate are covered
//! here:
//!
//! * **Acquisition function** (§3.3): the paper chooses Cohn's ALC over
//!   MacKay's ALM because it handles heteroskedastic spaces better; the
//!   ablation runs the variable-observation learner with ALC, ALM and random
//!   selection and compares the error reached for the same iteration budget.
//! * **Artificial noise** (§7, future work): the paper proposes testing the
//!   technique with artificially inflated noise; the ablation scales every
//!   noise source by a factor and reports how the speed-up over the fixed
//!   baseline degrades.

use serde::{Deserialize, Serialize};

use alic_core::acquisition::Acquisition;
use alic_core::experiment::{compare_plans, ComparisonConfig};
use alic_core::plan::SamplingPlan;
use alic_sim::spapt::{spapt_kernel, SpaptKernel};

use crate::scale::Scale;

/// Result of the acquisition-function ablation for one strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcquisitionResult {
    /// Strategy label.
    pub acquisition: String,
    /// Best averaged RMSE the variable plan reached.
    pub best_rmse: f64,
    /// Total profiling cost of the variable plan's runs (seconds, averaged).
    pub mean_cost: f64,
}

/// Runs the acquisition ablation on one kernel with an explicit base
/// configuration (any scale, any surrogate family).
pub fn acquisition_ablation_with(
    kernel: SpaptKernel,
    base: &ComparisonConfig,
) -> Vec<AcquisitionResult> {
    [
        Acquisition::default_alc(),
        Acquisition::Alm,
        Acquisition::Random,
    ]
    .into_iter()
    .map(|acquisition| {
        let config = ComparisonConfig {
            learner: alic_core::learner::LearnerConfig {
                acquisition,
                ..base.learner
            },
            plans: vec![SamplingPlan::sequential(base.learner.initial_observations)],
            ..base.clone()
        };
        let outcome = compare_plans(&spapt_kernel(kernel), &config)
            .expect("ablation configuration is internally consistent");
        let plan = &outcome.plans[0];
        let mean_cost = plan
            .runs
            .iter()
            .map(|r| r.ledger.total_seconds())
            .sum::<f64>()
            / plan.runs.len().max(1) as f64;
        AcquisitionResult {
            acquisition: acquisition.label().to_string(),
            best_rmse: plan.averaged.best_rmse().unwrap_or(f64::NAN),
            mean_cost,
        }
    })
    .collect()
}

/// Runs the acquisition ablation on one kernel at a given scale with the
/// default surrogate.
pub fn acquisition_ablation(kernel: SpaptKernel, scale: Scale) -> Vec<AcquisitionResult> {
    acquisition_ablation_with(kernel, &scale.comparison_config())
}

/// Result of the noise-robustness ablation for one noise scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseResult {
    /// Multiplier applied to every noise source.
    pub noise_scale: f64,
    /// Lowest common RMSE between the baseline and variable plans.
    pub lowest_common_rmse: f64,
    /// Speed-up of the variable plan over the fixed baseline.
    pub speedup: Option<f64>,
}

/// Runs the noise-robustness ablation on one kernel with an explicit base
/// configuration.
pub fn noise_ablation_with(
    kernel: SpaptKernel,
    scales: &[f64],
    config: &ComparisonConfig,
) -> Vec<NoiseResult> {
    scales
        .iter()
        .map(|&factor| {
            let spec = spapt_kernel(kernel);
            let noisy = spec.noise().scaled(factor);
            let spec = spec.with_noise(noisy);
            let outcome = compare_plans(&spec, config)
                .expect("ablation configuration is internally consistent");
            let baseline = config
                .plans
                .iter()
                .copied()
                .find(|p| !p.allows_revisits() && p.observations_per_visit() > 1)
                .unwrap_or(SamplingPlan::fixed35());
            let variable = config
                .plans
                .iter()
                .copied()
                .find(|p| p.allows_revisits())
                .unwrap_or_default();
            NoiseResult {
                noise_scale: factor,
                lowest_common_rmse: outcome.lowest_common_rmse,
                speedup: outcome.speedup(baseline, variable),
            }
        })
        .collect()
}

/// Runs the noise-robustness ablation on one kernel at a given scale with
/// the default surrogate.
pub fn noise_ablation(kernel: SpaptKernel, scales: &[f64], scale: Scale) -> Vec<NoiseResult> {
    noise_ablation_with(kernel, scales, &scale.comparison_config())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquisition_ablation_covers_all_strategies() {
        let results = acquisition_ablation(SpaptKernel::Mvt, Scale::Quick);
        assert_eq!(results.len(), 3);
        let labels: Vec<&str> = results.iter().map(|r| r.acquisition.as_str()).collect();
        assert!(labels.contains(&"ALC"));
        assert!(labels.contains(&"ALM"));
        assert!(labels.contains(&"random"));
        for r in &results {
            assert!(r.best_rmse.is_finite());
            assert!(r.mean_cost > 0.0);
        }
    }

    #[test]
    fn noise_ablation_reports_one_row_per_scale() {
        let results = noise_ablation(SpaptKernel::Hessian, &[1.0, 4.0], Scale::Quick);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].noise_scale, 1.0);
        assert_eq!(results[1].noise_scale, 4.0);
        // More noise should not make the common error smaller.
        assert!(results[1].lowest_common_rmse >= results[0].lowest_common_rmse * 0.5);
    }
}
