//! The `campaign` binary: sharded, resumable plan-comparison campaigns.
//!
//! While the classic binaries (`table1`, `fig5`, `fig6`, `ablation`) run
//! their whole matrix in one process, the `campaign` binary exposes the
//! [`runner`](alic_core::runner) layer directly:
//!
//! ```text
//! campaign [quick|laptop|full] [--model m1,m2,...] [--kernels k1,k2,...]
//!          [--dir PATH] [--shard i/n] [--resume] [--merge]
//!          [--chaos seed:site=rate[xbudget],...]
//! ```
//!
//! * Without `--shard`/`--merge`, it runs every unit of the matrix,
//!   checkpointing each into the ledger directory, then writes the merged
//!   `report.json`.
//! * `--shard i/n` runs only the i-th of `n` contiguous unit slices (other
//!   shards can run in other processes or on other machines against copies
//!   of the same ledger directory; copy the `units/` files together before
//!   merging).
//! * `--resume` continues a killed or partial campaign, skipping every unit
//!   already checkpointed.
//! * `--merge` performs the pure merge step only: loads all unit records,
//!   assembles the report, writes `report.json` and prints the per-model
//!   Table 1 summaries.
//!
//! The ledger directory comes from `--dir`, then the `ALIC_CAMPAIGN_DIR`
//! environment variable, then `target/campaign`. Reports are byte-identical
//! regardless of sharding, kill points, resumes or thread counts — the
//! invariant enforced by `tests/campaign_resume.rs` and the CI
//! `campaign-smoke` job.
//!
//! Units always run through the self-healing executor
//! ([`runner::heal_campaign`]): panicking units are isolated and re-executed,
//! corrupt on-disk records are quarantined to `*.corrupt` and regenerated.
//! `--chaos seed:spec` (or the `ALIC_CHAOS` environment variable) installs a
//! deterministic fault-injection plan — see [`alic_core::fault`] — under
//! which the healed report must still come out byte-identical; the CI
//! `chaos-smoke` job holds the binary to exactly that.

use std::path::PathBuf;

use alic_core::runner::{self, CampaignLedger, CampaignReport, CampaignSpec};
use alic_core::{CoreError, Result};
use alic_model::SurrogateSpec;
use alic_sim::spapt::{spapt_kernel, SpaptKernel};

use crate::report::{format_sci, TextTable};
use crate::scale::Scale;
use crate::table1;

/// Parsed invocation options of the `campaign` binary.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOptions {
    /// How much work each unit performs.
    pub scale: Scale,
    /// The surrogate families of the matrix.
    pub models: Vec<SurrogateSpec>,
    /// The kernels of the matrix.
    pub kernels: Vec<SpaptKernel>,
    /// The campaign ledger directory.
    pub dir: PathBuf,
    /// Run only this 1-based shard of the unit range.
    pub shard: Option<(usize, usize)>,
    /// Skip units already checkpointed instead of refusing to reuse the
    /// ledger.
    pub resume: bool,
    /// Merge checkpointed units into `report.json` instead of running any.
    pub merge: bool,
    /// Deterministic fault-injection plan to install for the run
    /// (`--chaos seed:site=rate[xbudget],...`).
    pub chaos: Option<alic_core::fault::FaultPlan>,
    /// Harvest one trained surrogate per kernel × model into this
    /// warm-start store after a full (non-shard) run completes
    /// (`--warm-store PATH`). Stored under the `"campaign"` noise regime,
    /// so campaign-featurized surrogates never seed serve sessions.
    pub warm_store: Option<PathBuf>,
}

impl CampaignOptions {
    /// Parses the process arguments and environment, exiting with a usage
    /// message on invalid input.
    pub fn from_args() -> Self {
        let args = std::env::args().skip(1);
        let result = Self::parse_with_env(
            args,
            std::env::var("ALIC_SCALE").ok().as_deref(),
            std::env::var("ALIC_MODEL").ok().as_deref(),
            std::env::var("ALIC_CAMPAIGN_DIR").ok().as_deref(),
        );
        match result {
            Ok(options) => options,
            Err(message) => {
                eprintln!("{message}");
                eprintln!(
                    "usage: campaign [quick|laptop|full] [--model {}[,...]] \
                     [--kernels adi,mvt,...] [--dir PATH] [--shard i/n] [--resume] [--merge] \
                     [--chaos seed:site=rate[xbudget],...] [--warm-store PATH]",
                    SurrogateSpec::names().join("|")
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument stream against explicit environment values (the
    /// hermetic core of [`CampaignOptions::from_args`]).
    ///
    /// # Errors
    ///
    /// Returns a usage message when an argument or environment value is not
    /// understood.
    pub fn parse_with_env(
        args: impl IntoIterator<Item = String>,
        scale_env: Option<&str>,
        model_env: Option<&str>,
        dir_env: Option<&str>,
    ) -> std::result::Result<Self, String> {
        let mut scale: Option<Scale> = None;
        let mut models: Vec<SurrogateSpec> = Vec::new();
        let mut kernels: Vec<SpaptKernel> = Vec::new();
        let mut dir: Option<PathBuf> = None;
        let mut shard: Option<(usize, usize)> = None;
        let mut resume = false;
        let mut merge = false;
        let mut chaos: Option<alic_core::fault::FaultPlan> = None;
        let mut warm_store: Option<PathBuf> = None;

        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut value_of =
                |name: &str, arg: &str| -> std::result::Result<Option<String>, String> {
                    if let Some(v) = arg.strip_prefix(&format!("{name}=")) {
                        return Ok(Some(v.to_string()));
                    }
                    if arg == name {
                        return match args.next() {
                            Some(v) => Ok(Some(v)),
                            None => Err(format!("{name} needs a value")),
                        };
                    }
                    Ok(None)
                };
            if let Some(list) = value_of("--model", &arg)? {
                for name in list.split(',').filter(|n| !n.is_empty()) {
                    let model = SurrogateSpec::from_name(name)
                        .ok_or_else(|| format!("unknown model '{name}'"))?;
                    // A duplicate axis entry would double the unit matrix
                    // and double-count rows in the name-keyed report tables.
                    if models.contains(&model) {
                        return Err(format!("model '{}' listed more than once", model.name()));
                    }
                    models.push(model);
                }
            } else if let Some(list) = value_of("--kernels", &arg)? {
                for name in list.split(',').filter(|n| !n.is_empty()) {
                    let kernel = SpaptKernel::from_name(name)
                        .ok_or_else(|| format!("unknown kernel '{name}'"))?;
                    if kernels.contains(&kernel) {
                        return Err(format!("kernel '{}' listed more than once", kernel.name()));
                    }
                    kernels.push(kernel);
                }
            } else if let Some(path) = value_of("--dir", &arg)? {
                dir = Some(PathBuf::from(path));
            } else if let Some(text) = value_of("--shard", &arg)? {
                let parts: Vec<&str> = text.split('/').collect();
                let parsed = match parts.as_slice() {
                    [i, n] => i
                        .parse::<usize>()
                        .ok()
                        .zip(n.parse::<usize>().ok())
                        .filter(|&(i, n)| i >= 1 && n >= 1 && i <= n),
                    _ => None,
                };
                shard = Some(
                    parsed.ok_or_else(|| format!("--shard needs the form i/n, got '{text}'"))?,
                );
            } else if let Some(path) = value_of("--warm-store", &arg)? {
                warm_store = Some(PathBuf::from(path));
            } else if let Some(text) = value_of("--chaos", &arg)? {
                chaos = Some(
                    alic_core::fault::FaultPlan::parse(&text)
                        .map_err(|e| format!("--chaos: {e}"))?,
                );
            } else if arg == "--resume" {
                resume = true;
            } else if arg == "--merge" {
                merge = true;
            } else if let Some(s) = Scale::from_name(&arg) {
                scale = Some(s);
            } else {
                return Err(format!("unknown argument '{arg}'"));
            }
        }

        if scale.is_none() {
            if let Some(value) = scale_env {
                scale = Some(
                    Scale::from_name(value)
                        .ok_or_else(|| format!("unknown scale '{value}' in ALIC_SCALE"))?,
                );
            }
        }
        let scale = scale.unwrap_or_default();
        if models.is_empty() {
            if let Some(value) = model_env {
                models.push(
                    SurrogateSpec::from_name(value)
                        .ok_or_else(|| format!("unknown model '{value}' in ALIC_MODEL"))?,
                );
            }
        }
        if models.is_empty() {
            models.push(SurrogateSpec::default());
        }
        if kernels.is_empty() {
            kernels = SpaptKernel::all().to_vec();
        }
        let dir = dir
            .or_else(|| dir_env.map(PathBuf::from))
            .unwrap_or_else(|| PathBuf::from("target").join("campaign"));

        Ok(CampaignOptions {
            scale,
            models,
            kernels,
            dir,
            shard,
            resume,
            merge,
            chaos,
            warm_store,
        })
    }

    /// The campaign matrix these options describe: the selected kernels ×
    /// the selected models (hyper-parameters adjusted to the scale) over the
    /// scale's comparison preset.
    pub fn campaign_spec(&self) -> CampaignSpec {
        CampaignSpec::new(
            self.kernels.iter().map(|&k| spapt_kernel(k)).collect(),
            self.models
                .iter()
                .map(|&m| self.scale.scaled_model(m))
                .collect(),
            self.scale.comparison_config(),
        )
    }

    /// Human-readable banner line.
    pub fn describe(&self) -> String {
        let models: Vec<&str> = self.models.iter().map(|m| m.name()).collect();
        format!(
            "{} scale, {} kernels, models [{}]",
            self.scale,
            self.kernels.len(),
            models.join(", ")
        )
    }
}

/// Executes one `campaign` invocation (run, shard, resume or merge).
///
/// # Errors
///
/// Returns campaign, learner or ledger errors; the binary prints them and
/// exits non-zero.
pub fn run(options: &CampaignOptions) -> Result<()> {
    // Deactivates an explicitly installed fault plane on every exit path, so
    // a library caller's next invocation starts clean.
    struct PlaneOff;
    impl Drop for PlaneOff {
        fn drop(&mut self) {
            alic_core::fault::deactivate();
        }
    }
    let _chaos_guard = options.chaos.as_ref().map(|plan| {
        println!("[chaos plan installed: seed {}]", plan.seed());
        alic_core::fault::install(plan.clone());
        PlaneOff
    });

    let spec = options.campaign_spec();
    let ledger = CampaignLedger::open(&options.dir, &spec)?;
    println!(
        "== campaign: {} — {} units, ledger at {} ==",
        options.describe(),
        spec.unit_count(),
        ledger.dir().display()
    );

    if options.merge {
        let report = merge_and_write(&spec, &ledger)?;
        print_report(&spec, &report);
        return Ok(());
    }

    let completed = ledger.completed()?;
    let targets: Vec<usize> = match options.shard {
        Some((shard, of)) => spec.shard(shard, of)?,
        None => (0..spec.unit_count()).collect(),
    };
    let already_done = targets.iter().filter(|i| completed.contains(i)).count();
    if already_done > 0 && !options.resume {
        return Err(CoreError::Campaign(format!(
            "ledger already holds {already_done} of this invocation's {} units; \
             pass --resume to continue it or point --dir at a fresh directory",
            targets.len()
        )));
    }
    let to_run: Vec<usize> = targets
        .iter()
        .copied()
        .filter(|i| !completed.contains(i))
        .collect();
    println!(
        "running {} units ({already_done} of {} already checkpointed)",
        to_run.len(),
        targets.len()
    );
    let outcome = runner::heal_campaign(&spec, &ledger, &to_run)?;
    println!(
        "checkpointed {} units in {} healing pass(es) ({} corrupt record(s) quarantined, \
         {} stale tmp file(s) swept)",
        to_run.len() - outcome.failures.len(),
        outcome.passes,
        outcome.quarantined,
        outcome.swept_tmp
    );
    if !outcome.is_healed() {
        for failure in &outcome.failures {
            eprintln!(
                "unit {} ({}, {}): {} [after {} attempts]",
                failure.index, failure.kernel, failure.model, failure.error, failure.attempts
            );
        }
        return Err(CoreError::Campaign(format!(
            "{} unit(s) still failing after {} healing passes",
            outcome.failures.len(),
            outcome.passes
        )));
    }

    if options.shard.is_none() {
        // Opt-in warm-store harvest: re-run one representative unit per
        // kernel × model capturing its trained surrogate. Units are
        // deterministic, so this reproduces exactly what the campaign
        // already measured.
        if let Some(path) = &options.warm_store {
            harvest_warm_store(&spec, path)?;
        }
        // The whole matrix is complete: merge immediately, exactly as a
        // later `--merge` invocation would (the report is assembled from the
        // on-disk records either way, so the bytes cannot differ).
        let report = merge_and_write(&spec, &ledger)?;
        print_report(&spec, &report);
    } else {
        println!(
            "shard complete; once every shard has finished, assemble the report with \
             `campaign --merge --dir {}`",
            ledger.dir().display()
        );
    }
    Ok(())
}

/// Trains (deterministically re-executes) one representative unit per
/// kernel × model and offers each trained surrogate to the warm store under
/// the `"campaign"` noise regime. Families without snapshot support are
/// skipped silently.
fn harvest_warm_store(spec: &CampaignSpec, path: &std::path::Path) -> Result<()> {
    use alic_core::warmstore::{WarmKey, WarmStore};
    let mut store = WarmStore::open(path);
    let mut harvested = 0usize;
    for (kernel_index, kernel) in spec.kernels.iter().enumerate() {
        let ctx = runner::KernelContext::prepare(kernel, &spec.base);
        for (model_index, model_spec) in spec.models.iter().enumerate() {
            let key = runner::UnitKey {
                kernel: kernel_index,
                model: model_index,
                plan: 0,
                repetition: 0,
            };
            let (_, model) = runner::execute_unit_capturing(spec, &ctx, key)?;
            let Ok(snapshot) = model.snapshot() else {
                continue;
            };
            let warm_key =
                WarmKey::new(kernel.name(), kernel.space(), model_spec.name(), "campaign");
            if store.insert(&warm_key, model.observation_count(), snapshot) {
                harvested += 1;
            }
        }
    }
    store.save()?;
    println!(
        "[warm store {}: {harvested} surrogate(s) harvested, {} resident]",
        path.display(),
        store.len()
    );
    Ok(())
}

fn merge_and_write(spec: &CampaignSpec, ledger: &CampaignLedger) -> Result<CampaignReport> {
    let records = ledger.load_all(spec)?;
    let report = runner::assemble_report(spec, records)?;
    let path = ledger.write_report(&report)?;
    println!("[report written to {}]", path.display());
    Ok(report)
}

fn print_report(spec: &CampaignSpec, report: &CampaignReport) {
    for model in &report.models {
        let outcomes: Vec<_> = report
            .outcomes_for_model(model)
            .into_iter()
            .cloned()
            .collect();
        let table1_result = table1::rows_from_outcomes(&outcomes, &spec.base);
        let mut table = TextTable::new(vec![
            "benchmark",
            "lowest common RMSE (s)",
            "baseline cost (s)",
            "variable cost (s)",
            "speed-up",
        ]);
        for row in &table1_result.rows {
            table.push_row(vec![
                row.benchmark.clone(),
                format_sci(row.lowest_common_rmse),
                row.baseline_cost
                    .map(format_sci)
                    .unwrap_or_else(|| "-".into()),
                row.variable_cost
                    .map(format_sci)
                    .unwrap_or_else(|| "-".into()),
                row.speedup
                    .map(|s| format!("{s:.2}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        println!("--- model: {model} ---");
        println!("{table}");
        match table1_result.geometric_mean_speedup {
            Some(gm) => println!("geometric mean speed-up: {gm:.2}x\n"),
            None => println!("geometric mean speed-up: not available\n"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn parse(args: &[&str]) -> std::result::Result<CampaignOptions, String> {
        CampaignOptions::parse_with_env(strings(args), None, None, None)
    }

    #[test]
    fn defaults_cover_the_full_paper_matrix() {
        let options = parse(&[]).unwrap();
        assert_eq!(options.scale, Scale::Laptop);
        assert_eq!(options.kernels.len(), 11);
        assert_eq!(options.models.len(), 1);
        assert_eq!(options.models[0].name(), "dynatree");
        assert_eq!(options.dir, PathBuf::from("target").join("campaign"));
        assert!(!options.resume && !options.merge && options.shard.is_none());
    }

    #[test]
    fn parses_every_flag() {
        let options = parse(&[
            "quick",
            "--model",
            "cart,gp",
            "--kernels=mvt,lu",
            "--dir",
            "/tmp/x",
            "--shard",
            "2/3",
            "--resume",
            "--merge",
            "--chaos",
            "7:torn=0.5x3,panic=0.1",
        ])
        .unwrap();
        assert_eq!(options.scale, Scale::Quick);
        assert_eq!(
            options.models.iter().map(|m| m.name()).collect::<Vec<_>>(),
            vec!["cart", "gp"]
        );
        assert_eq!(options.kernels, vec![SpaptKernel::Mvt, SpaptKernel::Lu]);
        assert_eq!(options.dir, PathBuf::from("/tmp/x"));
        assert_eq!(options.shard, Some((2, 3)));
        assert!(options.resume && options.merge);
        let plan = options.chaos.unwrap();
        assert_eq!(plan.seed(), 7);
        use alic_core::fault::FaultSite;
        assert_eq!(plan.site(FaultSite::TornWrite).unwrap().budget, Some(3));
        assert!(plan.site(FaultSite::UnitPanic).is_some());
        assert!(plan.site(FaultSite::WriteIo).is_none());
    }

    #[test]
    fn environment_fills_unset_options() {
        let options = CampaignOptions::parse_with_env(
            strings(&[]),
            Some("quick"),
            Some("knn"),
            Some("/var/campaigns"),
        )
        .unwrap();
        assert_eq!(options.scale, Scale::Quick);
        assert_eq!(options.models[0].name(), "knn");
        assert_eq!(options.dir, PathBuf::from("/var/campaigns"));
    }

    #[test]
    fn invalid_input_is_rejected() {
        assert!(parse(&["--shard", "0/3"]).is_err());
        assert!(parse(&["--shard", "4/3"]).is_err());
        assert!(parse(&["--shard", "nope"]).is_err());
        assert!(parse(&["--model", "bogus"]).is_err());
        assert!(parse(&["--kernels", "bogus"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--dir"]).is_err());
        assert!(parse(&["--chaos", "not-a-plan"]).is_err());
        assert!(parse(&["--chaos", "7:torn=1.5"]).is_err());
    }

    #[test]
    fn duplicate_axis_entries_are_rejected() {
        let err = parse(&["--model", "dynatree,dynatree"]).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        // Aliases of the same family count as duplicates too.
        let err = parse(&["--model", "gp,gaussian-process"]).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        let err = parse(&["--kernels", "mvt", "--kernels", "mvt"]).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn campaign_spec_scales_models_and_keeps_kernel_order() {
        let options = parse(&["quick", "--kernels", "gemver,adi", "--model", "dynatree"]).unwrap();
        let spec = options.campaign_spec();
        assert_eq!(spec.kernels[0].name(), "gemver");
        assert_eq!(spec.kernels[1].name(), "adi");
        match spec.models[0] {
            SurrogateSpec::DynaTree(config) => {
                assert_eq!(config.particles, Scale::Quick.particles())
            }
            ref other => panic!("expected a scaled dynatree, got {other}"),
        }
        // 2 kernels x 1 model.
        assert_eq!(
            spec.unit_count(),
            2 * spec.base.plans.len() * spec.base.repetitions
        );
    }

    #[test]
    fn sharded_kill_resume_merge_is_byte_identical_to_single_process() {
        // End-to-end through the CLI layer: a clean single-process campaign
        // versus shard 1/2 (killed after its first shard), a resume, and a
        // merge, in two separate ledger directories.
        let base = std::env::temp_dir().join(format!("alic-campaign-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let clean_dir = base.join("clean");
        let sharded_dir = base.join("sharded");
        let common = ["quick", "--kernels", "mvt,lu", "--model", "dynatree,mean"];

        let opts = |extra: &[&str], dir: &PathBuf| {
            let mut args = strings(&common);
            args.extend(strings(extra));
            args.push("--dir".to_string());
            args.push(dir.display().to_string());
            CampaignOptions::parse_with_env(args, None, None, None).unwrap()
        };

        run(&opts(&[], &clean_dir)).unwrap();

        run(&opts(&["--shard", "1/2"], &sharded_dir)).unwrap();
        run(&opts(&["--resume"], &sharded_dir)).unwrap();
        run(&opts(&["--merge"], &sharded_dir)).unwrap();

        let clean = std::fs::read_to_string(clean_dir.join("report.json")).unwrap();
        let sharded = std::fs::read_to_string(sharded_dir.join("report.json")).unwrap();
        assert_eq!(clean, sharded);
        assert!(clean.starts_with("{\"schema\":\"alic-campaign-report/v1\""));

        // Re-running the finished campaign without --resume is refused.
        let err = run(&opts(&[], &clean_dir)).unwrap_err();
        assert!(err.to_string().contains("--resume"), "{err}");

        std::fs::remove_dir_all(&base).unwrap();
    }
}
