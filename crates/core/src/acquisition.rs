//! Acquisition strategies (§3.3 — "Quantifying Usefulness").
//!
//! At every iteration the learner scores the candidate set and profiles the
//! candidate predicted to be most informative. Two principled criteria are
//! available through the surrogate model, plus a random baseline:
//!
//! * **ALC** (Cohn) — expected reduction of the *average* predictive variance
//!   over a reference set drawn from the space. The paper selects this one
//!   because it copes better with heteroskedastic noise, at `O(|C|²)`-ish
//!   cost.
//! * **ALM** (MacKay) — the candidate with the largest predictive variance,
//!   at `O(|C|)` cost.
//! * **Random** — uniform selection, the "iterative compilation without
//!   active learning" ablation.

use rand::Rng as _;
use serde::{Deserialize, Serialize};

use alic_model::ActiveSurrogate;
use alic_stats::rng::Rng as StatsRng;
use alic_stats::sampling::sample_indices;
use alic_stats::FeatureMatrix;

use crate::Result;

/// Strategy for scoring candidate configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Acquisition {
    /// Cohn's expected average-variance reduction over a random reference
    /// set of the given size (the paper's choice).
    Alc {
        /// Number of reference points drawn from the pool per iteration.
        reference_size: usize,
    },
    /// MacKay's maximum-predictive-variance criterion.
    Alm,
    /// Uniform random selection.
    Random,
}

impl Acquisition {
    /// The paper's configuration: ALC with a moderate reference set.
    pub fn default_alc() -> Self {
        Acquisition::Alc { reference_size: 50 }
    }

    /// Human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Acquisition::Alc { .. } => "ALC",
            Acquisition::Alm => "ALM",
            Acquisition::Random => "random",
        }
    }

    /// Selects the index of the best candidate from `candidates` (zero-copy
    /// row views, typically gathered from the pool) according to this
    /// strategy.
    ///
    /// `pool` is the flat matrix of (normalized) feature vectors representing
    /// the whole decision space; ALC draws its reference set from it as row
    /// views, without copying any features.
    ///
    /// # Errors
    ///
    /// Propagates surrogate-model errors. Returns `Ok(None)` when
    /// `candidates` is empty.
    pub fn select<M: ActiveSurrogate + ?Sized>(
        &self,
        model: &M,
        candidates: &[&[f64]],
        pool: &FeatureMatrix,
        rng: &mut StatsRng,
    ) -> Result<Option<usize>> {
        if candidates.is_empty() {
            return Ok(None);
        }
        let scores: Vec<f64> = match self {
            Acquisition::Alc { reference_size } => {
                let reference: Vec<&[f64]> = if pool.is_empty() {
                    Vec::new()
                } else {
                    pool.gather(sample_indices(rng, pool.len(), *reference_size))
                };
                model.alc_scores(candidates, &reference)?
            }
            Acquisition::Alm => model.alm_scores(candidates)?,
            Acquisition::Random => (0..candidates.len()).map(|_| rng.gen::<f64>()).collect(),
        };
        // Pick the first maximum so that ties favour the earliest candidate.
        // The learner lists fresh (unseen) candidates before revisit
        // candidates, which makes ties resolve towards exploration.
        let mut best: Option<(usize, f64)> = None;
        for (i, &score) in scores.iter().enumerate() {
            debug_assert!(score.is_finite(), "acquisition scores must be finite");
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((i, score));
            }
        }
        Ok(best.map(|(i, _)| i))
    }
}

impl Default for Acquisition {
    fn default() -> Self {
        Acquisition::default_alc()
    }
}

impl std::fmt::Display for Acquisition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alic_model::dynatree::{DynaTree, DynaTreeConfig};
    use alic_model::SurrogateModel;
    use alic_stats::rng::seeded_rng;

    /// A model trained densely on the left half of [0, 1] and sparsely on the
    /// noisy right half.
    fn lopsided_model() -> DynaTree {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..60 {
            let x = 0.5 * i as f64 / 59.0;
            xs.push(vec![x]);
            ys.push(1.0);
        }
        for i in 0..5 {
            let x = 0.6 + 0.4 * i as f64 / 4.0;
            xs.push(vec![x]);
            ys.push(2.0 + if i % 2 == 0 { 0.7 } else { -0.7 });
        }
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: 60,
            seed: 3,
            ..Default::default()
        });
        model.fit(&alic_model::row_views(&xs), &ys).unwrap();
        model
    }

    fn grid(n: usize) -> FeatureMatrix {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        FeatureMatrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn empty_candidate_set_selects_nothing() {
        let model = lopsided_model();
        let mut rng = seeded_rng(1);
        let choice = Acquisition::Alm
            .select(&model, &[], &grid(10), &mut rng)
            .unwrap();
        assert_eq!(choice, None);
    }

    #[test]
    fn alm_and_alc_prefer_the_uncertain_region() {
        let model = lopsided_model();
        let mut rng = seeded_rng(2);
        // Candidate 0 is in the dense quiet region, candidate 1 in the sparse
        // noisy region.
        let candidates: Vec<&[f64]> = vec![&[0.25], &[0.85]];
        for acquisition in [Acquisition::Alm, Acquisition::default_alc()] {
            let choice = acquisition
                .select(&model, &candidates, &grid(40), &mut rng)
                .unwrap();
            assert_eq!(choice, Some(1), "{acquisition} picked the wrong candidate");
        }
    }

    #[test]
    fn random_selection_eventually_picks_everything() {
        let model = lopsided_model();
        let mut rng = seeded_rng(3);
        let pool = grid(5);
        let candidates = pool.row_views();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            if let Some(i) = Acquisition::Random
                .select(&model, &candidates, &FeatureMatrix::new(1), &mut rng)
                .unwrap()
            {
                seen.insert(i);
            }
        }
        assert_eq!(seen.len(), candidates.len());
    }

    #[test]
    fn ties_favour_the_earliest_candidate() {
        // A constant-mean model scores every candidate identically, so both
        // criteria tie everywhere; the argmax must resolve to the earliest
        // (fresh) candidate. ALC over an empty pool exercises its ALM
        // fallback through the same argmax.
        let mut model = alic_model::baseline::ConstantMean::new();
        model
            .fit(&[&[0.0], &[0.5], &[1.0]], &[1.0, 2.0, 3.0])
            .unwrap();
        let candidates: Vec<&[f64]> = vec![&[0.9], &[0.1], &[0.4]];
        let mut rng = seeded_rng(4);
        for acquisition in [Acquisition::Alm, Acquisition::default_alc()] {
            let choice = acquisition
                .select(&model, &candidates, &FeatureMatrix::new(1), &mut rng)
                .unwrap();
            assert_eq!(choice, Some(0), "{acquisition} must break ties earliest");
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Acquisition::default_alc().label(), "ALC");
        assert_eq!(Acquisition::Alm.to_string(), "ALM");
        assert_eq!(Acquisition::Random.label(), "random");
    }
}
