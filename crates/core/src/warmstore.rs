//! Warm-start transposition store for trained surrogates.
//!
//! Tuning the same kernel twice from a cold surrogate wastes every
//! observation the first session already paid for. This module keys trained
//! model snapshots (see `alic_model::snapshot`) by a Zobrist-style 64-bit
//! fingerprint over the *tuning situation* — kernel identity, search-space
//! shape, surrogate family, and noise regime — in a fixed-size,
//! two-slot-per-bucket transposition table, persisted through the ledger's
//! verified atomic writer so the store survives daemon restarts.
//!
//! # Fingerprint and discriminant
//!
//! Each [`WarmKey`] component is hashed independently with a SplitMix64
//! chain ([`alic_stats::rng::derive_seed`]) salted by a per-component label,
//! and the four component hashes are XOR-combined — the classic Zobrist
//! construction, so any single differing component flips the fingerprint.
//! The fingerprint only selects the bucket; equality is decided by the
//! structured **discriminant**, a canonical JSON rendering of the four
//! components. Distinct keys therefore *cannot* alias each other through a
//! 64-bit collision: at worst they compete for bucket slots.
//!
//! # Replacement policy
//!
//! The table is `DEFAULT_WARM_BUCKETS` buckets × 2 slots — a hard memory
//! bound. Within a bucket the slots follow the classic two-tier
//! transposition-table policy:
//!
//! - **slot 0 (depth-preferred):** kept unless the incoming entry has at
//!   least as many observations (same key refreshes in place);
//! - **slot 1 (always-replace):** unconditionally overwritten, except by a
//!   strictly shallower copy of the key it already holds.
//!
//! A displaced slot-0 entry demotes into slot 1 rather than vanishing.
//!
//! # Determinism contract
//!
//! The store is *advisory*: probing it never mutates a session's inputs.
//! A warm-started session copies the snapshot into its own checkpoint at
//! creation, so resumed sessions remain a pure function of (checkpoint
//! bytes, event log) whether the store has since changed, been corrupted,
//! or been deleted. A store that fails to parse is quarantined
//! (`<name>.corrupt`) and replaced by an empty one — cold-start behavior is
//! byte-identical to running with no store at all.

use std::path::{Path, PathBuf};

use alic_data::io::JsonValue;
use alic_sim::space::ParameterSpace;
use alic_stats::rng::derive_seed;

use crate::runner::ledger::{quarantine_file, write_verified};
use crate::{CoreError, Result};

/// Number of buckets in the table (power of two). With two slots per
/// bucket the store holds at most `2 * DEFAULT_WARM_BUCKETS` snapshots.
pub const DEFAULT_WARM_BUCKETS: usize = 64;

/// Schema tag of the persisted store document.
pub const WARMSTORE_SCHEMA: &str = "alic-warmstore/v1";

/// Per-component Zobrist salts (ASCII mnemonics of the field names).
const SALT_KERNEL: u64 = 0x4b45_524e;
const SALT_SPACE: u64 = 0x5350_4143;
const SALT_FAMILY: u64 = 0x4641_4d49;
const SALT_NOISE: u64 = 0x4e4f_4953;

/// Identity of a tuning situation: everything that must match for a cached
/// surrogate to be a valid warm start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmKey {
    /// Kernel (benchmark) name being tuned.
    pub kernel: String,
    /// Canonical signature of the search space ([`space_signature`]).
    pub space: String,
    /// Surrogate family name (`"gp"`, `"dynatree"`, …).
    pub family: String,
    /// Noise-regime label; namespaces incompatible featurizations
    /// (e.g. `"default"` for serve sessions vs `"campaign"`).
    pub noise: String,
}

/// Canonical, injective signature of a parameter space: a JSON array of
/// `[name, kind, min, max]` rows. JSON string escaping makes the signature
/// collision-free even for adversarial parameter names.
pub fn space_signature(space: &ParameterSpace) -> String {
    let rows = space
        .params()
        .iter()
        .map(|p| {
            JsonValue::Array(vec![
                JsonValue::String(p.name.clone()),
                JsonValue::String(p.kind.label().to_string()),
                JsonValue::Number(f64::from(p.min)),
                JsonValue::Number(f64::from(p.max)),
            ])
        })
        .collect();
    JsonValue::Array(rows)
        .to_json_string()
        .expect("space signatures contain only finite numbers")
}

/// SplitMix64 chain over a labelled byte string: the label and length seed
/// the chain, then each 8-byte little-endian word (zero-padded tail) is
/// folded in. Deterministic across processes and platforms.
fn component_hash(salt: u64, text: &str) -> u64 {
    let mut h = derive_seed(salt, text.len() as u64);
    for chunk in text.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = derive_seed(h, u64::from_le_bytes(word));
    }
    h
}

impl WarmKey {
    /// Builds a key for `kernel` tuned over `space` with the given
    /// surrogate family and noise-regime label.
    pub fn new(kernel: &str, space: &ParameterSpace, family: &str, noise: &str) -> WarmKey {
        WarmKey {
            kernel: kernel.to_string(),
            space: space_signature(space),
            family: family.to_string(),
            noise: noise.to_string(),
        }
    }

    /// Zobrist fingerprint: XOR of the four independently salted component
    /// hashes. Stable across process restarts.
    pub fn fingerprint(&self) -> u64 {
        component_hash(SALT_KERNEL, &self.kernel)
            ^ component_hash(SALT_SPACE, &self.space)
            ^ component_hash(SALT_FAMILY, &self.family)
            ^ component_hash(SALT_NOISE, &self.noise)
    }

    /// Structured discriminant: canonical JSON of the four components.
    /// Injective, so equality checks never trust the 64-bit fingerprint.
    pub fn discriminant(&self) -> String {
        JsonValue::Array(vec![
            JsonValue::String(self.kernel.clone()),
            JsonValue::String(self.space.clone()),
            JsonValue::String(self.family.clone()),
            JsonValue::String(self.noise.clone()),
        ])
        .to_json_string()
        .expect("strings always render")
    }
}

/// One cached surrogate.
#[derive(Debug, Clone)]
pub struct WarmEntry {
    /// [`WarmKey::fingerprint`] of the key this entry was stored under.
    pub fingerprint: u64,
    /// [`WarmKey::discriminant`] — the authoritative identity.
    pub discriminant: String,
    /// Observations the snapshotted model was trained on (the "depth" used
    /// by the replacement policy).
    pub observations: usize,
    /// Serialized model (`alic-model-snapshot/v1` document).
    pub model: JsonValue,
}

/// Memory-bounded transposition table of trained surrogates, persisted via
/// the ledger's verified atomic writer.
#[derive(Debug)]
pub struct WarmStore {
    path: PathBuf,
    buckets: Vec<[Option<WarmEntry>; 2]>,
    hits: u64,
    misses: u64,
    stores: u64,
}

impl WarmStore {
    fn blank(path: PathBuf, buckets: usize) -> WarmStore {
        let mut table = Vec::with_capacity(buckets);
        table.resize_with(buckets, || [None, None]);
        WarmStore {
            path,
            buckets: table,
            hits: 0,
            misses: 0,
            stores: 0,
        }
    }

    /// Opens the store at `path`. A missing file yields an empty store; a
    /// present-but-invalid file is quarantined (renamed `<name>.corrupt`,
    /// best effort) and likewise yields an empty store, so corruption
    /// degrades to cold starts instead of failing the daemon.
    pub fn open(path: impl Into<PathBuf>) -> WarmStore {
        let path = path.into();
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return WarmStore::blank(path, DEFAULT_WARM_BUCKETS);
            }
            Err(_) => {
                let _ = quarantine_file(&path);
                return WarmStore::blank(path, DEFAULT_WARM_BUCKETS);
            }
        };
        match WarmStore::decode(&path, &text) {
            Ok(store) => store,
            Err(_) => {
                let _ = quarantine_file(&path);
                WarmStore::blank(path, DEFAULT_WARM_BUCKETS)
            }
        }
    }

    fn decode(path: &Path, text: &str) -> Result<WarmStore> {
        let doc = JsonValue::parse(text)?;
        let schema = doc.field("schema")?.as_str()?;
        if schema != WARMSTORE_SCHEMA {
            return Err(CoreError::Campaign(format!(
                "warm store schema {schema:?} (expected {WARMSTORE_SCHEMA:?})"
            )));
        }
        let buckets = doc.field("buckets")?.as_usize()?;
        if buckets == 0 || !buckets.is_power_of_two() {
            return Err(CoreError::Campaign(format!(
                "warm store bucket count {buckets} is not a power of two"
            )));
        }
        let entries = doc.field("entries")?.as_array()?;
        if entries.len() != buckets * 2 {
            return Err(CoreError::Campaign(format!(
                "warm store has {} entries for {buckets} buckets",
                entries.len()
            )));
        }
        let mut store = WarmStore::blank(path.to_path_buf(), DEFAULT_WARM_BUCKETS);
        store.hits = doc.field("hits")?.as_u64()?;
        store.misses = doc.field("misses")?.as_u64()?;
        store.stores = doc.field("stores")?.as_u64()?;
        let same_layout = buckets == DEFAULT_WARM_BUCKETS;
        for (index, slot_doc) in entries.iter().enumerate() {
            if slot_doc.is_null() {
                continue;
            }
            let entry = WarmStore::decode_entry(slot_doc)?;
            let home = (entry.fingerprint as usize) & (buckets - 1);
            if home != index / 2 {
                return Err(CoreError::Campaign(format!(
                    "warm store entry {index} does not map to its bucket"
                )));
            }
            if same_layout {
                // Restore the exact slot layout so save → open → save is
                // idempotent (no replacement-policy reshuffle).
                store.buckets[index / 2][index % 2] = Some(entry);
            } else {
                // Bucket count changed between versions: re-insert through
                // the normal policy.
                store.insert_entry(entry);
                store.stores = store.stores.saturating_sub(1);
            }
        }
        Ok(store)
    }

    fn decode_entry(doc: &JsonValue) -> Result<WarmEntry> {
        let fp_text = doc.field("fingerprint")?.as_str()?;
        if fp_text.len() != 16 {
            return Err(CoreError::Campaign(
                "warm store fingerprint is not 16 hex digits".to_string(),
            ));
        }
        let fingerprint = u64::from_str_radix(fp_text, 16)
            .map_err(|_| CoreError::Campaign("warm store fingerprint is not hex".to_string()))?;
        Ok(WarmEntry {
            fingerprint,
            discriminant: doc.field("discriminant")?.as_str()?.to_string(),
            observations: doc.field("observations")?.as_usize()?,
            model: doc.field("model")?.clone(),
        })
    }

    /// Persists the store through the verified atomic writer (write, fsync,
    /// rename, read back; up to five attempts).
    ///
    /// # Errors
    ///
    /// Propagates writer I/O or serialization failures.
    pub fn save(&self) -> Result<()> {
        let mut entries = Vec::with_capacity(self.buckets.len() * 2);
        for bucket in &self.buckets {
            for slot in bucket {
                entries.push(match slot {
                    None => JsonValue::Null,
                    Some(e) => JsonValue::Object(vec![
                        (
                            "fingerprint".to_string(),
                            JsonValue::String(format!("{:016x}", e.fingerprint)),
                        ),
                        (
                            "discriminant".to_string(),
                            JsonValue::String(e.discriminant.clone()),
                        ),
                        (
                            "observations".to_string(),
                            JsonValue::Number(e.observations as f64),
                        ),
                        ("model".to_string(), e.model.clone()),
                    ]),
                });
            }
        }
        let doc = JsonValue::Object(vec![
            (
                "schema".to_string(),
                JsonValue::String(WARMSTORE_SCHEMA.to_string()),
            ),
            (
                "buckets".to_string(),
                JsonValue::Number(self.buckets.len() as f64),
            ),
            ("hits".to_string(), JsonValue::Number(self.hits as f64)),
            ("misses".to_string(), JsonValue::Number(self.misses as f64)),
            ("stores".to_string(), JsonValue::Number(self.stores as f64)),
            ("entries".to_string(), JsonValue::Array(entries)),
        ]);
        write_verified(&self.path, &doc.to_json_string()?)
    }

    /// Looks up a cached surrogate for `key`, bumping the hit/miss counter.
    pub fn probe(&mut self, key: &WarmKey) -> Option<&WarmEntry> {
        let fingerprint = key.fingerprint();
        let discriminant = key.discriminant();
        let bucket = (fingerprint as usize) & (self.buckets.len() - 1);
        let slot = (0..2).find(|&s| {
            self.buckets[bucket][s]
                .as_ref()
                .is_some_and(|e| e.fingerprint == fingerprint && e.discriminant == discriminant)
        });
        match slot {
            Some(s) => {
                self.hits += 1;
                self.buckets[bucket][s].as_ref()
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Offers a trained snapshot for `key`. Returns `true` when the entry
    /// was stored, `false` when the replacement policy kept what it had.
    pub fn insert(&mut self, key: &WarmKey, observations: usize, model: JsonValue) -> bool {
        self.insert_entry(WarmEntry {
            fingerprint: key.fingerprint(),
            discriminant: key.discriminant(),
            observations,
            model,
        })
    }

    fn insert_entry(&mut self, entry: WarmEntry) -> bool {
        let index = (entry.fingerprint as usize) & (self.buckets.len() - 1);
        let bucket = &mut self.buckets[index];
        let same_key = |slot: &Option<WarmEntry>| {
            slot.as_ref()
                .is_some_and(|e| e.discriminant == entry.discriminant)
        };
        let depth = |slot: &Option<WarmEntry>| slot.as_ref().map_or(0, |e| e.observations);
        let stored = if same_key(&bucket[0]) {
            // Same-key refresh of the primary slot: keep the deeper model.
            if entry.observations >= depth(&bucket[0]) {
                bucket[0] = Some(entry);
                true
            } else {
                false
            }
        } else if bucket[0].is_none() {
            bucket[0] = Some(entry);
            true
        } else if entry.observations >= depth(&bucket[0]) {
            // Displace the shallower primary into the always-replace slot.
            bucket[1] = bucket[0].take();
            bucket[0] = Some(entry);
            true
        } else if same_key(&bucket[1]) && depth(&bucket[1]) > entry.observations {
            // Never downgrade an existing copy of the same key.
            false
        } else {
            bucket[1] = Some(entry);
            true
        };
        if stored {
            self.stores += 1;
        }
        stored
    }

    /// Path this store persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of cached snapshots.
    pub fn len(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| b.iter().filter(|s| s.is_some()).count())
            .sum()
    }

    /// Whether the store holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Successful probes since the store was created or loaded.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Failed probes.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Accepted inserts.
    pub fn stores(&self) -> u64 {
        self.stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alic_sim::space::{ParamKind, ParamSpec, ParameterSpace};

    fn space(params: &[(&str, ParamKind, u32, u32)]) -> ParameterSpace {
        ParameterSpace::new(
            params
                .iter()
                .map(|&(name, kind, min, max)| ParamSpec {
                    name: name.to_string(),
                    kind,
                    min,
                    max,
                })
                .collect(),
        )
        .unwrap()
    }

    fn demo_space() -> ParameterSpace {
        space(&[
            ("U_i", ParamKind::Unroll, 1, 8),
            ("T_j", ParamKind::CacheTile, 4, 64),
        ])
    }

    fn model_doc(tag: usize) -> JsonValue {
        JsonValue::Object(vec![("tag".to_string(), JsonValue::Number(tag as f64))])
    }

    fn key(kernel: &str) -> WarmKey {
        WarmKey::new(kernel, &demo_space(), "gp", "default")
    }

    #[test]
    fn fingerprint_is_stable_and_component_sensitive() {
        let base = key("gemm");
        assert_eq!(base.fingerprint(), key("gemm").fingerprint());
        // Each component flip changes the fingerprint.
        assert_ne!(base.fingerprint(), key("conv2d").fingerprint());
        let other_space = space(&[("U_i", ParamKind::Unroll, 1, 16)]);
        assert_ne!(
            base.fingerprint(),
            WarmKey::new("gemm", &other_space, "gp", "default").fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            WarmKey::new("gemm", &demo_space(), "dynatree", "default").fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            WarmKey::new("gemm", &demo_space(), "gp", "campaign").fingerprint()
        );
    }

    #[test]
    fn space_signature_distinguishes_kind_and_bounds() {
        let a = space(&[("p", ParamKind::Unroll, 1, 8)]);
        let b = space(&[("p", ParamKind::CacheTile, 1, 8)]);
        let c = space(&[("p", ParamKind::Unroll, 1, 16)]);
        assert_ne!(space_signature(&a), space_signature(&b));
        assert_ne!(space_signature(&a), space_signature(&c));
        assert_eq!(space_signature(&a), space_signature(&a));
    }

    #[test]
    fn probe_miss_then_insert_then_hit() {
        let dir = std::env::temp_dir().join("alic-warmstore-basic");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = WarmStore::open(dir.join("store.json"));
        let k = key("gemm");
        assert!(store.probe(&k).is_none());
        assert!(store.insert(&k, 12, model_doc(1)));
        let entry = store.probe(&k).expect("hit after insert");
        assert_eq!(entry.observations, 12);
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.stores(), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn depth_preferred_slot_rejects_shallower_same_key() {
        let mut store = WarmStore::blank("unused".into(), 4);
        let k = key("gemm");
        assert!(store.insert(&k, 20, model_doc(1)));
        // A shallower snapshot of the same situation must not clobber it.
        assert!(!store.insert(&k, 5, model_doc(2)));
        assert_eq!(store.probe(&k).unwrap().observations, 20);
        // A deeper one refreshes in place.
        assert!(store.insert(&k, 30, model_doc(3)));
        assert_eq!(store.probe(&k).unwrap().observations, 30);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn displaced_primary_demotes_to_secondary_slot() {
        // One bucket forces every key to collide.
        let mut store = WarmStore::blank("unused".into(), 1);
        let a = key("gemm");
        let b = key("conv2d");
        let c = key("stencil");
        assert!(store.insert(&a, 10, model_doc(1)));
        assert!(store.insert(&b, 15, model_doc(2)));
        // b took slot 0; a demoted to slot 1 — both still probe-able.
        assert!(store.probe(&a).is_some());
        assert!(store.probe(&b).is_some());
        // c shallower than slot 0 → always-replace slot 1, evicting a.
        assert!(store.insert(&c, 3, model_doc(3)));
        assert!(store.probe(&a).is_none());
        assert!(store.probe(&b).is_some());
        assert!(store.probe(&c).is_some());
    }

    #[test]
    fn save_and_open_round_trip_preserves_layout_and_counters() {
        let dir = std::env::temp_dir().join("alic-warmstore-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let mut store = WarmStore::open(&path);
        let a = key("gemm");
        let b = key("conv2d");
        store.insert(&a, 10, model_doc(1));
        store.insert(&b, 25, model_doc(2));
        store.probe(&a);
        store.probe(&key("absent"));
        store.save().unwrap();
        let mut reloaded = WarmStore::open(&path);
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.hits(), 1);
        assert_eq!(reloaded.misses(), 1);
        assert_eq!(reloaded.stores(), 2);
        assert_eq!(reloaded.probe(&a).unwrap().observations, 10);
        assert_eq!(reloaded.probe(&b).unwrap().observations, 25);
        // Idempotent: save → open → save produces identical bytes.
        reloaded.hits = store.hits;
        reloaded.misses = store.misses;
        reloaded.save().unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        let again = WarmStore::open(&path);
        again.save().unwrap();
        assert_eq!(first, std::fs::read_to_string(&path).unwrap());
    }

    #[test]
    fn corrupt_store_quarantines_and_degrades_to_cold() {
        let dir = std::env::temp_dir().join("alic-warmstore-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        std::fs::write(&path, "{\"schema\": \"alic-warmstore/v1\", \"bro").unwrap();
        let mut store = WarmStore::open(&path);
        assert!(store.is_empty());
        assert!(store.probe(&key("gemm")).is_none());
        assert!(!path.exists(), "corrupt file should be renamed away");
        assert!(dir.join("store.json.corrupt").exists());
        // The empty store can be saved and reopened normally afterwards.
        store.insert(&key("gemm"), 8, model_doc(1));
        store.save().unwrap();
        assert_eq!(WarmStore::open(&path).len(), 1);
    }

    #[test]
    fn entry_in_wrong_bucket_is_rejected_as_corrupt() {
        let dir = std::env::temp_dir().join("alic-warmstore-wrongbucket");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let mut store = WarmStore::open(&path);
        store.insert(&key("gemm"), 8, model_doc(1));
        store.save().unwrap();
        // Move the lone entry to a wrong slot index by rewriting the file.
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = JsonValue::parse(&text).unwrap();
        let entries = doc.field("entries").unwrap().as_array().unwrap();
        let occupied = entries.iter().position(|e| !e.is_null()).unwrap();
        let mut moved: Vec<JsonValue> = entries.to_vec();
        let target = (occupied + 2) % moved.len();
        moved.swap(occupied, target);
        let mut fields: Vec<(String, JsonValue)> = match doc {
            JsonValue::Object(fields) => fields,
            _ => unreachable!(),
        };
        for field in &mut fields {
            if field.0 == "entries" {
                field.1 = JsonValue::Array(moved.clone());
            }
        }
        std::fs::write(&path, JsonValue::Object(fields).to_json_string().unwrap()).unwrap();
        let store = WarmStore::open(&path);
        assert!(store.is_empty());
        assert!(dir.join("store.json.corrupt").exists());
    }
}
