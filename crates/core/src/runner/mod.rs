//! The `alic-runner` layer: sharded, resumable campaign orchestration.
//!
//! The paper's evaluation is a large matrix — 11 SPAPT kernels × 3 sampling
//! plans × 10 seeded repetitions (§4), multiplied in this workspace by the
//! [`SurrogateSpec`] model families. This module decomposes any such matrix
//! into independent **work units** — one `(kernel, model, plan, repetition)`
//! cell each, with deterministic per-unit derived seeds — and executes them
//! on rayon's work-stealing thread pool. Each completed unit can be
//! checkpointed as a JSON record in an on-disk [`CampaignLedger`], which
//! makes every experiment built on the runner:
//!
//! * **resumable** — a killed campaign continues from its last completed
//!   unit (unit writes are atomic rename operations, so a kill can never
//!   leave a torn record);
//! * **shardable** — disjoint unit subsets can run in separate processes or
//!   on separate machines and be merged back afterwards;
//! * **bit-reproducible** — unit results depend only on the campaign
//!   specification, never on thread count, execution order, shard layout or
//!   kill/resume points, so a sharded, killed-and-resumed, merged campaign
//!   produces **byte-identical** reports to a single-process run (enforced
//!   by `tests/campaign_resume.rs` and the `campaign-smoke` CI job). One
//!   caveat: unit results flow through `libm`-backed float functions
//!   (`exp`, `ln`, `powf`, …), whose last-ulp behaviour can differ across
//!   libc implementations and architectures — the byte-identity guarantee
//!   therefore holds across *processes and machines of the same platform
//!   and toolchain*; shards merged from heterogeneous platforms may differ
//!   in final float ulps.
//!
//! Curve averaging and the Table 1 statistics are a *pure merge step* over
//! unit records ([`assemble_report`] →
//! [`assemble_outcome`](crate::experiment::assemble_outcome)), so they can
//! run long after — and on a different machine than — the units themselves.
//!
//! [`compare_plans`](crate::experiment::compare_plans), the experiment
//! binaries (`table1`, `fig5`, `fig6`, `ablation`) and the `campaign` CLI
//! all execute through this module.
//!
//! # Quickstart
//!
//! ```
//! use alic_core::prelude::*;
//! use alic_core::runner::{self, CampaignSpec};
//! use alic_data::dataset::DatasetConfig;
//! use alic_sim::kernel::KernelSpec;
//! use alic_sim::noise::NoiseProfile;
//! use alic_sim::space::ParamSpec;
//!
//! // A toy kernel and a deliberately tiny comparison matrix.
//! let kernel = KernelSpec::new(
//!     "toy",
//!     vec![ParamSpec::unroll("u1"), ParamSpec::unroll("u2")],
//!     1.0,
//!     0.5,
//!     NoiseProfile::quiet(),
//! )
//! .unwrap()
//! .with_surface_seed(5);
//! let base = ComparisonConfig {
//!     learner: LearnerConfig {
//!         initial_examples: 3,
//!         initial_observations: 4,
//!         candidates_per_iteration: 10,
//!         max_iterations: 8,
//!         evaluate_every: 4,
//!         ..Default::default()
//!     },
//!     plans: vec![SamplingPlan::fixed(4), SamplingPlan::sequential(4)],
//!     repetitions: 1,
//!     model: SurrogateSpec::dynatree(15),
//!     dataset: DatasetConfig { configurations: 120, observations: 4, seed: 0 },
//!     train_size: 90,
//!     grid_resolution: 20,
//!     seed: 7,
//! };
//!
//! // Every (kernel × model × plan × repetition) cell is one shardable unit.
//! let campaign = CampaignSpec::single(kernel, base);
//! assert_eq!(campaign.unit_count(), 2); // 1 kernel × 1 model × 2 plans × 1 rep
//!
//! let report = runner::run_campaign(&campaign)?;
//! assert_eq!(report.entries.len(), 1);
//! let json = report.to_json_string()?; // canonical — byte-stable across runs
//! assert!(json.starts_with("{\"schema\":\"alic-campaign-report/v1\""));
//! # Ok::<(), alic_core::CoreError>(())
//! ```

pub mod codec;
pub mod ledger;

use rayon::prelude::*;

use alic_data::dataset::Dataset;
use alic_data::split::TrainTestSplit;
use alic_model::SurrogateSpec;
use alic_sim::kernel::KernelSpec;
use alic_sim::profiler::SimulatedProfiler;
use alic_stats::rng::derive_seed;

use crate::experiment::{assemble_outcome, ComparisonConfig, ComparisonOutcome};
use crate::learner::{ActiveLearner, LearnerConfig, LearnerRun};
use crate::plan::SamplingPlan;
use crate::{CoreError, Result};

pub use ledger::CampaignLedger;

/// A campaign: the full experiment matrix `kernels × models × plans ×
/// repetitions` plus the shared learner/dataset configuration.
///
/// The `base` configuration's `model` field is ignored in favour of the
/// explicit `models` axis (use [`CampaignSpec::single`] when there is only
/// one model, as in the classic [`compare_plans`](crate::experiment::compare_plans)
/// protocol).
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// The kernels of the matrix, in report order.
    pub kernels: Vec<KernelSpec>,
    /// The surrogate families of the matrix, in report order.
    pub models: Vec<SurrogateSpec>,
    /// Shared configuration: plans, repetitions, learner, dataset protocol
    /// and the base seed every per-unit seed is derived from.
    pub base: ComparisonConfig,
}

impl CampaignSpec {
    /// Creates a campaign over explicit kernel and model axes.
    pub fn new(
        kernels: Vec<KernelSpec>,
        models: Vec<SurrogateSpec>,
        base: ComparisonConfig,
    ) -> Self {
        CampaignSpec {
            kernels,
            models,
            base,
        }
    }

    /// The single-kernel, single-model campaign equivalent to one
    /// [`compare_plans`](crate::experiment::compare_plans) call: the model
    /// axis is `base.model`.
    pub fn single(kernel: KernelSpec, base: ComparisonConfig) -> Self {
        let model = base.model;
        CampaignSpec {
            kernels: vec![kernel],
            models: vec![model],
            base,
        }
    }

    /// Checks that every axis of the matrix is non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the campaign has no
    /// kernels, models, plans or repetitions.
    pub fn validate(&self) -> Result<()> {
        let problem = if self.kernels.is_empty() {
            Some("no kernels")
        } else if self.models.is_empty() {
            Some("no models")
        } else if self.base.plans.is_empty() {
            Some("no sampling plans")
        } else if self.base.repetitions == 0 {
            Some("zero repetitions")
        } else {
            None
        };
        match problem {
            Some(p) => Err(CoreError::InvalidConfig(format!("campaign has {p}"))),
            None => Ok(()),
        }
    }

    /// Total number of work units in the matrix.
    pub fn unit_count(&self) -> usize {
        self.kernels.len() * self.models.len() * self.base.plans.len() * self.base.repetitions
    }

    /// Decomposes a linear unit index into its matrix coordinates. Units are
    /// ordered kernel-major, then model, then plan, with the repetition
    /// varying fastest — the layout [`assemble_report`] relies on.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.unit_count()`.
    pub fn unit(&self, index: usize) -> UnitKey {
        assert!(
            index < self.unit_count(),
            "unit index {index} out of range (campaign has {} units)",
            self.unit_count()
        );
        let reps = self.base.repetitions;
        let plans = self.base.plans.len();
        let models = self.models.len();
        let repetition = (index % reps) as u64;
        let rest = index / reps;
        let plan = rest % plans;
        let rest = rest / plans;
        let model = rest % models;
        let kernel = rest / models;
        UnitKey {
            kernel,
            model,
            plan,
            repetition,
        }
    }

    /// The linear index of a unit key (inverse of [`CampaignSpec::unit`]).
    pub fn index_of(&self, key: UnitKey) -> usize {
        ((key.kernel * self.models.len() + key.model) * self.base.plans.len() + key.plan)
            * self.base.repetitions
            + key.repetition as usize
    }

    /// The unit indices of shard `shard` (1-based) of `of`: a contiguous,
    /// balanced slice of the unit range, so a shard usually touches only a
    /// subset of the kernels (and therefore prepares fewer datasets).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `1 <= shard <= of`.
    pub fn shard(&self, shard: usize, of: usize) -> Result<Vec<usize>> {
        if of == 0 || shard == 0 || shard > of {
            return Err(CoreError::InvalidConfig(format!(
                "shard {shard}/{of} is not a valid 1-based shard specification"
            )));
        }
        let n = self.unit_count();
        let start = (shard - 1) * n / of;
        let end = shard * n / of;
        Ok((start..end).collect())
    }

    /// A stable fingerprint of the whole campaign configuration (FNV-1a over
    /// the canonical debug rendering). The on-disk ledger stores it in its
    /// manifest and refuses to mix units from differently configured
    /// campaigns.
    ///
    /// `base.model` is normalized away before hashing: the explicit `models`
    /// axis is what units are built from, so two specs differing only in the
    /// (documented-as-ignored) base model field are the *same* campaign and
    /// must be able to resume each other's ledgers.
    pub fn fingerprint(&self) -> u64 {
        let mut base = self.base.clone();
        base.model = SurrogateSpec::default();
        let rendered = format!("{:?}|{:?}|{:?}", self.kernels, self.models, base);
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in rendered.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// Matrix coordinates of one work unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitKey {
    /// Index into [`CampaignSpec::kernels`].
    pub kernel: usize,
    /// Index into [`CampaignSpec::models`].
    pub model: usize,
    /// Index into the base configuration's plan list.
    pub plan: usize,
    /// Repetition number (`0..repetitions`).
    pub repetition: u64,
}

/// One completed work unit: its coordinates (with human-readable names for
/// the on-disk record) and the learning run it produced.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitRecord {
    /// Linear unit index within the campaign.
    pub index: usize,
    /// Kernel name (for ledger inspection and validation).
    pub kernel: String,
    /// Model family name.
    pub model: String,
    /// The sampling plan the unit ran.
    pub plan: SamplingPlan,
    /// Repetition number.
    pub repetition: u64,
    /// The unit's learning run.
    pub run: LearnerRun,
}

/// Per-kernel shared state: the profiled dataset and its train/test split,
/// generated once per kernel exactly as in the paper (§4.5) and shared by
/// every plan, model and repetition. Deterministic in the campaign seed, so
/// every shard regenerates the identical context.
#[derive(Debug)]
pub struct KernelContext {
    /// The profiled dataset.
    pub dataset: Dataset,
    /// Train/test split over the dataset.
    pub split: TrainTestSplit,
}

impl KernelContext {
    /// Generates the dataset and split for one kernel.
    pub fn prepare(spec: &KernelSpec, config: &ComparisonConfig) -> Self {
        let mut profiler = SimulatedProfiler::new(spec.clone(), derive_seed(config.seed, 1));
        let dataset = Dataset::generate(&mut profiler, &config.dataset);
        let train_size = config.train_size.min(dataset.len().saturating_sub(1));
        let split = dataset.split(train_size, derive_seed(config.seed, 2));
        KernelContext { dataset, split }
    }
}

/// Executes one work unit: builds the unit's profiler, learner and surrogate
/// from seeds derived deterministically from the campaign seed and the
/// repetition number, and runs Algorithm 1.
///
/// The derivation matches the pre-runner `compare_plans` exactly (repetition
/// seeds shared across plans, models and kernels), so paired comparisons
/// across those axes see identical candidate streams and measurement noise.
///
/// # Errors
///
/// Propagates learner errors (for example inconsistent configurations).
pub fn execute_unit(spec: &CampaignSpec, ctx: &KernelContext, key: UnitKey) -> Result<LearnerRun> {
    let config = &spec.base;
    let seed = derive_seed(config.seed, 1000 + key.repetition);
    let mut profiler =
        SimulatedProfiler::new(spec.kernels[key.kernel].clone(), derive_seed(seed, 3));
    // Every plan shares `config.learner.initial_observations` for its seed
    // examples, so all plans start from equally accurate seed data.
    let learner_config = LearnerConfig {
        plan: config.plans[key.plan],
        seed: derive_seed(seed, 4),
        ..config.learner
    };
    let mut model = spec.models[key.model].build(derive_seed(seed, 5));
    let mut learner = ActiveLearner::new(learner_config, &mut profiler);
    learner.run(model.as_mut(), &ctx.dataset, &ctx.split)
}

/// Order-preserving work-stealing parallel map — the executor primitive
/// beneath [`execute_units`], exposed so experiment stages with their own
/// unit shape (for example Table 2's per-kernel noise rows) run on the same
/// pool. Results are written back by index, so the output is independent of
/// the thread count and scheduling order.
pub fn map_units<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync + Send,
{
    items.par_iter().map(f).collect()
}

/// Executes the given unit indices on the work-stealing pool, invoking
/// `checkpoint` for every completed unit (the on-disk ledger passes
/// [`CampaignLedger::record`]; in-memory callers pass a no-op).
///
/// Kernel contexts (dataset + split) are prepared once per distinct kernel
/// appearing in `indices`, in parallel, before any unit runs.
///
/// # Errors
///
/// Returns the first unit execution or checkpoint error.
pub fn execute_units<F>(
    spec: &CampaignSpec,
    indices: &[usize],
    checkpoint: &F,
) -> Result<Vec<UnitRecord>>
where
    F: Fn(&UnitRecord) -> Result<()> + Sync,
{
    spec.validate()?;
    let count = spec.unit_count();
    if let Some(&bad) = indices.iter().find(|&&i| i >= count) {
        return Err(CoreError::InvalidConfig(format!(
            "unit index {bad} out of range (campaign has {count} units)"
        )));
    }

    let mut kernel_ids: Vec<usize> = indices.iter().map(|&i| spec.unit(i).kernel).collect();
    kernel_ids.sort_unstable();
    kernel_ids.dedup();
    let contexts: Vec<KernelContext> = map_units(&kernel_ids, |&k| {
        KernelContext::prepare(&spec.kernels[k], &spec.base)
    });
    let context_of = |kernel: usize| -> &KernelContext {
        let slot = kernel_ids
            .binary_search(&kernel)
            .expect("context prepared for every kernel in the unit set");
        &contexts[slot]
    };

    indices
        .par_iter()
        .map(|&index| {
            let key = spec.unit(index);
            let run = execute_unit(spec, context_of(key.kernel), key)?;
            let record = UnitRecord {
                index,
                kernel: spec.kernels[key.kernel].name().to_string(),
                model: spec.models[key.model].name().to_string(),
                plan: spec.base.plans[key.plan],
                repetition: key.repetition,
                run,
            };
            checkpoint(&record)?;
            Ok(record)
        })
        .collect()
}

/// One `(model, kernel)` cell of a campaign report.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignEntry {
    /// Model family name.
    pub model: String,
    /// Kernel name.
    pub kernel: String,
    /// The assembled plan-comparison outcome for this cell.
    pub outcome: ComparisonOutcome,
}

/// The merged result of a campaign: one [`ComparisonOutcome`] per
/// `(kernel, model)` cell, in unit order (kernel-major, model inner).
///
/// Serializes canonically through [`CampaignReport::to_json_string`]; two
/// reports assembled from the same unit results — regardless of sharding,
/// kills, resumes or execution order — produce byte-identical JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Kernel names, in campaign order.
    pub kernels: Vec<String>,
    /// Model family names, in campaign order.
    pub models: Vec<String>,
    /// The compared sampling plans.
    pub plans: Vec<SamplingPlan>,
    /// Repetitions per cell.
    pub repetitions: usize,
    /// The campaign base seed.
    pub seed: u64,
    /// One entry per `(kernel, model)` cell, kernel-major.
    pub entries: Vec<CampaignEntry>,
}

impl CampaignReport {
    /// The outcomes of one model family, in kernel order.
    pub fn outcomes_for_model(&self, model: &str) -> Vec<&ComparisonOutcome> {
        self.entries
            .iter()
            .filter(|e| e.model == model)
            .map(|e| &e.outcome)
            .collect()
    }

    /// Serializes the report as canonical JSON (see [`codec`]).
    ///
    /// # Errors
    ///
    /// Returns an error when the report contains non-finite numbers.
    pub fn to_json_string(&self) -> Result<String> {
        codec::report_to_json(self)?
            .to_json_string()
            .map_err(CoreError::from)
    }

    /// Parses a report serialized by [`CampaignReport::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns an error on malformed input.
    pub fn from_json_str(text: &str) -> Result<Self> {
        codec::report_from_json(&alic_data::JsonValue::parse(text)?)
    }
}

/// The pure merge step: validates that `records` cover the campaign's full
/// unit matrix and folds them — grouped per `(kernel, model)` cell, plans
/// and repetitions in campaign order — into averaged curves and Table 1
/// statistics via [`assemble_outcome`](crate::experiment::assemble_outcome).
///
/// Records may arrive in any order (they are sorted by unit index), so
/// shards can be merged from any interleaving.
///
/// # Errors
///
/// Returns [`CoreError::Campaign`] when units are missing, duplicated, or
/// inconsistent with the campaign specification.
pub fn assemble_report(spec: &CampaignSpec, records: Vec<UnitRecord>) -> Result<CampaignReport> {
    spec.validate()?;
    let expected = spec.unit_count();
    let mut records = records;
    records.sort_by_key(|r| r.index);
    if records.len() != expected {
        return Err(CoreError::Campaign(format!(
            "campaign is incomplete: {} of {expected} unit records present",
            records.len()
        )));
    }
    for (i, record) in records.iter().enumerate() {
        if record.index != i {
            return Err(CoreError::Campaign(format!(
                "unit records are inconsistent: expected index {i}, found {}",
                record.index
            )));
        }
        let key = spec.unit(i);
        let kernel = spec.kernels[key.kernel].name();
        let model = spec.models[key.model].name();
        if record.kernel != kernel || record.model != model {
            return Err(CoreError::Campaign(format!(
                "unit {i} belongs to ({}, {}) but the campaign expects ({kernel}, {model}); \
                 the ledger was probably written by a differently configured campaign",
                record.kernel, record.model
            )));
        }
    }

    let per_cell = spec.base.plans.len() * spec.base.repetitions;
    let mut runs = records.into_iter().map(|r| r.run);
    let mut entries = Vec::with_capacity(spec.kernels.len() * spec.models.len());
    for kernel in &spec.kernels {
        for model in &spec.models {
            let cell: Vec<LearnerRun> = runs.by_ref().take(per_cell).collect();
            entries.push(CampaignEntry {
                model: model.name().to_string(),
                kernel: kernel.name().to_string(),
                outcome: assemble_outcome(kernel.name(), &spec.base, cell),
            });
        }
    }

    Ok(CampaignReport {
        kernels: spec.kernels.iter().map(|k| k.name().to_string()).collect(),
        models: spec.models.iter().map(|m| m.name().to_string()).collect(),
        plans: spec.base.plans.clone(),
        repetitions: spec.base.repetitions,
        seed: spec.base.seed,
        entries,
    })
}

/// Runs a whole campaign in memory — every unit on the work-stealing pool,
/// no ledger — and merges the results. This is the path the classic
/// experiment entry points ([`compare_plans`](crate::experiment::compare_plans),
/// `table1::run_for_kernels_with`) go through.
///
/// # Errors
///
/// Propagates unit execution and merge errors.
pub fn run_campaign(spec: &CampaignSpec) -> Result<CampaignReport> {
    let indices: Vec<usize> = (0..spec.unit_count()).collect();
    let records = execute_units(spec, &indices, &|_| Ok(()))?;
    assemble_report(spec, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alic_data::dataset::DatasetConfig;
    use alic_sim::noise::NoiseProfile;
    use alic_sim::space::ParamSpec;

    pub(crate) fn toy_kernel(name: &str, surface_seed: u64) -> KernelSpec {
        KernelSpec::new(
            name,
            vec![ParamSpec::unroll("u1"), ParamSpec::unroll("u2")],
            1.0,
            0.5,
            NoiseProfile::moderate(),
        )
        .unwrap()
        .with_surface_seed(surface_seed)
    }

    pub(crate) fn tiny_base() -> ComparisonConfig {
        ComparisonConfig {
            learner: LearnerConfig {
                initial_examples: 3,
                initial_observations: 4,
                candidates_per_iteration: 12,
                max_iterations: 10,
                evaluate_every: 5,
                ..Default::default()
            },
            plans: vec![
                SamplingPlan::fixed(4),
                SamplingPlan::one_observation(),
                SamplingPlan::sequential(4),
            ],
            repetitions: 2,
            model: SurrogateSpec::dynatree(20),
            dataset: DatasetConfig {
                configurations: 150,
                observations: 4,
                seed: 0,
            },
            train_size: 110,
            grid_resolution: 30,
            seed: 5,
        }
    }

    pub(crate) fn tiny_campaign() -> CampaignSpec {
        CampaignSpec::new(
            vec![toy_kernel("alpha", 3), toy_kernel("beta", 9)],
            vec![SurrogateSpec::dynatree(20), SurrogateSpec::Mean],
            tiny_base(),
        )
    }

    #[test]
    fn unit_indexing_round_trips() {
        let spec = tiny_campaign();
        assert_eq!(spec.unit_count(), 2 * 2 * 3 * 2);
        for index in 0..spec.unit_count() {
            let key = spec.unit(index);
            assert_eq!(spec.index_of(key), index);
            assert!(key.kernel < 2 && key.model < 2 && key.plan < 3 && key.repetition < 2);
        }
        // Kernel-major, repetition fastest.
        assert_eq!(
            spec.unit(0),
            UnitKey {
                kernel: 0,
                model: 0,
                plan: 0,
                repetition: 0
            }
        );
        assert_eq!(spec.unit(1).repetition, 1);
        assert_eq!(spec.unit(spec.unit_count() - 1).kernel, 1);
    }

    #[test]
    fn shards_partition_the_unit_range() {
        let spec = tiny_campaign();
        let n = spec.unit_count();
        for of in 1..=5 {
            let mut all = Vec::new();
            for shard in 1..=of {
                all.extend(spec.shard(shard, of).unwrap());
            }
            assert_eq!(all, (0..n).collect::<Vec<_>>(), "shards 1..={of}");
        }
        assert!(spec.shard(0, 3).is_err());
        assert!(spec.shard(4, 3).is_err());
        assert!(spec.shard(1, 0).is_err());
    }

    #[test]
    fn fingerprint_tracks_the_configuration() {
        let spec = tiny_campaign();
        assert_eq!(spec.fingerprint(), tiny_campaign().fingerprint());
        let mut other = tiny_campaign();
        other.base.seed += 1;
        assert_ne!(spec.fingerprint(), other.fingerprint());
        let mut fewer = tiny_campaign();
        fewer.models.pop();
        assert_ne!(spec.fingerprint(), fewer.fingerprint());
        // The base model field is documented as ignored (the models axis is
        // what units are built from), so it must not affect the fingerprint
        // — otherwise a reconstructed campaign could not resume its ledger.
        let mut ignored_model = tiny_campaign();
        ignored_model.base.model = SurrogateSpec::Mean;
        assert_eq!(spec.fingerprint(), ignored_model.fingerprint());
    }

    #[test]
    fn empty_axes_are_rejected() {
        let mut spec = tiny_campaign();
        spec.kernels.clear();
        assert!(matches!(
            run_campaign(&spec),
            Err(CoreError::InvalidConfig(_))
        ));
        let mut spec = tiny_campaign();
        spec.base.repetitions = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn out_of_range_unit_indices_are_rejected() {
        let spec = tiny_campaign();
        let bad = vec![spec.unit_count()];
        assert!(matches!(
            execute_units(&spec, &bad, &|_| Ok(())),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn campaign_report_matches_per_cell_compare_plans() {
        // The campaign path and the classic single-cell path must agree
        // exactly: compare_plans is itself a single-cell campaign.
        let spec = tiny_campaign();
        let report = run_campaign(&spec).unwrap();
        assert_eq!(report.entries.len(), 4);
        for (k, kernel) in spec.kernels.iter().enumerate() {
            for (m, model) in spec.models.iter().enumerate() {
                let mut config = spec.base.clone();
                config.model = *model;
                let direct = crate::experiment::compare_plans(kernel, &config).unwrap();
                let entry = &report.entries[k * spec.models.len() + m];
                assert_eq!(entry.kernel, kernel.name());
                assert_eq!(entry.model, model.name());
                assert_eq!(entry.outcome, direct, "cell ({k}, {m})");
            }
        }
    }

    #[test]
    fn execution_order_and_sharding_do_not_change_the_report() {
        let spec = tiny_campaign();
        let baseline = run_campaign(&spec).unwrap();

        // Execute the units in reverse order, in two calls, and merge.
        let mut indices: Vec<usize> = (0..spec.unit_count()).rev().collect();
        let (first, second) = indices.split_at_mut(5);
        let mut records = execute_units(&spec, first, &|_| Ok(())).unwrap();
        records.extend(execute_units(&spec, second, &|_| Ok(())).unwrap());
        let merged = assemble_report(&spec, records).unwrap();

        assert_eq!(merged, baseline);
        assert_eq!(
            merged.to_json_string().unwrap(),
            baseline.to_json_string().unwrap()
        );
    }

    #[test]
    fn assemble_report_rejects_missing_and_foreign_units() {
        let spec = tiny_campaign();
        let indices: Vec<usize> = (0..spec.unit_count()).collect();
        let records = execute_units(&spec, &indices, &|_| Ok(())).unwrap();

        let mut missing = records.clone();
        missing.pop();
        assert!(matches!(
            assemble_report(&spec, missing),
            Err(CoreError::Campaign(_))
        ));

        let mut foreign = records;
        foreign[0].kernel = "someone-else".to_string();
        assert!(matches!(
            assemble_report(&spec, foreign),
            Err(CoreError::Campaign(_))
        ));
    }

    #[test]
    fn map_units_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = map_units(&items, |&i| i * 2);
        assert_eq!(doubled, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }
}
