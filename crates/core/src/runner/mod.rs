//! The `alic-runner` layer: sharded, resumable campaign orchestration.
//!
//! The paper's evaluation is a large matrix — 11 SPAPT kernels × 3 sampling
//! plans × 10 seeded repetitions (§4), multiplied in this workspace by the
//! [`SurrogateSpec`] model families. This module decomposes any such matrix
//! into independent **work units** — one `(kernel, model, plan, repetition)`
//! cell each, with deterministic per-unit derived seeds — and executes them
//! on rayon's work-stealing thread pool. Each completed unit can be
//! checkpointed as a JSON record in an on-disk [`CampaignLedger`], which
//! makes every experiment built on the runner:
//!
//! * **resumable** — a killed campaign continues from its last completed
//!   unit (unit writes are atomic rename operations, so a kill can never
//!   leave a torn record);
//! * **shardable** — disjoint unit subsets can run in separate processes or
//!   on separate machines and be merged back afterwards;
//! * **bit-reproducible** — unit results depend only on the campaign
//!   specification, never on thread count, execution order, shard layout or
//!   kill/resume points, so a sharded, killed-and-resumed, merged campaign
//!   produces **byte-identical** reports to a single-process run (enforced
//!   by `tests/campaign_resume.rs` and the `campaign-smoke` CI job). One
//!   caveat: unit results flow through `libm`-backed float functions
//!   (`exp`, `ln`, `powf`, …), whose last-ulp behaviour can differ across
//!   libc implementations and architectures — the byte-identity guarantee
//!   therefore holds across *processes and machines of the same platform
//!   and toolchain*; shards merged from heterogeneous platforms may differ
//!   in final float ulps.
//!
//! Curve averaging and the Table 1 statistics are a *pure merge step* over
//! unit records ([`assemble_report`] →
//! [`assemble_outcome`](crate::experiment::assemble_outcome)), so they can
//! run long after — and on a different machine than — the units themselves.
//!
//! [`compare_plans`](crate::experiment::compare_plans), the experiment
//! binaries (`table1`, `fig5`, `fig6`, `ablation`) and the `campaign` CLI
//! all execute through this module.
//!
//! # Quickstart
//!
//! ```
//! use alic_core::prelude::*;
//! use alic_core::runner::{self, CampaignSpec};
//! use alic_data::dataset::DatasetConfig;
//! use alic_sim::kernel::KernelSpec;
//! use alic_sim::noise::NoiseProfile;
//! use alic_sim::space::ParamSpec;
//!
//! // A toy kernel and a deliberately tiny comparison matrix.
//! let kernel = KernelSpec::new(
//!     "toy",
//!     vec![ParamSpec::unroll("u1"), ParamSpec::unroll("u2")],
//!     1.0,
//!     0.5,
//!     NoiseProfile::quiet(),
//! )
//! .unwrap()
//! .with_surface_seed(5);
//! let base = ComparisonConfig {
//!     learner: LearnerConfig {
//!         initial_examples: 3,
//!         initial_observations: 4,
//!         candidates_per_iteration: 10,
//!         max_iterations: 8,
//!         evaluate_every: 4,
//!         ..Default::default()
//!     },
//!     plans: vec![SamplingPlan::fixed(4), SamplingPlan::sequential(4)],
//!     repetitions: 1,
//!     model: SurrogateSpec::dynatree(15),
//!     dataset: DatasetConfig { configurations: 120, observations: 4, seed: 0 },
//!     train_size: 90,
//!     grid_resolution: 20,
//!     seed: 7,
//! };
//!
//! // Every (kernel × model × plan × repetition) cell is one shardable unit.
//! let campaign = CampaignSpec::single(kernel, base);
//! assert_eq!(campaign.unit_count(), 2); // 1 kernel × 1 model × 2 plans × 1 rep
//!
//! let report = runner::run_campaign(&campaign)?;
//! assert_eq!(report.entries.len(), 1);
//! let json = report.to_json_string()?; // canonical — byte-stable across runs
//! assert!(json.starts_with("{\"schema\":\"alic-campaign-report/v1\""));
//! # Ok::<(), alic_core::CoreError>(())
//! ```

pub mod codec;
pub mod ledger;

use rayon::prelude::*;

use alic_data::dataset::Dataset;
use alic_data::split::TrainTestSplit;
use alic_model::SurrogateSpec;
use alic_sim::kernel::KernelSpec;
use alic_sim::profiler::SimulatedProfiler;
use alic_stats::rng::derive_seed;

use crate::experiment::{assemble_outcome_grouped, ComparisonConfig, ComparisonOutcome};
use crate::learner::{ActiveLearner, LearnerConfig, LearnerRun};
use crate::plan::SamplingPlan;
use crate::{CoreError, Result};

pub use ledger::CampaignLedger;

/// A campaign: the full experiment matrix `kernels × models × plans ×
/// repetitions` plus the shared learner/dataset configuration.
///
/// The `base` configuration's `model` field is ignored in favour of the
/// explicit `models` axis (use [`CampaignSpec::single`] when there is only
/// one model, as in the classic [`compare_plans`](crate::experiment::compare_plans)
/// protocol).
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// The kernels of the matrix, in report order.
    pub kernels: Vec<KernelSpec>,
    /// The surrogate families of the matrix, in report order.
    pub models: Vec<SurrogateSpec>,
    /// Shared configuration: plans, repetitions, learner, dataset protocol
    /// and the base seed every per-unit seed is derived from.
    pub base: ComparisonConfig,
}

impl CampaignSpec {
    /// Creates a campaign over explicit kernel and model axes.
    pub fn new(
        kernels: Vec<KernelSpec>,
        models: Vec<SurrogateSpec>,
        base: ComparisonConfig,
    ) -> Self {
        CampaignSpec {
            kernels,
            models,
            base,
        }
    }

    /// The single-kernel, single-model campaign equivalent to one
    /// [`compare_plans`](crate::experiment::compare_plans) call: the model
    /// axis is `base.model`.
    pub fn single(kernel: KernelSpec, base: ComparisonConfig) -> Self {
        let model = base.model;
        CampaignSpec {
            kernels: vec![kernel],
            models: vec![model],
            base,
        }
    }

    /// Checks that every axis of the matrix is non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the campaign has no
    /// kernels, models, plans or repetitions.
    pub fn validate(&self) -> Result<()> {
        let problem = if self.kernels.is_empty() {
            Some("no kernels")
        } else if self.models.is_empty() {
            Some("no models")
        } else if self.base.plans.is_empty() {
            Some("no sampling plans")
        } else if self.base.repetitions == 0 {
            Some("zero repetitions")
        } else {
            None
        };
        match problem {
            Some(p) => Err(CoreError::InvalidConfig(format!("campaign has {p}"))),
            None => Ok(()),
        }
    }

    /// Total number of work units in the matrix.
    pub fn unit_count(&self) -> usize {
        self.kernels.len() * self.models.len() * self.base.plans.len() * self.base.repetitions
    }

    /// Decomposes a linear unit index into its matrix coordinates. Units are
    /// ordered kernel-major, then model, then plan, with the repetition
    /// varying fastest — the layout [`assemble_report`] relies on.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.unit_count()`.
    pub fn unit(&self, index: usize) -> UnitKey {
        assert!(
            index < self.unit_count(),
            "unit index {index} out of range (campaign has {} units)",
            self.unit_count()
        );
        let reps = self.base.repetitions;
        let plans = self.base.plans.len();
        let models = self.models.len();
        let repetition = (index % reps) as u64;
        let rest = index / reps;
        let plan = rest % plans;
        let rest = rest / plans;
        let model = rest % models;
        let kernel = rest / models;
        UnitKey {
            kernel,
            model,
            plan,
            repetition,
        }
    }

    /// The linear index of a unit key (inverse of [`CampaignSpec::unit`]).
    pub fn index_of(&self, key: UnitKey) -> usize {
        ((key.kernel * self.models.len() + key.model) * self.base.plans.len() + key.plan)
            * self.base.repetitions
            + key.repetition as usize
    }

    /// The unit indices of shard `shard` (1-based) of `of`: a contiguous,
    /// balanced slice of the unit range, so a shard usually touches only a
    /// subset of the kernels (and therefore prepares fewer datasets).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `1 <= shard <= of`.
    pub fn shard(&self, shard: usize, of: usize) -> Result<Vec<usize>> {
        if of == 0 || shard == 0 || shard > of {
            return Err(CoreError::InvalidConfig(format!(
                "shard {shard}/{of} is not a valid 1-based shard specification"
            )));
        }
        let n = self.unit_count();
        let start = (shard - 1) * n / of;
        let end = shard * n / of;
        Ok((start..end).collect())
    }

    /// A stable fingerprint of the whole campaign configuration (FNV-1a over
    /// the canonical debug rendering). The on-disk ledger stores it in its
    /// manifest and refuses to mix units from differently configured
    /// campaigns.
    ///
    /// `base.model` is normalized away before hashing: the explicit `models`
    /// axis is what units are built from, so two specs differing only in the
    /// (documented-as-ignored) base model field are the *same* campaign and
    /// must be able to resume each other's ledgers.
    pub fn fingerprint(&self) -> u64 {
        let mut base = self.base.clone();
        base.model = SurrogateSpec::default();
        let rendered = format!("{:?}|{:?}|{:?}", self.kernels, self.models, base);
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in rendered.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// Matrix coordinates of one work unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitKey {
    /// Index into [`CampaignSpec::kernels`].
    pub kernel: usize,
    /// Index into [`CampaignSpec::models`].
    pub model: usize,
    /// Index into the base configuration's plan list.
    pub plan: usize,
    /// Repetition number (`0..repetitions`).
    pub repetition: u64,
}

/// One completed work unit: its coordinates (with human-readable names for
/// the on-disk record) and the learning run it produced.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitRecord {
    /// Linear unit index within the campaign.
    pub index: usize,
    /// Kernel name (for ledger inspection and validation).
    pub kernel: String,
    /// Model family name.
    pub model: String,
    /// The sampling plan the unit ran.
    pub plan: SamplingPlan,
    /// Repetition number.
    pub repetition: u64,
    /// The unit's learning run.
    pub run: LearnerRun,
}

/// Per-kernel shared state: the profiled dataset and its train/test split,
/// generated once per kernel exactly as in the paper (§4.5) and shared by
/// every plan, model and repetition. Deterministic in the campaign seed, so
/// every shard regenerates the identical context.
#[derive(Debug)]
pub struct KernelContext {
    /// The profiled dataset.
    pub dataset: Dataset,
    /// Train/test split over the dataset.
    pub split: TrainTestSplit,
}

impl KernelContext {
    /// Generates the dataset and split for one kernel.
    pub fn prepare(spec: &KernelSpec, config: &ComparisonConfig) -> Self {
        let mut profiler = SimulatedProfiler::new(spec.clone(), derive_seed(config.seed, 1));
        let dataset = Dataset::generate(&mut profiler, &config.dataset);
        let train_size = config.train_size.min(dataset.len().saturating_sub(1));
        let split = dataset.split(train_size, derive_seed(config.seed, 2));
        KernelContext { dataset, split }
    }
}

/// Executes one work unit: builds the unit's profiler, learner and surrogate
/// from seeds derived deterministically from the campaign seed and the
/// repetition number, and runs Algorithm 1.
///
/// The derivation matches the pre-runner `compare_plans` exactly (repetition
/// seeds shared across plans, models and kernels), so paired comparisons
/// across those axes see identical candidate streams and measurement noise.
///
/// # Errors
///
/// Propagates learner errors (for example inconsistent configurations).
pub fn execute_unit(spec: &CampaignSpec, ctx: &KernelContext, key: UnitKey) -> Result<LearnerRun> {
    execute_unit_capturing(spec, ctx, key).map(|(run, _)| run)
}

/// [`execute_unit`] variant that also hands back the trained surrogate —
/// the warm-store harvest path, where the model itself (not just the run
/// statistics) is the artifact of interest.
///
/// # Errors
///
/// Propagates learner errors (for example inconsistent configurations).
pub fn execute_unit_capturing(
    spec: &CampaignSpec,
    ctx: &KernelContext,
    key: UnitKey,
) -> Result<(
    LearnerRun,
    Box<dyn alic_model::traits::ActiveSurrogate + Send>,
)> {
    let unit = spec.index_of(key);
    // Chaos sites for unit execution: a transient whole-unit evaluator
    // error, and a mid-unit panic. Both are inert without an installed
    // fault plane; both heal by re-execution (units are deterministic).
    crate::fault::evaluator_fault(unit)?;
    crate::fault::maybe_unit_panic(unit);
    let config = &spec.base;
    let seed = derive_seed(config.seed, 1000 + key.repetition);
    let mut profiler = crate::fault::ChaosProfiler::new(SimulatedProfiler::new(
        spec.kernels[key.kernel].clone(),
        derive_seed(seed, 3),
    ));
    // Every plan shares `config.learner.initial_observations` for its seed
    // examples, so all plans start from equally accurate seed data.
    let learner_config = LearnerConfig {
        plan: config.plans[key.plan],
        seed: derive_seed(seed, 4),
        ..config.learner
    };
    let mut model = spec.models[key.model].build(derive_seed(seed, 5));
    let mut learner = ActiveLearner::new(learner_config, &mut profiler);
    let run = learner.run(model.as_mut(), &ctx.dataset, &ctx.split)?;
    Ok((run, model))
}

/// Order-preserving work-stealing parallel map — the executor primitive
/// beneath [`execute_units`], exposed so experiment stages with their own
/// unit shape (for example Table 2's per-kernel noise rows) run on the same
/// pool. Results are written back by index, so the output is independent of
/// the thread count and scheduling order.
pub fn map_units<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync + Send,
{
    items.par_iter().map(f).collect()
}

/// Executes the given unit indices on the work-stealing pool, invoking
/// `checkpoint` for every completed unit (the on-disk ledger passes
/// [`CampaignLedger::record`]; in-memory callers pass a no-op).
///
/// Kernel contexts (dataset + split) are prepared once per distinct kernel
/// appearing in `indices`, in parallel, before any unit runs.
///
/// # Errors
///
/// Returns the first unit execution or checkpoint error.
pub fn execute_units<F>(
    spec: &CampaignSpec,
    indices: &[usize],
    checkpoint: &F,
) -> Result<Vec<UnitRecord>>
where
    F: Fn(&UnitRecord) -> Result<()> + Sync,
{
    let contexts = UnitContexts::prepare(spec, indices)?;
    indices
        .par_iter()
        .map(|&index| {
            let key = spec.unit(index);
            let run = execute_unit(spec, contexts.for_kernel(key.kernel), key)?;
            let record = make_record(spec, index, key, run);
            checkpoint(&record)?;
            Ok(record)
        })
        .collect()
}

/// The per-kernel contexts shared by every unit of one executor call.
struct UnitContexts {
    kernel_ids: Vec<usize>,
    contexts: Vec<KernelContext>,
}

impl UnitContexts {
    fn prepare(spec: &CampaignSpec, indices: &[usize]) -> Result<Self> {
        spec.validate()?;
        let count = spec.unit_count();
        if let Some(&bad) = indices.iter().find(|&&i| i >= count) {
            return Err(CoreError::InvalidConfig(format!(
                "unit index {bad} out of range (campaign has {count} units)"
            )));
        }
        let mut kernel_ids: Vec<usize> = indices.iter().map(|&i| spec.unit(i).kernel).collect();
        kernel_ids.sort_unstable();
        kernel_ids.dedup();
        let contexts: Vec<KernelContext> = map_units(&kernel_ids, |&k| {
            KernelContext::prepare(&spec.kernels[k], &spec.base)
        });
        Ok(UnitContexts {
            kernel_ids,
            contexts,
        })
    }

    fn for_kernel(&self, kernel: usize) -> &KernelContext {
        let slot = self
            .kernel_ids
            .binary_search(&kernel)
            .expect("context prepared for every kernel in the unit set");
        &self.contexts[slot]
    }
}

fn make_record(spec: &CampaignSpec, index: usize, key: UnitKey, run: LearnerRun) -> UnitRecord {
    UnitRecord {
        index,
        kernel: spec.kernels[key.kernel].name().to_string(),
        model: spec.models[key.model].name().to_string(),
        plan: spec.base.plans[key.plan],
        repetition: key.repetition,
        run,
    }
}

/// One work unit the resilient executor could not complete, after bounded
/// re-execution. Recorded in [`CampaignReport::failures`] instead of killing
/// the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitFailure {
    /// Linear unit index within the campaign.
    pub index: usize,
    /// Kernel name of the failed unit.
    pub kernel: String,
    /// Model family name of the failed unit.
    pub model: String,
    /// Human-readable description of the last error (or panic payload).
    pub error: String,
    /// How many execution attempts were made.
    pub attempts: usize,
}

/// What a resilient execution pass produced: the completed records plus the
/// units that kept failing.
#[derive(Debug)]
pub struct ExecutionOutcome {
    /// Successfully completed (and checkpointed) unit records.
    pub records: Vec<UnitRecord>,
    /// Units that failed every attempt, in index order.
    pub failures: Vec<UnitFailure>,
}

/// Execution attempts per unit within one resilient pass (the first run plus
/// bounded re-execution). Transient faults — injected chaos, a flaky
/// evaluator — heal within this budget; deterministic errors fail fast into
/// a [`UnitFailure`].
pub const UNIT_ATTEMPTS: usize = 3;

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Panic-isolated, failure-tolerant variant of [`execute_units`]: every unit
/// runs inside `catch_unwind`, so one panicking unit (or a transient
/// evaluator/checkpoint error) becomes a [`UnitFailure`] after
/// [`UNIT_ATTEMPTS`] bounded re-executions instead of poisoning the whole
/// campaign. Completed units are checkpointed exactly as in
/// [`execute_units`].
///
/// # Errors
///
/// Returns an error only for an invalid campaign or out-of-range indices;
/// unit-level problems are reported in the outcome, never as an `Err`.
pub fn execute_units_resilient<F>(
    spec: &CampaignSpec,
    indices: &[usize],
    checkpoint: &F,
) -> Result<ExecutionOutcome>
where
    F: Fn(&UnitRecord) -> Result<()> + Sync,
{
    let contexts = UnitContexts::prepare(spec, indices)?;
    let results: Vec<std::result::Result<UnitRecord, UnitFailure>> = indices
        .par_iter()
        .map(|&index| {
            let key = spec.unit(index);
            let mut last_error = String::new();
            for _ in 0..UNIT_ATTEMPTS {
                let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || -> Result<UnitRecord> {
                        let run = execute_unit(spec, contexts.for_kernel(key.kernel), key)?;
                        let record = make_record(spec, index, key, run);
                        checkpoint(&record)?;
                        Ok(record)
                    },
                ));
                match attempt {
                    Ok(Ok(record)) => return Ok(record),
                    Ok(Err(e)) => last_error = e.to_string(),
                    Err(payload) => last_error = format!("panic: {}", panic_message(&*payload)),
                }
            }
            Err(UnitFailure {
                index,
                kernel: spec.kernels[key.kernel].name().to_string(),
                model: spec.models[key.model].name().to_string(),
                error: last_error,
                attempts: UNIT_ATTEMPTS,
            })
        })
        .collect();

    let mut outcome = ExecutionOutcome {
        records: Vec::with_capacity(results.len()),
        failures: Vec::new(),
    };
    for result in results {
        match result {
            Ok(record) => outcome.records.push(record),
            Err(failure) => outcome.failures.push(failure),
        }
    }
    outcome.failures.sort_by_key(|f| f.index);
    Ok(outcome)
}

/// Bounded passes of the self-healing campaign loop ([`heal_campaign`]).
pub const HEAL_PASSES: usize = 4;

/// What [`heal_campaign`] did: how many passes ran, how many corrupt
/// records were quarantined along the way, and which units still fail.
#[derive(Debug)]
pub struct HealOutcome {
    /// Execution passes performed (at least 1).
    pub passes: usize,
    /// Total unit records quarantined to `*.corrupt` across all passes.
    pub quarantined: usize,
    /// Stale `*.tmp` files swept across all passes.
    pub swept_tmp: usize,
    /// Units that still fail after every pass (empty = fully healed).
    pub failures: Vec<UnitFailure>,
}

impl HealOutcome {
    /// True when every requested unit is complete and verified on disk.
    pub fn is_healed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The self-healing campaign driver: executes `indices` against `ledger`
/// with the panic-isolated executor, then alternates recovery scans
/// (quarantining corrupt on-disk records) with re-execution of whatever
/// failed or was quarantined, for up to [`HEAL_PASSES`] passes.
///
/// Against a *bounded* adversary (transient faults, or the chaos plane with
/// per-site budgets) this converges: every pass re-runs only the units that
/// are not yet complete-and-valid on disk, and deterministic units always
/// produce the same bytes, so the healed ledger is indistinguishable from a
/// fault-free run's.
///
/// # Errors
///
/// Returns configuration and unrecoverable ledger I/O errors; unit failures
/// and corruption are healed or reported in the outcome.
pub fn heal_campaign(
    spec: &CampaignSpec,
    ledger: &CampaignLedger,
    indices: &[usize],
) -> Result<HealOutcome> {
    let checkpoint = |record: &UnitRecord| ledger.record(record);
    let mut outcome = HealOutcome {
        passes: 0,
        quarantined: 0,
        swept_tmp: 0,
        failures: Vec::new(),
    };
    let mut to_run: Vec<usize> = indices.to_vec();
    for _ in 0..HEAL_PASSES {
        outcome.passes += 1;
        let pass = execute_units_resilient(spec, &to_run, &checkpoint)?;
        // Verify what actually landed on disk: a torn unit write reports
        // success but leaves a record the recovery scan rejects.
        let recovery = ledger.recover(spec)?;
        outcome.quarantined += recovery.quarantined.len();
        outcome.swept_tmp += recovery.swept_tmp;
        outcome.failures = pass.failures;
        let mut redo: Vec<usize> = outcome.failures.iter().map(|f| f.index).collect();
        redo.extend(recovery.quarantined);
        redo.sort_unstable();
        redo.dedup();
        if redo.is_empty() {
            return Ok(outcome);
        }
        to_run = redo;
    }
    // Whatever is still broken after the last pass is reported as failed,
    // including records the final recovery scan quarantined.
    for &index in &to_run {
        if !outcome.failures.iter().any(|f| f.index == index) {
            let key = spec.unit(index);
            outcome.failures.push(UnitFailure {
                index,
                kernel: spec.kernels[key.kernel].name().to_string(),
                model: spec.models[key.model].name().to_string(),
                error: "unit record remained corrupt after healing passes".to_string(),
                attempts: UNIT_ATTEMPTS,
            });
        }
    }
    outcome.failures.sort_by_key(|f| f.index);
    Ok(outcome)
}

/// One `(model, kernel)` cell of a campaign report.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignEntry {
    /// Model family name.
    pub model: String,
    /// Kernel name.
    pub kernel: String,
    /// The assembled plan-comparison outcome for this cell.
    pub outcome: ComparisonOutcome,
}

/// The merged result of a campaign: one [`ComparisonOutcome`] per
/// `(kernel, model)` cell, in unit order (kernel-major, model inner).
///
/// Serializes canonically through [`CampaignReport::to_json_string`]; two
/// reports assembled from the same unit results — regardless of sharding,
/// kills, resumes or execution order — produce byte-identical JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Kernel names, in campaign order.
    pub kernels: Vec<String>,
    /// Model family names, in campaign order.
    pub models: Vec<String>,
    /// The compared sampling plans.
    pub plans: Vec<SamplingPlan>,
    /// Repetitions per cell.
    pub repetitions: usize,
    /// The campaign base seed.
    pub seed: u64,
    /// One entry per `(kernel, model)` cell, kernel-major.
    pub entries: Vec<CampaignEntry>,
    /// Work units that could not be completed even after bounded healing
    /// (empty for a fault-free campaign; serialized only when non-empty, so
    /// clean reports are byte-identical to pre-resilience ones).
    pub failures: Vec<UnitFailure>,
}

impl CampaignReport {
    /// The outcomes of one model family, in kernel order.
    pub fn outcomes_for_model(&self, model: &str) -> Vec<&ComparisonOutcome> {
        self.entries
            .iter()
            .filter(|e| e.model == model)
            .map(|e| &e.outcome)
            .collect()
    }

    /// Serializes the report as canonical JSON (see [`codec`]).
    ///
    /// # Errors
    ///
    /// Returns an error when the report contains non-finite numbers.
    pub fn to_json_string(&self) -> Result<String> {
        codec::report_to_json(self)?
            .to_json_string()
            .map_err(CoreError::from)
    }

    /// Parses a report serialized by [`CampaignReport::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns an error on malformed input.
    pub fn from_json_str(text: &str) -> Result<Self> {
        codec::report_from_json(&alic_data::JsonValue::parse(text)?)
    }
}

/// The pure merge step: validates that `records` cover the campaign's full
/// unit matrix and folds them — grouped per `(kernel, model)` cell, plans
/// and repetitions in campaign order — into averaged curves and Table 1
/// statistics via [`assemble_outcome`](crate::experiment::assemble_outcome).
///
/// Records may arrive in any order (they are sorted by unit index), so
/// shards can be merged from any interleaving.
///
/// # Errors
///
/// Returns [`CoreError::Campaign`] when units are missing, duplicated, or
/// inconsistent with the campaign specification.
pub fn assemble_report(spec: &CampaignSpec, records: Vec<UnitRecord>) -> Result<CampaignReport> {
    assemble_report_with_failures(spec, records, Vec::new())
}

/// [`assemble_report`] for a campaign that healed everything it could but
/// still has permanently failed units: `records` must cover exactly the units
/// *not* listed in `failures`, and every `(cell, plan)` group must keep at
/// least one surviving repetition — a plan with zero runs has no learning
/// curve and the cell's Table 1 statistics would silently degenerate.
///
/// Surviving cells are assembled from their remaining repetitions via
/// [`assemble_outcome_grouped`](crate::experiment::assemble_outcome_grouped);
/// with an empty failure list this is exactly [`assemble_report`].
///
/// # Errors
///
/// Returns [`CoreError::Campaign`] when records and failures together do not
/// cover the unit matrix, records are duplicated or inconsistent with the
/// specification, or a `(cell, plan)` group lost all its repetitions.
pub fn assemble_report_with_failures(
    spec: &CampaignSpec,
    records: Vec<UnitRecord>,
    failures: Vec<UnitFailure>,
) -> Result<CampaignReport> {
    spec.validate()?;
    let expected = spec.unit_count();
    let mut failed = vec![false; expected];
    for failure in &failures {
        if failure.index >= expected {
            return Err(CoreError::Campaign(format!(
                "failed unit index {} out of range (campaign has {expected} units)",
                failure.index
            )));
        }
        failed[failure.index] = true;
    }
    let failed_count = failed.iter().filter(|&&f| f).count();
    let mut records = records;
    records.sort_by_key(|r| r.index);
    if records.len() + failed_count != expected {
        return Err(CoreError::Campaign(format!(
            "campaign is incomplete: {} of {expected} unit records present \
             ({failed_count} failed)",
            records.len()
        )));
    }
    let mut surviving = (0..expected).filter(|&i| !failed[i]);
    for record in &records {
        let i = surviving
            .next()
            .expect("record and failure counts partition the unit matrix");
        if record.index != i {
            return Err(CoreError::Campaign(format!(
                "unit records are inconsistent: expected index {i}, found {}",
                record.index
            )));
        }
        let key = spec.unit(i);
        let kernel = spec.kernels[key.kernel].name();
        let model = spec.models[key.model].name();
        if record.kernel != kernel || record.model != model {
            return Err(CoreError::Campaign(format!(
                "unit {i} belongs to ({}, {}) but the campaign expects ({kernel}, {model}); \
                 the ledger was probably written by a differently configured campaign",
                record.kernel, record.model
            )));
        }
    }

    // Group the surviving runs per (cell, plan). The unit layout is
    // kernel-major with plan then repetition fastest, so walking the full
    // index space in order while skipping failed indices lands every run in
    // its group.
    let mut runs = records.into_iter().map(|r| r.run);
    let mut entries = Vec::with_capacity(spec.kernels.len() * spec.models.len());
    let mut index = 0;
    for kernel in &spec.kernels {
        for model in &spec.models {
            let mut plan_runs: Vec<(SamplingPlan, Vec<LearnerRun>)> =
                Vec::with_capacity(spec.base.plans.len());
            for &plan in &spec.base.plans {
                let mut group = Vec::with_capacity(spec.base.repetitions);
                for _ in 0..spec.base.repetitions {
                    if !failed[index] {
                        group.push(runs.next().expect("one surviving run per non-failed unit"));
                    }
                    index += 1;
                }
                if group.is_empty() {
                    return Err(CoreError::Campaign(format!(
                        "cell ({}, {}) lost every repetition of plan {plan} to failed \
                         units; the campaign cannot be assembled",
                        kernel.name(),
                        model.name()
                    )));
                }
                plan_runs.push((plan, group));
            }
            entries.push(CampaignEntry {
                model: model.name().to_string(),
                kernel: kernel.name().to_string(),
                outcome: assemble_outcome_grouped(kernel.name(), &spec.base, plan_runs),
            });
        }
    }

    let mut failures = failures;
    failures.sort_by_key(|f| f.index);
    Ok(CampaignReport {
        kernels: spec.kernels.iter().map(|k| k.name().to_string()).collect(),
        models: spec.models.iter().map(|m| m.name().to_string()).collect(),
        plans: spec.base.plans.clone(),
        repetitions: spec.base.repetitions,
        seed: spec.base.seed,
        entries,
        failures,
    })
}

/// Runs a whole campaign in memory — every unit on the work-stealing pool,
/// no ledger — and merges the results. This is the path the classic
/// experiment entry points ([`compare_plans`](crate::experiment::compare_plans),
/// `table1::run_for_kernels_with`) go through.
///
/// # Errors
///
/// Propagates unit execution and merge errors.
pub fn run_campaign(spec: &CampaignSpec) -> Result<CampaignReport> {
    let indices: Vec<usize> = (0..spec.unit_count()).collect();
    let records = execute_units(spec, &indices, &|_| Ok(()))?;
    assemble_report(spec, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alic_data::dataset::DatasetConfig;
    use alic_sim::noise::NoiseProfile;
    use alic_sim::space::ParamSpec;

    pub(crate) fn toy_kernel(name: &str, surface_seed: u64) -> KernelSpec {
        KernelSpec::new(
            name,
            vec![ParamSpec::unroll("u1"), ParamSpec::unroll("u2")],
            1.0,
            0.5,
            NoiseProfile::moderate(),
        )
        .unwrap()
        .with_surface_seed(surface_seed)
    }

    pub(crate) fn tiny_base() -> ComparisonConfig {
        ComparisonConfig {
            learner: LearnerConfig {
                initial_examples: 3,
                initial_observations: 4,
                candidates_per_iteration: 12,
                max_iterations: 10,
                evaluate_every: 5,
                ..Default::default()
            },
            plans: vec![
                SamplingPlan::fixed(4),
                SamplingPlan::one_observation(),
                SamplingPlan::sequential(4),
            ],
            repetitions: 2,
            model: SurrogateSpec::dynatree(20),
            dataset: DatasetConfig {
                configurations: 150,
                observations: 4,
                seed: 0,
            },
            train_size: 110,
            grid_resolution: 30,
            seed: 5,
        }
    }

    pub(crate) fn tiny_campaign() -> CampaignSpec {
        CampaignSpec::new(
            vec![toy_kernel("alpha", 3), toy_kernel("beta", 9)],
            vec![SurrogateSpec::dynatree(20), SurrogateSpec::Mean],
            tiny_base(),
        )
    }

    #[test]
    fn unit_indexing_round_trips() {
        let spec = tiny_campaign();
        assert_eq!(spec.unit_count(), 2 * 2 * 3 * 2);
        for index in 0..spec.unit_count() {
            let key = spec.unit(index);
            assert_eq!(spec.index_of(key), index);
            assert!(key.kernel < 2 && key.model < 2 && key.plan < 3 && key.repetition < 2);
        }
        // Kernel-major, repetition fastest.
        assert_eq!(
            spec.unit(0),
            UnitKey {
                kernel: 0,
                model: 0,
                plan: 0,
                repetition: 0
            }
        );
        assert_eq!(spec.unit(1).repetition, 1);
        assert_eq!(spec.unit(spec.unit_count() - 1).kernel, 1);
    }

    #[test]
    fn shards_partition_the_unit_range() {
        let spec = tiny_campaign();
        let n = spec.unit_count();
        for of in 1..=5 {
            let mut all = Vec::new();
            for shard in 1..=of {
                all.extend(spec.shard(shard, of).unwrap());
            }
            assert_eq!(all, (0..n).collect::<Vec<_>>(), "shards 1..={of}");
        }
        assert!(spec.shard(0, 3).is_err());
        assert!(spec.shard(4, 3).is_err());
        assert!(spec.shard(1, 0).is_err());
    }

    #[test]
    fn fingerprint_tracks_the_configuration() {
        let spec = tiny_campaign();
        assert_eq!(spec.fingerprint(), tiny_campaign().fingerprint());
        let mut other = tiny_campaign();
        other.base.seed += 1;
        assert_ne!(spec.fingerprint(), other.fingerprint());
        let mut fewer = tiny_campaign();
        fewer.models.pop();
        assert_ne!(spec.fingerprint(), fewer.fingerprint());
        // The base model field is documented as ignored (the models axis is
        // what units are built from), so it must not affect the fingerprint
        // — otherwise a reconstructed campaign could not resume its ledger.
        let mut ignored_model = tiny_campaign();
        ignored_model.base.model = SurrogateSpec::Mean;
        assert_eq!(spec.fingerprint(), ignored_model.fingerprint());
    }

    #[test]
    fn empty_axes_are_rejected() {
        let mut spec = tiny_campaign();
        spec.kernels.clear();
        assert!(matches!(
            run_campaign(&spec),
            Err(CoreError::InvalidConfig(_))
        ));
        let mut spec = tiny_campaign();
        spec.base.repetitions = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn out_of_range_unit_indices_are_rejected() {
        let spec = tiny_campaign();
        let bad = vec![spec.unit_count()];
        assert!(matches!(
            execute_units(&spec, &bad, &|_| Ok(())),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn campaign_report_matches_per_cell_compare_plans() {
        // The campaign path and the classic single-cell path must agree
        // exactly: compare_plans is itself a single-cell campaign.
        let spec = tiny_campaign();
        let report = run_campaign(&spec).unwrap();
        assert_eq!(report.entries.len(), 4);
        for (k, kernel) in spec.kernels.iter().enumerate() {
            for (m, model) in spec.models.iter().enumerate() {
                let mut config = spec.base.clone();
                config.model = *model;
                let direct = crate::experiment::compare_plans(kernel, &config).unwrap();
                let entry = &report.entries[k * spec.models.len() + m];
                assert_eq!(entry.kernel, kernel.name());
                assert_eq!(entry.model, model.name());
                assert_eq!(entry.outcome, direct, "cell ({k}, {m})");
            }
        }
    }

    #[test]
    fn execution_order_and_sharding_do_not_change_the_report() {
        let spec = tiny_campaign();
        let baseline = run_campaign(&spec).unwrap();

        // Execute the units in reverse order, in two calls, and merge.
        let mut indices: Vec<usize> = (0..spec.unit_count()).rev().collect();
        let (first, second) = indices.split_at_mut(5);
        let mut records = execute_units(&spec, first, &|_| Ok(())).unwrap();
        records.extend(execute_units(&spec, second, &|_| Ok(())).unwrap());
        let merged = assemble_report(&spec, records).unwrap();

        assert_eq!(merged, baseline);
        assert_eq!(
            merged.to_json_string().unwrap(),
            baseline.to_json_string().unwrap()
        );
    }

    #[test]
    fn assemble_report_rejects_missing_and_foreign_units() {
        let spec = tiny_campaign();
        let indices: Vec<usize> = (0..spec.unit_count()).collect();
        let records = execute_units(&spec, &indices, &|_| Ok(())).unwrap();

        let mut missing = records.clone();
        missing.pop();
        assert!(matches!(
            assemble_report(&spec, missing),
            Err(CoreError::Campaign(_))
        ));

        let mut foreign = records;
        foreign[0].kernel = "someone-else".to_string();
        assert!(matches!(
            assemble_report(&spec, foreign),
            Err(CoreError::Campaign(_))
        ));
    }

    #[test]
    fn resilient_executor_without_faults_matches_the_plain_executor() {
        let spec = tiny_campaign();
        let indices: Vec<usize> = (0..spec.unit_count()).collect();
        let plain = execute_units(&spec, &indices, &|_| Ok(())).unwrap();
        let outcome = execute_units_resilient(&spec, &indices, &|_| Ok(())).unwrap();
        assert!(outcome.failures.is_empty());
        assert_eq!(outcome.records, plain);
        assert!(matches!(
            execute_units_resilient(&spec, &[spec.unit_count()], &|_| Ok(())),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn resilient_executor_isolates_panics_and_retries_transient_errors() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let spec = tiny_campaign();
        let indices: Vec<usize> = (0..8).collect();
        let transient_denials = AtomicUsize::new(2);
        let checkpoint = |record: &UnitRecord| match record.index {
            3 => panic!("chaos monkey in the checkpoint"),
            5 => Err(CoreError::Evaluator("persistently flaky".to_string())),
            7 => {
                // Fails twice, then succeeds: must heal within UNIT_ATTEMPTS.
                if transient_denials
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    Err(CoreError::Evaluator("transient".to_string()))
                } else {
                    Ok(())
                }
            }
            _ => Ok(()),
        };
        let outcome = execute_units_resilient(&spec, &indices, &checkpoint).unwrap();
        let failed: Vec<usize> = outcome.failures.iter().map(|f| f.index).collect();
        assert_eq!(failed, vec![3, 5]);
        for failure in &outcome.failures {
            assert_eq!(failure.attempts, UNIT_ATTEMPTS);
            assert_eq!(failure.kernel, "alpha");
        }
        assert!(outcome.failures[0].error.contains("panic"));
        assert!(outcome.failures[1].error.contains("persistently flaky"));
        let completed: Vec<usize> = outcome.records.iter().map(|r| r.index).collect();
        assert_eq!(completed, vec![0, 1, 2, 4, 6, 7]);
    }

    #[test]
    fn assemble_report_with_failures_uses_surviving_repetitions() {
        let spec = tiny_campaign();
        let indices: Vec<usize> = (0..spec.unit_count()).collect();
        let records = execute_units(&spec, &indices, &|_| Ok(())).unwrap();
        let baseline = assemble_report(&spec, records.clone()).unwrap();

        // Fail one repetition of cell (alpha, dynatree), plan 0; the group's
        // surviving repetition must carry the cell.
        let failure = UnitFailure {
            index: 1,
            kernel: "alpha".to_string(),
            model: spec.models[0].name().to_string(),
            error: "boom".to_string(),
            attempts: UNIT_ATTEMPTS,
        };
        let survivors: Vec<UnitRecord> = records.iter().filter(|r| r.index != 1).cloned().collect();
        let report =
            assemble_report_with_failures(&spec, survivors, vec![failure.clone()]).unwrap();
        assert_eq!(report.failures, vec![failure.clone()]);
        assert_eq!(report.entries.len(), 4);
        assert_eq!(report.entries[0].outcome.plans[0].runs.len(), 1);
        assert_eq!(report.entries[0].outcome.plans[1].runs.len(), 2);
        // Unaffected cells are bit-identical to the fault-free merge.
        assert_eq!(report.entries[1..], baseline.entries[1..]);

        // The failures field round-trips, and clean reports omit it (their
        // bytes must match pre-resilience reports exactly).
        let json = report.to_json_string().unwrap();
        assert!(json.contains("\"failures\""));
        assert_eq!(CampaignReport::from_json_str(&json).unwrap(), report);
        assert!(!baseline.to_json_string().unwrap().contains("\"failures\""));

        // Losing every repetition of a (cell, plan) group is unrecoverable.
        let both = vec![
            UnitFailure {
                index: 0,
                ..failure.clone()
            },
            failure,
        ];
        let neither: Vec<UnitRecord> = records.into_iter().filter(|r| r.index > 1).collect();
        assert!(matches!(
            assemble_report_with_failures(&spec, neither, both),
            Err(CoreError::Campaign(_))
        ));
    }

    #[test]
    fn heal_campaign_reexecutes_quarantined_records_to_a_clean_ledger() {
        let dir = std::env::temp_dir().join(format!("alic-campaign-heal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_campaign();
        let ledger = CampaignLedger::open(&dir, &spec).unwrap();
        let indices: Vec<usize> = (0..spec.unit_count()).collect();

        let outcome = heal_campaign(&spec, &ledger, &indices).unwrap();
        assert!(outcome.is_healed());
        assert_eq!(outcome.passes, 1);
        let baseline = assemble_report(&spec, ledger.load_all(&spec).unwrap()).unwrap();

        // Damage two checkpointed records; a heal pass with an *empty* work
        // list must still find them, quarantine them and re-execute.
        for i in [2usize, 9] {
            let path = ledger.dir().join("units").join(format!("unit-{i:06}.json"));
            std::fs::write(&path, "{ torn mid-write").unwrap();
        }
        let outcome = heal_campaign(&spec, &ledger, &[]).unwrap();
        assert!(outcome.is_healed());
        assert_eq!(outcome.passes, 2);
        assert_eq!(outcome.quarantined, 2);
        for i in [2usize, 9] {
            let corrupt = ledger
                .dir()
                .join("units")
                .join(format!("unit-{i:06}.json.corrupt"));
            assert!(corrupt.exists(), "quarantined evidence must be preserved");
        }

        // The healed ledger merges to the byte-identical fault-free report.
        let healed = assemble_report(&spec, ledger.load_all(&spec).unwrap()).unwrap();
        assert_eq!(
            healed.to_json_string().unwrap(),
            baseline.to_json_string().unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn map_units_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = map_units(&items, |&i| i * 2);
        assert_eq!(doubled, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }
}
