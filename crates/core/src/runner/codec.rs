//! Hand-rolled JSON codecs for campaign records and reports.
//!
//! The vendored `serde` is a no-op marker, so every type that crosses the
//! campaign ledger's process boundary is encoded explicitly through
//! [`JsonValue`] (the canonical writer/parser of `alic-data::io`). Two
//! properties matter here:
//!
//! * **exactness** — floats are written in Rust's shortest round-trip
//!   representation, so decode(encode(x)) is bit-identical to `x`; a report
//!   merged from on-disk unit records equals the in-memory report byte for
//!   byte;
//! * **canonical output** — field order is fixed and no whitespace is
//!   emitted, so equal values serialize to identical bytes (the
//!   shard/resume/merge equality checks compare raw strings).
//!
//! Integer counters are stored as JSON numbers and are exact up to 2^53 —
//! far beyond any realistic campaign (2^53 profiler runs at a millisecond
//! each is ~285,000 machine-years). Both directions enforce the bound:
//! encoding a larger value (a saturated cost-ledger counter, a seed above
//! 2^53) is an error rather than a silent rounding that decoding would then
//! reject.

use alic_data::io::JsonValue;
use alic_stats::summary::OnlineStats;

use crate::curve::{AveragedCurve, CurvePoint, LearningCurve};
use crate::experiment::{ComparisonOutcome, PlanResult};
use crate::learner::{ExampleRecord, LearnerRun};
use crate::ledger::CostLedger;
use crate::plan::SamplingPlan;
use crate::runner::{CampaignEntry, CampaignReport, UnitFailure, UnitRecord};
use crate::{CoreError, Result};

/// Schema tag of one on-disk unit record.
pub const UNIT_SCHEMA: &str = "alic-campaign-unit/v1";
/// Schema tag of a merged campaign report.
pub const REPORT_SCHEMA: &str = "alic-campaign-report/v1";

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(n: f64) -> JsonValue {
    JsonValue::Number(n)
}

/// Encodes an integer counter, rejecting values that `f64` cannot hold
/// exactly (encoded output must always decode back to the same value; the
/// bound is the decoder's own [`JsonValue::MAX_EXACT_INTEGER`]).
pub(crate) fn int(n: u64) -> Result<JsonValue> {
    if n > JsonValue::MAX_EXACT_INTEGER {
        return Err(bad(format!(
            "integer {n} exceeds 2^53 and cannot be stored exactly as a JSON number"
        )));
    }
    Ok(JsonValue::Number(n as f64))
}

fn string(s: &str) -> JsonValue {
    JsonValue::String(s.to_string())
}

fn f64_array(values: &[f64]) -> JsonValue {
    JsonValue::Array(values.iter().map(|&v| num(v)).collect())
}

fn parse_f64_array(value: &JsonValue) -> Result<Vec<f64>> {
    value
        .as_array()?
        .iter()
        .map(|v| v.as_f64().map_err(CoreError::from))
        .collect()
}

fn bad(message: impl Into<String>) -> CoreError {
    CoreError::Campaign(message.into())
}

/// Looks up an *optional* object field ([`JsonValue::field`] errors on
/// missing keys). Used for fields that are omitted from canonical output
/// when empty, so that fault-free reports stay byte-identical to the ones
/// written before the field existed.
fn optional_field<'a>(value: &'a JsonValue, name: &str) -> Option<&'a JsonValue> {
    match value {
        JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

// --- Sampling plans. --------------------------------------------------------

/// Encodes a sampling plan.
///
/// # Errors
///
/// Returns an error for observation counts above 2^53.
pub fn plan_to_json(plan: &SamplingPlan) -> Result<JsonValue> {
    Ok(match plan {
        SamplingPlan::Fixed { observations } => obj(vec![
            ("kind", string("fixed")),
            ("observations", int(*observations as u64)?),
        ]),
        SamplingPlan::Sequential { max_observations } => obj(vec![
            ("kind", string("sequential")),
            ("max_observations", int(*max_observations as u64)?),
        ]),
    })
}

/// Decodes a sampling plan.
///
/// # Errors
///
/// Returns an error for unknown kinds or zero observation counts.
pub fn plan_from_json(value: &JsonValue) -> Result<SamplingPlan> {
    match value.field("kind")?.as_str()? {
        "fixed" => {
            let observations = value.field("observations")?.as_usize()?;
            if observations == 0 {
                return Err(bad("fixed plan with zero observations"));
            }
            Ok(SamplingPlan::Fixed { observations })
        }
        "sequential" => {
            let max_observations = value.field("max_observations")?.as_usize()?;
            if max_observations == 0 {
                return Err(bad("sequential plan with a zero observation cap"));
            }
            Ok(SamplingPlan::Sequential { max_observations })
        }
        other => Err(bad(format!("unknown sampling-plan kind '{other}'"))),
    }
}

// --- Online statistics and cost ledgers. ------------------------------------

fn stats_to_json(stats: &OnlineStats) -> Result<JsonValue> {
    if stats.count() == 0 {
        // min/max are ±infinity on an empty accumulator; JSON cannot hold
        // them, and count alone reconstructs the state.
        return Ok(obj(vec![("count", int(0)?)]));
    }
    Ok(obj(vec![
        ("count", int(stats.count() as u64)?),
        ("mean", num(stats.mean())),
        ("m2", num(stats.m2())),
        ("min", num(stats.min())),
        ("max", num(stats.max())),
    ]))
}

fn stats_from_json(value: &JsonValue) -> Result<OnlineStats> {
    let count = value.field("count")?.as_usize()?;
    if count == 0 {
        return Ok(OnlineStats::new());
    }
    Ok(OnlineStats::from_parts(
        count,
        value.field("mean")?.as_f64()?,
        value.field("m2")?.as_f64()?,
        value.field("min")?.as_f64()?,
        value.field("max")?.as_f64()?,
    ))
}

/// Encodes a cost ledger.
///
/// # Errors
///
/// Returns an error when a (saturating) counter exceeds 2^53 and could not
/// be decoded back exactly.
pub fn cost_ledger_to_json(ledger: &CostLedger) -> Result<JsonValue> {
    let mut fields = vec![
        ("run_seconds", num(ledger.run_seconds())),
        ("compile_seconds", num(ledger.compile_seconds())),
        ("runs", int(ledger.runs())?),
        ("compilations", int(ledger.compilations())?),
    ];
    // Emitted only when measurements were actually quarantined, so ledgers
    // from clean runs keep their pre-robustness byte encoding.
    if ledger.quarantined() > 0 {
        fields.push(("quarantined", int(ledger.quarantined())?));
    }
    Ok(obj(fields))
}

/// Decodes a cost ledger.
///
/// # Errors
///
/// Returns an error on malformed input.
pub fn cost_ledger_from_json(value: &JsonValue) -> Result<CostLedger> {
    let quarantined = match optional_field(value, "quarantined") {
        Some(v) => v.as_u64()?,
        None => 0,
    };
    Ok(CostLedger::from_parts(
        value.field("run_seconds")?.as_f64()?,
        value.field("compile_seconds")?.as_f64()?,
        value.field("runs")?.as_u64()?,
        value.field("compilations")?.as_u64()?,
    )
    .with_quarantined(quarantined))
}

// --- Learning curves and runs. ----------------------------------------------

fn curve_point_to_json(point: &CurvePoint) -> Result<JsonValue> {
    Ok(obj(vec![
        ("iterations", int(point.iterations as u64)?),
        ("training_examples", int(point.training_examples as u64)?),
        ("observations", int(point.observations)?),
        ("cost_seconds", num(point.cost_seconds)),
        ("rmse", num(point.rmse)),
    ]))
}

fn curve_point_from_json(value: &JsonValue) -> Result<CurvePoint> {
    Ok(CurvePoint {
        iterations: value.field("iterations")?.as_usize()?,
        training_examples: value.field("training_examples")?.as_usize()?,
        observations: value.field("observations")?.as_u64()?,
        cost_seconds: value.field("cost_seconds")?.as_f64()?,
        rmse: value.field("rmse")?.as_f64()?,
    })
}

fn curve_to_json(curve: &LearningCurve) -> Result<JsonValue> {
    Ok(JsonValue::Array(
        curve
            .points()
            .iter()
            .map(curve_point_to_json)
            .collect::<Result<_>>()?,
    ))
}

fn curve_from_json(value: &JsonValue) -> Result<LearningCurve> {
    let points: Vec<CurvePoint> = value
        .as_array()?
        .iter()
        .map(curve_point_from_json)
        .collect::<Result<_>>()?;
    // `LearningCurve::push` panics on decreasing costs; reject hostile input
    // (including NaN costs, which are incomparable) as an error instead.
    if points.windows(2).any(|w| {
        !matches!(
            w[0].cost_seconds.partial_cmp(&w[1].cost_seconds),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        )
    }) {
        return Err(bad("learning-curve costs must be non-decreasing"));
    }
    Ok(points.into_iter().collect())
}

/// Encodes one learning run.
///
/// # Errors
///
/// Returns an error when a counter exceeds 2^53.
pub fn run_to_json(run: &LearnerRun) -> Result<JsonValue> {
    Ok(obj(vec![
        ("plan", plan_to_json(&run.plan)?),
        ("iterations", int(run.iterations as u64)?),
        ("curve", curve_to_json(&run.curve)?),
        ("ledger", cost_ledger_to_json(&run.ledger)?),
        (
            "visited",
            JsonValue::Array(
                run.visited
                    .iter()
                    .map(|record| {
                        Ok(obj(vec![
                            ("dataset_index", int(record.dataset_index as u64)?),
                            ("runtimes", stats_to_json(&record.runtimes)?),
                        ]))
                    })
                    .collect::<Result<_>>()?,
            ),
        ),
    ]))
}

/// Decodes one learning run.
///
/// # Errors
///
/// Returns an error on malformed input.
pub fn run_from_json(value: &JsonValue) -> Result<LearnerRun> {
    let visited: Vec<ExampleRecord> = value
        .field("visited")?
        .as_array()?
        .iter()
        .map(|record| {
            Ok(ExampleRecord {
                dataset_index: record.field("dataset_index")?.as_usize()?,
                runtimes: stats_from_json(record.field("runtimes")?)?,
            })
        })
        .collect::<Result<_>>()?;
    Ok(LearnerRun {
        plan: plan_from_json(value.field("plan")?)?,
        curve: curve_from_json(value.field("curve")?)?,
        ledger: cost_ledger_from_json(value.field("ledger")?)?,
        visited,
        iterations: value.field("iterations")?.as_usize()?,
    })
}

// --- Unit records. ----------------------------------------------------------

/// Encodes one unit record (the on-disk checkpoint format).
///
/// # Errors
///
/// Returns an error when a counter exceeds 2^53.
pub fn unit_record_to_json(record: &UnitRecord) -> Result<JsonValue> {
    Ok(obj(vec![
        ("schema", string(UNIT_SCHEMA)),
        ("index", int(record.index as u64)?),
        ("kernel", string(&record.kernel)),
        ("model", string(&record.model)),
        ("plan", plan_to_json(&record.plan)?),
        ("repetition", int(record.repetition)?),
        ("run", run_to_json(&record.run)?),
    ]))
}

/// Serializes one unit record to its canonical JSON string.
///
/// # Errors
///
/// Returns an error when the record contains non-finite numbers.
pub fn unit_record_to_json_string(record: &UnitRecord) -> Result<String> {
    unit_record_to_json(record)?
        .to_json_string()
        .map_err(CoreError::from)
}

/// Decodes one unit record.
///
/// # Errors
///
/// Returns an error on malformed input or a wrong schema tag.
pub fn unit_record_from_json(value: &JsonValue) -> Result<UnitRecord> {
    let schema = value.field("schema")?.as_str()?;
    if schema != UNIT_SCHEMA {
        return Err(bad(format!(
            "unexpected unit-record schema '{schema}' (expected '{UNIT_SCHEMA}')"
        )));
    }
    Ok(UnitRecord {
        index: value.field("index")?.as_usize()?,
        kernel: value.field("kernel")?.as_str()?.to_string(),
        model: value.field("model")?.as_str()?.to_string(),
        plan: plan_from_json(value.field("plan")?)?,
        repetition: value.field("repetition")?.as_u64()?,
        run: run_from_json(value.field("run")?)?,
    })
}

/// Parses one unit record from its canonical JSON string.
///
/// # Errors
///
/// Returns an error on malformed input.
pub fn unit_record_from_json_str(text: &str) -> Result<UnitRecord> {
    unit_record_from_json(&JsonValue::parse(text)?)
}

// --- Comparison outcomes and campaign reports. ------------------------------

fn averaged_to_json(averaged: &AveragedCurve) -> JsonValue {
    obj(vec![
        ("costs", f64_array(&averaged.costs)),
        ("mean_rmse", f64_array(&averaged.mean_rmse)),
    ])
}

fn json_array<T>(items: &[T], encode: impl Fn(&T) -> Result<JsonValue>) -> Result<JsonValue> {
    Ok(JsonValue::Array(
        items.iter().map(encode).collect::<Result<_>>()?,
    ))
}

fn averaged_from_json(value: &JsonValue) -> Result<AveragedCurve> {
    Ok(AveragedCurve {
        costs: parse_f64_array(value.field("costs")?)?,
        mean_rmse: parse_f64_array(value.field("mean_rmse")?)?,
    })
}

fn plan_result_to_json(result: &PlanResult) -> Result<JsonValue> {
    Ok(obj(vec![
        ("plan", plan_to_json(&result.plan)?),
        ("runs", json_array(&result.runs, run_to_json)?),
        ("averaged", averaged_to_json(&result.averaged)),
    ]))
}

fn plan_result_from_json(value: &JsonValue) -> Result<PlanResult> {
    Ok(PlanResult {
        plan: plan_from_json(value.field("plan")?)?,
        runs: value
            .field("runs")?
            .as_array()?
            .iter()
            .map(run_from_json)
            .collect::<Result<_>>()?,
        averaged: averaged_from_json(value.field("averaged")?)?,
    })
}

/// Encodes a plan-comparison outcome.
///
/// # Errors
///
/// Returns an error when a counter exceeds 2^53.
pub fn outcome_to_json(outcome: &ComparisonOutcome) -> Result<JsonValue> {
    Ok(obj(vec![
        ("kernel", string(&outcome.kernel)),
        ("plans", json_array(&outcome.plans, plan_result_to_json)?),
        ("lowest_common_rmse", num(outcome.lowest_common_rmse)),
        (
            "cost_to_common_rmse",
            JsonValue::Array(
                outcome
                    .cost_to_common_rmse
                    .iter()
                    .map(|c| c.map_or(JsonValue::Null, num))
                    .collect(),
            ),
        ),
    ]))
}

/// Serializes a plan-comparison outcome to its canonical JSON string (the
/// golden-snapshot format of `tests/golden_reports.rs`).
///
/// # Errors
///
/// Returns an error when the outcome contains non-finite numbers.
pub fn outcome_to_json_string(outcome: &ComparisonOutcome) -> Result<String> {
    outcome_to_json(outcome)?
        .to_json_string()
        .map_err(CoreError::from)
}

/// Decodes a plan-comparison outcome.
///
/// # Errors
///
/// Returns an error on malformed input.
pub fn outcome_from_json(value: &JsonValue) -> Result<ComparisonOutcome> {
    Ok(ComparisonOutcome {
        kernel: value.field("kernel")?.as_str()?.to_string(),
        plans: value
            .field("plans")?
            .as_array()?
            .iter()
            .map(plan_result_from_json)
            .collect::<Result<_>>()?,
        lowest_common_rmse: value.field("lowest_common_rmse")?.as_f64()?,
        cost_to_common_rmse: value
            .field("cost_to_common_rmse")?
            .as_array()?
            .iter()
            .map(|c| {
                if c.is_null() {
                    Ok(None)
                } else {
                    c.as_f64().map(Some).map_err(CoreError::from)
                }
            })
            .collect::<Result<_>>()?,
    })
}

/// Parses a plan-comparison outcome from its canonical JSON string.
///
/// # Errors
///
/// Returns an error on malformed input.
pub fn outcome_from_json_str(text: &str) -> Result<ComparisonOutcome> {
    outcome_from_json(&JsonValue::parse(text)?)
}

fn unit_failure_to_json(failure: &UnitFailure) -> Result<JsonValue> {
    Ok(obj(vec![
        ("index", int(failure.index as u64)?),
        ("kernel", string(&failure.kernel)),
        ("model", string(&failure.model)),
        ("error", string(&failure.error)),
        ("attempts", int(failure.attempts as u64)?),
    ]))
}

fn unit_failure_from_json(value: &JsonValue) -> Result<UnitFailure> {
    Ok(UnitFailure {
        index: value.field("index")?.as_usize()?,
        kernel: value.field("kernel")?.as_str()?.to_string(),
        model: value.field("model")?.as_str()?.to_string(),
        error: value.field("error")?.as_str()?.to_string(),
        attempts: value.field("attempts")?.as_usize()?,
    })
}

/// Encodes a merged campaign report. The `failures` field is emitted only
/// when non-empty: a fault-free report serializes to exactly the bytes it
/// did before resilient execution existed (golden snapshots stay valid).
///
/// # Errors
///
/// Returns an error when a counter or the campaign seed exceeds 2^53.
pub fn report_to_json(report: &CampaignReport) -> Result<JsonValue> {
    let mut fields = vec![
        ("schema", string(REPORT_SCHEMA)),
        (
            "kernels",
            JsonValue::Array(report.kernels.iter().map(|k| string(k)).collect()),
        ),
        (
            "models",
            JsonValue::Array(report.models.iter().map(|m| string(m)).collect()),
        ),
        ("plans", json_array(&report.plans, plan_to_json)?),
        ("repetitions", int(report.repetitions as u64)?),
        ("seed", int(report.seed)?),
        (
            "entries",
            JsonValue::Array(
                report
                    .entries
                    .iter()
                    .map(|entry| {
                        Ok(obj(vec![
                            ("model", string(&entry.model)),
                            ("kernel", string(&entry.kernel)),
                            ("outcome", outcome_to_json(&entry.outcome)?),
                        ]))
                    })
                    .collect::<Result<_>>()?,
            ),
        ),
    ];
    if !report.failures.is_empty() {
        fields.push((
            "failures",
            json_array(&report.failures, unit_failure_to_json)?,
        ));
    }
    Ok(obj(fields))
}

/// Decodes a merged campaign report.
///
/// # Errors
///
/// Returns an error on malformed input or a wrong schema tag.
pub fn report_from_json(value: &JsonValue) -> Result<CampaignReport> {
    let schema = value.field("schema")?.as_str()?;
    if schema != REPORT_SCHEMA {
        return Err(bad(format!(
            "unexpected report schema '{schema}' (expected '{REPORT_SCHEMA}')"
        )));
    }
    let names = |field: &str| -> Result<Vec<String>> {
        value
            .field(field)?
            .as_array()?
            .iter()
            .map(|v| v.as_str().map(str::to_string).map_err(CoreError::from))
            .collect()
    };
    Ok(CampaignReport {
        kernels: names("kernels")?,
        models: names("models")?,
        plans: value
            .field("plans")?
            .as_array()?
            .iter()
            .map(plan_from_json)
            .collect::<Result<_>>()?,
        repetitions: value.field("repetitions")?.as_usize()?,
        seed: value.field("seed")?.as_u64()?,
        entries: value
            .field("entries")?
            .as_array()?
            .iter()
            .map(|entry| {
                Ok(CampaignEntry {
                    model: entry.field("model")?.as_str()?.to_string(),
                    kernel: entry.field("kernel")?.as_str()?.to_string(),
                    outcome: outcome_from_json(entry.field("outcome")?)?,
                })
            })
            .collect::<Result<_>>()?,
        failures: match optional_field(value, "failures") {
            Some(failures) => failures
                .as_array()?
                .iter()
                .map(unit_failure_from_json)
                .collect::<Result<_>>()?,
            None => Vec::new(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::compare_plans;
    use crate::runner::run_campaign;
    use crate::runner::tests::{tiny_base, tiny_campaign, toy_kernel};
    use alic_sim::profiler::Measurement;

    #[test]
    fn plan_codec_round_trips_and_validates() {
        for plan in [
            SamplingPlan::fixed35(),
            SamplingPlan::one_observation(),
            SamplingPlan::sequential(7),
        ] {
            let json = plan_to_json(&plan).unwrap().to_json_string().unwrap();
            let back = plan_from_json(&JsonValue::parse(&json).unwrap()).unwrap();
            assert_eq!(back, plan);
        }
        let zero = JsonValue::parse("{\"kind\":\"fixed\",\"observations\":0}").unwrap();
        assert!(plan_from_json(&zero).is_err());
        let unknown = JsonValue::parse("{\"kind\":\"bogus\"}").unwrap();
        assert!(plan_from_json(&unknown).is_err());
    }

    #[test]
    fn cost_ledger_serde_round_trip_is_exact() {
        let mut ledger = CostLedger::new();
        ledger.record(&Measurement {
            runtime: 0.1 + 0.2,
            compile_time: 1.0 / 3.0,
            compiled: true,
        });
        ledger.record(&Measurement {
            runtime: 1e-300,
            compile_time: 0.0,
            compiled: false,
        });
        let json = cost_ledger_to_json(&ledger)
            .unwrap()
            .to_json_string()
            .unwrap();
        let back = cost_ledger_from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, ledger);
        // Canonical: re-encoding gives identical bytes.
        assert_eq!(
            cost_ledger_to_json(&back)
                .unwrap()
                .to_json_string()
                .unwrap(),
            json
        );
    }

    #[test]
    fn counters_beyond_exact_f64_range_error_at_encode_time() {
        // A saturated ledger cannot be stored exactly as JSON numbers; the
        // encoder must refuse rather than write a file decoding will reject.
        let saturated = CostLedger::from_parts(1.0, 1.0, u64::MAX, 3);
        let err = cost_ledger_to_json(&saturated).unwrap_err();
        assert!(err.to_string().contains("2^53"), "{err}");
        // Same contract for the campaign seed in a report.
        let mut report = run_campaign(&tiny_campaign()).unwrap();
        report.seed = u64::MAX;
        assert!(report_to_json(&report).is_err());
    }

    #[test]
    fn empty_and_filled_online_stats_round_trip() {
        let empty = OnlineStats::new();
        let back = stats_from_json(&stats_to_json(&empty).unwrap()).unwrap();
        assert_eq!(back, empty);

        let filled: OnlineStats = [0.3, 1.7, -2.5, 8.1].iter().copied().collect();
        let json = stats_to_json(&filled).unwrap().to_json_string().unwrap();
        let back = stats_from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, filled);
    }

    #[test]
    fn decreasing_curve_costs_are_an_error_not_a_panic() {
        let hostile = JsonValue::parse(
            "[{\"iterations\":0,\"training_examples\":1,\"observations\":1,\
             \"cost_seconds\":2.0,\"rmse\":0.5},\
             {\"iterations\":1,\"training_examples\":2,\"observations\":2,\
             \"cost_seconds\":1.0,\"rmse\":0.4}]",
        )
        .unwrap();
        assert!(curve_from_json(&hostile).is_err());
    }

    #[test]
    fn learner_run_round_trips_bit_exactly() {
        let kernel = toy_kernel("alpha", 3);
        let outcome = compare_plans(&kernel, &tiny_base()).unwrap();
        for plan_result in &outcome.plans {
            for run in &plan_result.runs {
                let json = run_to_json(run).unwrap().to_json_string().unwrap();
                let back = run_from_json(&JsonValue::parse(&json).unwrap()).unwrap();
                assert_eq!(&back, run);
            }
        }
    }

    #[test]
    fn outcome_and_report_round_trip_bit_exactly() {
        let report = run_campaign(&tiny_campaign()).unwrap();
        for entry in &report.entries {
            let json = outcome_to_json_string(&entry.outcome).unwrap();
            assert_eq!(outcome_from_json_str(&json).unwrap(), entry.outcome);
        }
        let json = report.to_json_string().unwrap();
        let back = CampaignReport::from_json_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json_string().unwrap(), json);
    }

    #[test]
    fn wrong_schema_tags_are_rejected() {
        let value = JsonValue::parse("{\"schema\":\"bogus/v9\"}").unwrap();
        assert!(unit_record_from_json(&value).is_err());
        assert!(report_from_json(&value).is_err());
    }
}
