//! The on-disk campaign ledger: checkpointed unit records plus a manifest.
//!
//! A ledger is a directory with this layout:
//!
//! ```text
//! <dir>/
//!   manifest.json           # campaign fingerprint + matrix description
//!   report.json             # written by the merge step, canonical JSON
//!   units/
//!     unit-000000.json      # one checkpointed unit record each
//!     unit-000001.json
//!     ...
//! ```
//!
//! Unit records are written to a temporary file and atomically renamed into
//! place, so a killed process can never leave a torn record — on resume, a
//! unit either exists completely or is re-run. Because unit results are
//! deterministic, even two processes racing on the same unit converge on
//! identical bytes. Stray `*.tmp` files from kills are swept on open (and
//! are never counted as completed units).
//!
//! The manifest pins the campaign's [`fingerprint`](CampaignSpec::fingerprint);
//! opening a ledger directory with a differently configured campaign is an
//! error, which prevents silently merging units from incompatible runs.
//!
//! # Self-healing
//!
//! Atomic renames protect against kills, but not against a hostile
//! filesystem (transient write errors, torn data that *looks* committed).
//! Three layers defend against that, all exercised by the chaos suite:
//!
//! * every write retries under the unified retry policy
//!   ([`write_atomic`] via `alic_stats::policy::RetryPolicy::LEDGER` —
//!   capped exponential backoff with deterministic jitter),
//! * the manifest and the merged report are verified by read-back after
//!   every write and rewritten on mismatch ([`write_verified`]); a
//!   truncated manifest or report found on open is quarantined to
//!   `*.corrupt` and regenerated,
//! * unit records are *not* read back on write (they are bulk data);
//!   instead [`CampaignLedger::recover`] scans them on resume, quarantines
//!   any corrupt, truncated, or misindexed record to `*.corrupt`, and
//!   reports the indices so the campaign re-executes exactly those units.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use alic_data::io::JsonValue;
use alic_stats::policy::{PolicySite, RetryPolicy};

use crate::fault::{inject, FaultSite};
use crate::runner::{codec, CampaignReport, CampaignSpec, UnitRecord};
use crate::{CoreError, Result};

/// Schema tag of the ledger manifest.
pub const MANIFEST_SCHEMA: &str = "alic-campaign-manifest/v1";

const MANIFEST_FILE: &str = "manifest.json";
const REPORT_FILE: &str = "report.json";
const UNITS_DIR: &str = "units";

/// Handle on a campaign ledger directory.
#[derive(Debug, Clone)]
pub struct CampaignLedger {
    dir: PathBuf,
}

impl CampaignLedger {
    /// Opens (creating if necessary) the ledger at `dir` for `spec`.
    ///
    /// A fresh directory gets a manifest describing the campaign; an
    /// existing one must carry a matching manifest.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the directory cannot be created, and
    /// [`CoreError::Campaign`] when an existing manifest belongs to a
    /// differently configured campaign.
    pub fn open(dir: impl Into<PathBuf>, spec: &CampaignSpec) -> Result<Self> {
        spec.validate()?;
        let dir = dir.into();
        fs::create_dir_all(dir.join(UNITS_DIR))?;
        let ledger = CampaignLedger { dir };
        ledger.sweep_stale_tmp()?;
        let manifest = manifest_json(spec)?;
        let fresh = manifest.to_json_string()? + "\n";
        let path = ledger.manifest_path();
        match fs::read_to_string(&path) {
            Ok(text) => match JsonValue::parse(&text) {
                Ok(existing) => validate_manifest(&existing, &manifest, &path)?,
                // A truncated or torn manifest carries no trustworthy
                // fingerprint to check against; preserve the evidence as
                // `*.corrupt` and rewrite it from this campaign's spec.
                Err(_) => {
                    quarantine_file(&path)?;
                    write_verified(&path, &fresh)?;
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                write_verified(&path, &fresh)?;
            }
            Err(e) => return Err(e.into()),
        }
        // A torn report.json would survive until someone read it; the merge
        // step rewrites it anyway, so quarantine it eagerly.
        let report = ledger.report_path();
        if let Ok(text) = fs::read_to_string(&report) {
            if JsonValue::parse(&text).is_err() {
                quarantine_file(&report)?;
            }
        }
        Ok(ledger)
    }

    /// The ledger directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_FILE)
    }

    /// Path of the merged report file.
    pub fn report_path(&self) -> PathBuf {
        self.dir.join(REPORT_FILE)
    }

    fn unit_path(&self, index: usize) -> PathBuf {
        self.dir
            .join(UNITS_DIR)
            .join(format!("unit-{index:06}.json"))
    }

    /// The indices of all completely checkpointed units (torn `*.tmp` files
    /// and foreign names are ignored).
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the units directory cannot be read.
    pub fn completed(&self) -> Result<BTreeSet<usize>> {
        let mut completed = BTreeSet::new();
        for entry in fs::read_dir(self.dir.join(UNITS_DIR))? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(index) = name
                .strip_prefix("unit-")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|digits| digits.parse::<usize>().ok())
            else {
                continue;
            };
            completed.insert(index);
        }
        Ok(completed)
    }

    /// Checkpoints one completed unit atomically (write to `*.tmp`, then
    /// rename into place).
    ///
    /// # Errors
    ///
    /// Returns serialization or I/O errors.
    pub fn record(&self, record: &UnitRecord) -> Result<()> {
        let json = codec::unit_record_to_json_string(record)? + "\n";
        write_atomic(&self.unit_path(record.index), &json)
    }

    /// Loads one checkpointed unit record.
    ///
    /// # Errors
    ///
    /// Returns an error when the record is missing, malformed, or indexed
    /// inconsistently with its file name.
    pub fn load_unit(&self, index: usize) -> Result<UnitRecord> {
        let path = self.unit_path(index);
        let text = fs::read_to_string(&path).map_err(|e| {
            CoreError::Campaign(format!("cannot read unit record {}: {e}", path.display()))
        })?;
        let record = codec::unit_record_from_json_str(&text)?;
        if record.index != index {
            return Err(CoreError::Campaign(format!(
                "unit record {} claims index {} (ledger corrupted?)",
                path.display(),
                record.index
            )));
        }
        Ok(record)
    }

    /// Loads the complete unit set of the campaign, erroring when any unit
    /// is missing (an incomplete campaign cannot be merged).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Campaign`] listing the first missing units, or
    /// any record parse error.
    pub fn load_all(&self, spec: &CampaignSpec) -> Result<Vec<UnitRecord>> {
        let expected = spec.unit_count();
        let completed = self.completed()?;
        let missing: Vec<usize> = (0..expected)
            .filter(|i| !completed.contains(i))
            .take(9)
            .collect();
        if !missing.is_empty() {
            let shown: Vec<String> = missing.iter().take(8).map(|i| i.to_string()).collect();
            let ellipsis = if missing.len() > 8 { ", ..." } else { "" };
            return Err(CoreError::Campaign(format!(
                "campaign is incomplete: {} of {expected} units checkpointed \
                 (missing units: {}{ellipsis}) — finish it with --resume before merging",
                completed.iter().filter(|&&i| i < expected).count(),
                shown.join(", ")
            )));
        }
        let indices: Vec<usize> = (0..expected).collect();
        // Loading is pure per-unit work; reuse the work-stealing pool.
        crate::runner::map_units(&indices, |&i| self.load_unit(i))
            .into_iter()
            .collect()
    }

    /// Writes the merged report as canonical JSON (plus a trailing newline)
    /// to `report.json`, atomically, and returns the path.
    ///
    /// # Errors
    ///
    /// Returns serialization or I/O errors.
    pub fn write_report(&self, report: &CampaignReport) -> Result<PathBuf> {
        let path = self.report_path();
        write_verified(&path, &(report.to_json_string()? + "\n"))?;
        Ok(path)
    }

    /// Removes stale `*.tmp-*` files (left by killed processes or failed
    /// renames) from the ledger root and the units directory, returning how
    /// many were swept. Quarantined `*.corrupt` files are kept.
    pub fn sweep_stale_tmp(&self) -> Result<usize> {
        let mut swept = 0;
        for dir in [self.dir.clone(), self.dir.join(UNITS_DIR)] {
            let entries = match fs::read_dir(&dir) {
                Ok(entries) => entries,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            };
            for entry in entries {
                let entry = entry?;
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.contains(".tmp") {
                    // A racing process may have just renamed its tmp away;
                    // a NotFound here is success, anything else is not.
                    match fs::remove_file(entry.path()) {
                        Ok(()) => swept += 1,
                        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }
        }
        Ok(swept)
    }

    /// Scans every checkpointed unit record of `spec`, quarantining corrupt,
    /// truncated, or misindexed records to `*.corrupt` so that
    /// [`completed`](CampaignLedger::completed) no longer counts them and a
    /// resume pass re-executes them. Also sweeps stale `*.tmp` files.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from scanning or renaming; a record that merely
    /// fails to *parse* is quarantined, never an error.
    pub fn recover(&self, spec: &CampaignSpec) -> Result<RecoveryReport> {
        let swept_tmp = self.sweep_stale_tmp()?;
        let mut quarantined = Vec::new();
        for index in self.completed()? {
            if index >= spec.unit_count() {
                continue;
            }
            if self.load_unit(index).is_err() {
                quarantine_file(&self.unit_path(index))?;
                quarantined.push(index);
            }
        }
        Ok(RecoveryReport {
            quarantined,
            swept_tmp,
        })
    }
}

/// What [`CampaignLedger::recover`] found and repaired.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Indices of unit records quarantined to `*.corrupt` (they need
    /// re-execution).
    pub quarantined: Vec<usize>,
    /// Number of stale `*.tmp` files swept.
    pub swept_tmp: usize,
}

impl RecoveryReport {
    /// True when nothing had to be repaired.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.swept_tmp == 0
    }
}

/// Moves a damaged file aside as `<name>.corrupt`, preserving the evidence
/// while making room for a regenerated replacement.
pub fn quarantine_file(path: &Path) -> Result<()> {
    let mut target = path.as_os_str().to_owned();
    target.push(".corrupt");
    fs::rename(path, PathBuf::from(target))?;
    Ok(())
}

/// Bounded retry attempts for one atomic write (and for one read-back
/// verification loop in [`write_verified`]). Mirrors
/// [`RetryPolicy::LEDGER`]'s attempt count.
pub const WRITE_ATTEMPTS: usize = RetryPolicy::LEDGER.attempts as usize;

/// Writes `contents` to `path` atomically (write to a unique `*.tmp`, then
/// rename into place), retrying transient failures under
/// [`RetryPolicy::LEDGER`] — capped exponential backoff whose jitter is
/// deterministic under the fault plane. Also the durability primitive behind
/// serve-session checkpoints.
///
/// # Errors
///
/// Returns the last I/O error once all [`WRITE_ATTEMPTS`] attempts fail —
/// always a structured [`CoreError`], never a panic, so exhausted retries
/// cannot abort a healing pass or take down a daemon request loop.
pub fn write_atomic(path: &Path, contents: &str) -> Result<()> {
    RetryPolicy::LEDGER
        .run(PolicySite::LedgerWrite, |_| {
            write_atomic_once(path, contents)
        })
        .map_err(CoreError::Io)
}

fn write_atomic_once(path: &Path, contents: &str) -> std::io::Result<()> {
    // The temp name is unique per process and write, so two processes
    // racing on the same file (e.g. both creating the manifest of a fresh
    // ledger, or overlapping --resume invocations re-running one unit)
    // each rename a *complete* — and, units being deterministic, identical —
    // file into place; neither can observe or clobber the other's
    // half-written temp.
    static WRITE_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let serial = WRITE_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp-{}-{serial}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    if inject(FaultSite::WriteIo) {
        return Err(std::io::Error::other(
            "chaos: injected transient write failure",
        ));
    }
    if inject(FaultSite::Enospc) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::StorageFull,
            "chaos: injected out-of-space write failure (ENOSPC)",
        ));
    }
    if inject(FaultSite::FdLimit) {
        return Err(std::io::Error::other(
            "chaos: injected file-descriptor exhaustion (EMFILE)",
        ));
    }
    // A torn write is the one fault atomic rename cannot see: the data lands
    // truncated but the rename still commits it. Modelled by writing only a
    // prefix of the payload and reporting success — the caller's read-back
    // verification or the resume-time recovery scan must catch it.
    let payload: &[u8] = if inject(FaultSite::TornWrite) {
        &contents.as_bytes()[..contents.len() / 2]
    } else {
        contents.as_bytes()
    };
    // Stray tmp files are removed on *every* failure path (a write that
    // errors half-way used to leak its tmp); the open-time sweep is the
    // backstop for tmps orphaned by a kill.
    fs::write(&tmp, payload).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })?;
    if inject(FaultSite::RenameFail) {
        let _ = fs::remove_file(&tmp);
        return Err(std::io::Error::other("chaos: injected rename failure"));
    }
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })?;
    Ok(())
}

/// [`write_atomic`] plus read-back verification: rewrites until the bytes on
/// disk equal `contents`, within [`WRITE_ATTEMPTS`]. Used for the manifest
/// and the merged report, whose correctness later steps depend on; unit
/// records rely on the cheaper resume-time recovery scan instead.
///
/// # Errors
///
/// Returns write errors from [`write_atomic`], or [`CoreError::Campaign`]
/// when the bytes on disk still disagree after [`WRITE_ATTEMPTS`] rewrites.
pub fn write_verified(path: &Path, contents: &str) -> Result<()> {
    for _ in 0..WRITE_ATTEMPTS {
        write_atomic(path, contents)?;
        if fs::read_to_string(path).is_ok_and(|on_disk| on_disk == contents) {
            return Ok(());
        }
    }
    Err(CoreError::Campaign(format!(
        "{} failed read-back verification after {WRITE_ATTEMPTS} rewrites",
        path.display()
    )))
}

fn manifest_json(spec: &CampaignSpec) -> Result<JsonValue> {
    let names =
        |items: Vec<String>| JsonValue::Array(items.into_iter().map(JsonValue::String).collect());
    Ok(JsonValue::Object(vec![
        (
            "schema".to_string(),
            JsonValue::String(MANIFEST_SCHEMA.to_string()),
        ),
        (
            "fingerprint".to_string(),
            JsonValue::String(format!("{:016x}", spec.fingerprint())),
        ),
        ("units".to_string(), codec::int(spec.unit_count() as u64)?),
        (
            "kernels".to_string(),
            names(spec.kernels.iter().map(|k| k.name().to_string()).collect()),
        ),
        (
            "models".to_string(),
            names(spec.models.iter().map(|m| m.name().to_string()).collect()),
        ),
        (
            "plans".to_string(),
            names(spec.base.plans.iter().map(|p| p.label()).collect()),
        ),
        (
            "repetitions".to_string(),
            codec::int(spec.base.repetitions as u64)?,
        ),
        ("seed".to_string(), codec::int(spec.base.seed)?),
    ]))
}

fn validate_manifest(existing: &JsonValue, wanted: &JsonValue, path: &Path) -> Result<()> {
    let schema = existing.field("schema")?.as_str()?;
    if schema != MANIFEST_SCHEMA {
        return Err(CoreError::Campaign(format!(
            "{} has schema '{schema}' (expected '{MANIFEST_SCHEMA}')",
            path.display()
        )));
    }
    let existing_print = existing.field("fingerprint")?.as_str()?;
    let wanted_print = wanted.field("fingerprint")?.as_str()?;
    if existing_print != wanted_print {
        return Err(CoreError::Campaign(format!(
            "campaign ledger {} was written by a differently configured campaign \
             (fingerprint {existing_print}, this campaign is {wanted_print}); \
             use a fresh --dir or rerun with the original configuration",
            path.display()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::tests::tiny_campaign;
    use crate::runner::{assemble_report, execute_units, run_campaign};

    fn temp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "alic-campaign-ledger-{label}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpointed_campaign_merges_identically_to_in_memory() {
        let spec = tiny_campaign();
        let dir = temp_dir("roundtrip");
        let ledger = CampaignLedger::open(&dir, &spec).unwrap();

        let indices: Vec<usize> = (0..spec.unit_count()).collect();
        let sink = |record: &UnitRecord| ledger.record(record);
        execute_units(&spec, &indices, &sink).unwrap();

        // A stray torn tmp file from a kill must not confuse the ledger.
        fs::write(dir.join("units").join("unit-000001.json.tmp"), "{gar").unwrap();
        fs::write(dir.join("units").join("README"), "not a unit").unwrap();

        assert_eq!(ledger.completed().unwrap().len(), spec.unit_count());
        let merged = assemble_report(&spec, ledger.load_all(&spec).unwrap()).unwrap();
        let baseline = run_campaign(&spec).unwrap();
        assert_eq!(merged, baseline);
        assert_eq!(
            merged.to_json_string().unwrap(),
            baseline.to_json_string().unwrap()
        );

        let report_path = ledger.write_report(&merged).unwrap();
        let on_disk = fs::read_to_string(report_path).unwrap();
        assert_eq!(on_disk, baseline.to_json_string().unwrap() + "\n");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incomplete_campaigns_cannot_be_merged() {
        let spec = tiny_campaign();
        let dir = temp_dir("incomplete");
        let ledger = CampaignLedger::open(&dir, &spec).unwrap();
        let sink = |record: &UnitRecord| ledger.record(record);
        execute_units(&spec, &[0, 2, 5], &sink).unwrap();

        assert_eq!(
            ledger
                .completed()
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![0, 2, 5]
        );
        let err = ledger.load_all(&spec).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("incomplete"), "{message}");
        assert!(message.contains("--resume"), "{message}");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_campaigns_are_rejected_on_open() {
        let spec = tiny_campaign();
        let dir = temp_dir("mismatch");
        CampaignLedger::open(&dir, &spec).unwrap();

        let mut other = tiny_campaign();
        other.base.seed += 1;
        let err = CampaignLedger::open(&dir, &other).unwrap_err();
        assert!(err.to_string().contains("differently configured"), "{err}");
        // The original campaign still opens fine.
        CampaignLedger::open(&dir, &spec).unwrap();

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_files_are_swept_on_open() {
        let spec = tiny_campaign();
        let dir = temp_dir("sweep");
        let ledger = CampaignLedger::open(&dir, &spec).unwrap();
        let root_tmp = dir.join("manifest.json.tmp-99-0");
        let unit_tmp = dir.join("units").join("unit-000002.json.tmp-99-1");
        fs::write(&root_tmp, "half a manif").unwrap();
        fs::write(&unit_tmp, "{torn").unwrap();

        assert_eq!(ledger.sweep_stale_tmp().unwrap(), 2);
        assert!(!root_tmp.exists() && !unit_tmp.exists());
        // Re-opening sweeps too.
        fs::write(&unit_tmp, "{torn").unwrap();
        CampaignLedger::open(&dir, &spec).unwrap();
        assert!(!unit_tmp.exists());

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_or_empty_manifest_is_quarantined_and_healed_on_resume() {
        let spec = tiny_campaign();
        let dir = temp_dir("manifest-heal");
        let ledger = CampaignLedger::open(&dir, &spec).unwrap();
        let sink = |record: &UnitRecord| ledger.record(record);
        execute_units(&spec, &[0, 1], &sink).unwrap();
        let healthy = fs::read_to_string(ledger.manifest_path()).unwrap();

        for broken in [&healthy[..healthy.len() / 2], ""] {
            fs::write(ledger.manifest_path(), broken).unwrap();
            let reopened = CampaignLedger::open(&dir, &spec).unwrap();
            // The damaged manifest is preserved as evidence and a valid one
            // is regenerated; checkpointed units survive untouched.
            let quarantined = dir.join("manifest.json.corrupt");
            assert_eq!(fs::read_to_string(&quarantined).unwrap(), *broken);
            assert_eq!(
                fs::read_to_string(reopened.manifest_path()).unwrap(),
                healthy
            );
            assert_eq!(reopened.completed().unwrap().len(), 2);
            fs::remove_file(quarantined).unwrap();
        }
        // Healing is reserved for unreadable manifests: a *parseable*
        // manifest from a differently configured campaign must still be
        // rejected, not overwritten.
        let mut other = tiny_campaign();
        other.base.seed += 1;
        assert!(CampaignLedger::open(&dir, &other).is_err());

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_or_empty_report_is_quarantined_on_resume() {
        let spec = tiny_campaign();
        let dir = temp_dir("report-heal");
        let ledger = CampaignLedger::open(&dir, &spec).unwrap();
        let indices: Vec<usize> = (0..spec.unit_count()).collect();
        let sink = |record: &UnitRecord| ledger.record(record);
        execute_units(&spec, &indices, &sink).unwrap();
        let report = assemble_report(&spec, ledger.load_all(&spec).unwrap()).unwrap();
        let path = ledger.write_report(&report).unwrap();
        let healthy = fs::read_to_string(&path).unwrap();

        for broken in [&healthy[..healthy.len() / 3], ""] {
            fs::write(&path, broken).unwrap();
            CampaignLedger::open(&dir, &spec).unwrap();
            assert!(!path.exists(), "damaged report should be moved aside");
            let quarantined = dir.join("report.json.corrupt");
            assert_eq!(fs::read_to_string(&quarantined).unwrap(), *broken);
            fs::remove_file(quarantined).unwrap();
            // The merge step regenerates it byte-identically.
            let rewritten = ledger.write_report(&report).unwrap();
            assert_eq!(fs::read_to_string(rewritten).unwrap(), healthy);
        }
        // A healthy report is left alone by open.
        CampaignLedger::open(&dir, &spec).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), healthy);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_quarantines_damaged_unit_records_for_reexecution() {
        let spec = tiny_campaign();
        let dir = temp_dir("recover");
        let ledger = CampaignLedger::open(&dir, &spec).unwrap();
        let indices: Vec<usize> = (0..spec.unit_count()).collect();
        let sink = |record: &UnitRecord| ledger.record(record);
        execute_units(&spec, &indices, &sink).unwrap();
        let baseline = assemble_report(&spec, ledger.load_all(&spec).unwrap()).unwrap();

        // Damage three records three different ways: garbage, truncation,
        // and an index/filename mismatch.
        let unit = |i: usize| dir.join("units").join(format!("unit-{i:06}.json"));
        fs::write(unit(0), "{garbage").unwrap();
        let healthy = fs::read_to_string(unit(2)).unwrap();
        fs::write(unit(2), &healthy[..healthy.len() / 2]).unwrap();
        fs::copy(unit(3), unit(5)).unwrap();

        let recovery = ledger.recover(&spec).unwrap();
        assert_eq!(recovery.quarantined, vec![0, 2, 5]);
        assert!(!recovery.is_clean());
        for i in [0, 2, 5] {
            assert!(!unit(i).exists());
            assert!(unit(i).with_extension("json.corrupt").exists());
        }
        // Recovery is idempotent once the damage is quarantined.
        assert!(ledger.recover(&spec).unwrap().is_clean());

        // Re-executing exactly the quarantined units completes the campaign
        // with a byte-identical report.
        execute_units(&spec, &recovery.quarantined, &sink).unwrap();
        let healed = assemble_report(&spec, ledger.load_all(&spec).unwrap()).unwrap();
        assert_eq!(
            healed.to_json_string().unwrap(),
            baseline.to_json_string().unwrap()
        );

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_unit_records_are_reported() {
        let spec = tiny_campaign();
        let dir = temp_dir("corrupt");
        let ledger = CampaignLedger::open(&dir, &spec).unwrap();
        fs::write(dir.join("units").join("unit-000000.json"), "{broken").unwrap();
        assert!(ledger.load_unit(0).is_err());
        // A record whose body disagrees with its file name is corruption too.
        let sink = |record: &UnitRecord| ledger.record(record);
        execute_units(&spec, &[3], &sink).unwrap();
        fs::copy(
            dir.join("units").join("unit-000003.json"),
            dir.join("units").join("unit-000004.json"),
        )
        .unwrap();
        assert!(ledger.load_unit(4).is_err());

        fs::remove_dir_all(&dir).unwrap();
    }
}
