//! The on-disk campaign ledger: checkpointed unit records plus a manifest.
//!
//! A ledger is a directory with this layout:
//!
//! ```text
//! <dir>/
//!   manifest.json           # campaign fingerprint + matrix description
//!   report.json             # written by the merge step, canonical JSON
//!   units/
//!     unit-000000.json      # one checkpointed unit record each
//!     unit-000001.json
//!     ...
//! ```
//!
//! Unit records are written to a temporary file and atomically renamed into
//! place, so a killed process can never leave a torn record — on resume, a
//! unit either exists completely or is re-run. Because unit results are
//! deterministic, even two processes racing on the same unit converge on
//! identical bytes. Stray `*.tmp` files from kills are ignored (and are not
//! counted as completed units).
//!
//! The manifest pins the campaign's [`fingerprint`](CampaignSpec::fingerprint);
//! opening a ledger directory with a differently configured campaign is an
//! error, which prevents silently merging units from incompatible runs.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use alic_data::io::JsonValue;

use crate::runner::{codec, CampaignReport, CampaignSpec, UnitRecord};
use crate::{CoreError, Result};

/// Schema tag of the ledger manifest.
pub const MANIFEST_SCHEMA: &str = "alic-campaign-manifest/v1";

const MANIFEST_FILE: &str = "manifest.json";
const REPORT_FILE: &str = "report.json";
const UNITS_DIR: &str = "units";

/// Handle on a campaign ledger directory.
#[derive(Debug, Clone)]
pub struct CampaignLedger {
    dir: PathBuf,
}

impl CampaignLedger {
    /// Opens (creating if necessary) the ledger at `dir` for `spec`.
    ///
    /// A fresh directory gets a manifest describing the campaign; an
    /// existing one must carry a matching manifest.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the directory cannot be created, and
    /// [`CoreError::Campaign`] when an existing manifest belongs to a
    /// differently configured campaign.
    pub fn open(dir: impl Into<PathBuf>, spec: &CampaignSpec) -> Result<Self> {
        spec.validate()?;
        let dir = dir.into();
        fs::create_dir_all(dir.join(UNITS_DIR))?;
        let ledger = CampaignLedger { dir };
        let manifest = manifest_json(spec)?;
        let path = ledger.manifest_path();
        if path.exists() {
            let existing = JsonValue::parse(&fs::read_to_string(&path)?)?;
            validate_manifest(&existing, &manifest, &path)?;
        } else {
            write_atomic(&path, &(manifest.to_json_string()? + "\n"))?;
        }
        Ok(ledger)
    }

    /// The ledger directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_FILE)
    }

    /// Path of the merged report file.
    pub fn report_path(&self) -> PathBuf {
        self.dir.join(REPORT_FILE)
    }

    fn unit_path(&self, index: usize) -> PathBuf {
        self.dir
            .join(UNITS_DIR)
            .join(format!("unit-{index:06}.json"))
    }

    /// The indices of all completely checkpointed units (torn `*.tmp` files
    /// and foreign names are ignored).
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the units directory cannot be read.
    pub fn completed(&self) -> Result<BTreeSet<usize>> {
        let mut completed = BTreeSet::new();
        for entry in fs::read_dir(self.dir.join(UNITS_DIR))? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(index) = name
                .strip_prefix("unit-")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|digits| digits.parse::<usize>().ok())
            else {
                continue;
            };
            completed.insert(index);
        }
        Ok(completed)
    }

    /// Checkpoints one completed unit atomically (write to `*.tmp`, then
    /// rename into place).
    ///
    /// # Errors
    ///
    /// Returns serialization or I/O errors.
    pub fn record(&self, record: &UnitRecord) -> Result<()> {
        let json = codec::unit_record_to_json_string(record)? + "\n";
        write_atomic(&self.unit_path(record.index), &json)
    }

    /// Loads one checkpointed unit record.
    ///
    /// # Errors
    ///
    /// Returns an error when the record is missing, malformed, or indexed
    /// inconsistently with its file name.
    pub fn load_unit(&self, index: usize) -> Result<UnitRecord> {
        let path = self.unit_path(index);
        let text = fs::read_to_string(&path).map_err(|e| {
            CoreError::Campaign(format!("cannot read unit record {}: {e}", path.display()))
        })?;
        let record = codec::unit_record_from_json_str(&text)?;
        if record.index != index {
            return Err(CoreError::Campaign(format!(
                "unit record {} claims index {} (ledger corrupted?)",
                path.display(),
                record.index
            )));
        }
        Ok(record)
    }

    /// Loads the complete unit set of the campaign, erroring when any unit
    /// is missing (an incomplete campaign cannot be merged).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Campaign`] listing the first missing units, or
    /// any record parse error.
    pub fn load_all(&self, spec: &CampaignSpec) -> Result<Vec<UnitRecord>> {
        let expected = spec.unit_count();
        let completed = self.completed()?;
        let missing: Vec<usize> = (0..expected)
            .filter(|i| !completed.contains(i))
            .take(9)
            .collect();
        if !missing.is_empty() {
            let shown: Vec<String> = missing.iter().take(8).map(|i| i.to_string()).collect();
            let ellipsis = if missing.len() > 8 { ", ..." } else { "" };
            return Err(CoreError::Campaign(format!(
                "campaign is incomplete: {} of {expected} units checkpointed \
                 (missing units: {}{ellipsis}) — finish it with --resume before merging",
                completed.iter().filter(|&&i| i < expected).count(),
                shown.join(", ")
            )));
        }
        let indices: Vec<usize> = (0..expected).collect();
        // Loading is pure per-unit work; reuse the work-stealing pool.
        crate::runner::map_units(&indices, |&i| self.load_unit(i))
            .into_iter()
            .collect()
    }

    /// Writes the merged report as canonical JSON (plus a trailing newline)
    /// to `report.json`, atomically, and returns the path.
    ///
    /// # Errors
    ///
    /// Returns serialization or I/O errors.
    pub fn write_report(&self, report: &CampaignReport) -> Result<PathBuf> {
        let path = self.report_path();
        write_atomic(&path, &(report.to_json_string()? + "\n"))?;
        Ok(path)
    }
}

fn write_atomic(path: &Path, contents: &str) -> Result<()> {
    // The temp name is unique per process and write, so two processes
    // racing on the same file (e.g. both creating the manifest of a fresh
    // ledger, or overlapping --resume invocations re-running one unit)
    // each rename a *complete* — and, units being deterministic, identical —
    // file into place; neither can observe or clobber the other's
    // half-written temp.
    static WRITE_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let serial = WRITE_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp-{}-{serial}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })?;
    Ok(())
}

fn manifest_json(spec: &CampaignSpec) -> Result<JsonValue> {
    let names =
        |items: Vec<String>| JsonValue::Array(items.into_iter().map(JsonValue::String).collect());
    Ok(JsonValue::Object(vec![
        (
            "schema".to_string(),
            JsonValue::String(MANIFEST_SCHEMA.to_string()),
        ),
        (
            "fingerprint".to_string(),
            JsonValue::String(format!("{:016x}", spec.fingerprint())),
        ),
        ("units".to_string(), codec::int(spec.unit_count() as u64)?),
        (
            "kernels".to_string(),
            names(spec.kernels.iter().map(|k| k.name().to_string()).collect()),
        ),
        (
            "models".to_string(),
            names(spec.models.iter().map(|m| m.name().to_string()).collect()),
        ),
        (
            "plans".to_string(),
            names(spec.base.plans.iter().map(|p| p.label()).collect()),
        ),
        (
            "repetitions".to_string(),
            codec::int(spec.base.repetitions as u64)?,
        ),
        ("seed".to_string(), codec::int(spec.base.seed)?),
    ]))
}

fn validate_manifest(existing: &JsonValue, wanted: &JsonValue, path: &Path) -> Result<()> {
    let schema = existing.field("schema")?.as_str()?;
    if schema != MANIFEST_SCHEMA {
        return Err(CoreError::Campaign(format!(
            "{} has schema '{schema}' (expected '{MANIFEST_SCHEMA}')",
            path.display()
        )));
    }
    let existing_print = existing.field("fingerprint")?.as_str()?;
    let wanted_print = wanted.field("fingerprint")?.as_str()?;
    if existing_print != wanted_print {
        return Err(CoreError::Campaign(format!(
            "campaign ledger {} was written by a differently configured campaign \
             (fingerprint {existing_print}, this campaign is {wanted_print}); \
             use a fresh --dir or rerun with the original configuration",
            path.display()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::tests::tiny_campaign;
    use crate::runner::{assemble_report, execute_units, run_campaign};

    fn temp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "alic-campaign-ledger-{label}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpointed_campaign_merges_identically_to_in_memory() {
        let spec = tiny_campaign();
        let dir = temp_dir("roundtrip");
        let ledger = CampaignLedger::open(&dir, &spec).unwrap();

        let indices: Vec<usize> = (0..spec.unit_count()).collect();
        let sink = |record: &UnitRecord| ledger.record(record);
        execute_units(&spec, &indices, &sink).unwrap();

        // A stray torn tmp file from a kill must not confuse the ledger.
        fs::write(dir.join("units").join("unit-000001.json.tmp"), "{gar").unwrap();
        fs::write(dir.join("units").join("README"), "not a unit").unwrap();

        assert_eq!(ledger.completed().unwrap().len(), spec.unit_count());
        let merged = assemble_report(&spec, ledger.load_all(&spec).unwrap()).unwrap();
        let baseline = run_campaign(&spec).unwrap();
        assert_eq!(merged, baseline);
        assert_eq!(
            merged.to_json_string().unwrap(),
            baseline.to_json_string().unwrap()
        );

        let report_path = ledger.write_report(&merged).unwrap();
        let on_disk = fs::read_to_string(report_path).unwrap();
        assert_eq!(on_disk, baseline.to_json_string().unwrap() + "\n");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incomplete_campaigns_cannot_be_merged() {
        let spec = tiny_campaign();
        let dir = temp_dir("incomplete");
        let ledger = CampaignLedger::open(&dir, &spec).unwrap();
        let sink = |record: &UnitRecord| ledger.record(record);
        execute_units(&spec, &[0, 2, 5], &sink).unwrap();

        assert_eq!(
            ledger
                .completed()
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![0, 2, 5]
        );
        let err = ledger.load_all(&spec).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("incomplete"), "{message}");
        assert!(message.contains("--resume"), "{message}");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_campaigns_are_rejected_on_open() {
        let spec = tiny_campaign();
        let dir = temp_dir("mismatch");
        CampaignLedger::open(&dir, &spec).unwrap();

        let mut other = tiny_campaign();
        other.base.seed += 1;
        let err = CampaignLedger::open(&dir, &other).unwrap_err();
        assert!(err.to_string().contains("differently configured"), "{err}");
        // The original campaign still opens fine.
        CampaignLedger::open(&dir, &spec).unwrap();

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_unit_records_are_reported() {
        let spec = tiny_campaign();
        let dir = temp_dir("corrupt");
        let ledger = CampaignLedger::open(&dir, &spec).unwrap();
        fs::write(dir.join("units").join("unit-000000.json"), "{broken").unwrap();
        assert!(ledger.load_unit(0).is_err());
        // A record whose body disagrees with its file name is corruption too.
        let sink = |record: &UnitRecord| ledger.record(record);
        execute_units(&spec, &[3], &sink).unwrap();
        fs::copy(
            dir.join("units").join("unit-000003.json"),
            dir.join("units").join("unit-000004.json"),
        )
        .unwrap();
        assert!(ledger.load_unit(4).is_err());

        fs::remove_dir_all(&dir).unwrap();
    }
}
