//! Active learning with sequential analysis for iterative compilation.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Algorithm 1 and §3): an active-learning loop that builds a
//! runtime-prediction model for a compiled kernel while spending as little
//! profiling time as possible, by choosing
//!
//! * *which* configuration to profile next (classical active learning,
//!   using the dynamic tree's uncertainty estimates through MacKay's ALM or
//!   Cohn's ALC criterion — [`acquisition`]), and
//! * *how many times* to profile it (**sequential analysis**: one
//!   observation at a time, keeping previously visited configurations in the
//!   candidate set so that noisy ones can be revisited — [`plan`]).
//!
//! The crate also implements the two baselines the paper compares against —
//! fixed sampling plans of 35 and of 1 observation per example — and an
//! [`experiment`] harness that runs all approaches on a simulated kernel and
//! reports the Table 1 statistics (lowest common RMSE, cost to reach it,
//! speed-up).
//!
//! # Examples
//!
//! ```
//! use alic_core::prelude::*;
//! use alic_data::dataset::{Dataset, DatasetConfig};
//! use alic_model::dynatree::{DynaTree, DynaTreeConfig};
//! use alic_sim::profiler::SimulatedProfiler;
//! use alic_sim::spapt::{spapt_kernel, SpaptKernel};
//!
//! // Profile a small dataset of the simulated `mvt` kernel.
//! let mut profiler = SimulatedProfiler::new(spapt_kernel(SpaptKernel::Mvt), 1);
//! let dataset = Dataset::generate(
//!     &mut profiler,
//!     &DatasetConfig { configurations: 150, observations: 5, seed: 1 },
//! );
//! let split = dataset.split(100, 2);
//!
//! // Run the paper's variable-observation active learner for a few steps.
//! let config = LearnerConfig {
//!     initial_examples: 4,
//!     initial_observations: 5,
//!     candidates_per_iteration: 20,
//!     max_iterations: 30,
//!     evaluate_every: 10,
//!     plan: SamplingPlan::sequential(5),
//!     ..Default::default()
//! };
//! let mut model = DynaTree::new(DynaTreeConfig { particles: 30, seed: 3, ..Default::default() });
//! let mut learner = ActiveLearner::new(config, &mut profiler);
//! let run = learner.run(&mut model, &dataset, &split)?;
//! assert!(run.curve.final_rmse().unwrap().is_finite());
//! # Ok::<(), alic_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod acquisition;
pub mod criteria;
pub mod curve;
pub mod experiment;
pub mod fault;
pub mod learner;
pub mod ledger;
pub mod plan;
pub mod runner;
pub mod warmstore;

/// The unified retry/timeout/backoff policy (re-exported from
/// `alic_stats::policy`): every ledger and serve retry routes through it.
pub use alic_stats::policy;

/// Convenient re-exports of the types needed to drive the learner.
pub mod prelude {
    pub use crate::acquisition::Acquisition;
    pub use crate::criteria::CompletionCriteria;
    pub use crate::curve::{CurvePoint, LearningCurve};
    pub use crate::experiment::{ComparisonConfig, ComparisonOutcome, PlanResult};
    pub use crate::learner::{ActiveLearner, LearnerConfig, LearnerRun};
    pub use crate::ledger::CostLedger;
    pub use crate::plan::SamplingPlan;
    pub use crate::runner::{CampaignLedger, CampaignReport, CampaignSpec};
    pub use crate::CoreError;
    pub use alic_model::SurrogateSpec;
}

pub use acquisition::Acquisition;
pub use curve::{CurvePoint, LearningCurve};
pub use learner::{ActiveLearner, LearnerConfig, LearnerRun};
pub use ledger::CostLedger;
pub use plan::SamplingPlan;

/// Errors produced by the active-learning crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The underlying surrogate model failed.
    Model(alic_model::ModelError),
    /// The statistics substrate failed (e.g. RMSE over an empty test set).
    Stats(alic_stats::StatsError),
    /// The learner was configured inconsistently.
    InvalidConfig(String),
    /// The training pool or test set was too small for the configuration.
    InsufficientData {
        /// What was being drawn from the pool.
        needed: usize,
        /// How many items were available.
        available: usize,
    },
    /// Campaign orchestration failed: an incomplete ledger was merged, a
    /// ledger belongs to a differently configured campaign, or a
    /// checkpointed record is corrupt.
    Campaign(String),
    /// The evaluator failed transiently (a flaky device, an injected chaos
    /// fault); the failed work is safe to retry.
    Evaluator(String),
    /// An I/O operation on the campaign ledger failed.
    Io(std::io::Error),
    /// JSON (de)serialization through `alic-data` failed.
    Data(alic_data::DataError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "surrogate model error: {e}"),
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid learner configuration: {msg}"),
            CoreError::InsufficientData { needed, available } => {
                write!(
                    f,
                    "needed {needed} items but only {available} are available"
                )
            }
            CoreError::Campaign(msg) => write!(f, "campaign error: {msg}"),
            CoreError::Evaluator(msg) => write!(f, "transient evaluator failure: {msg}"),
            CoreError::Io(e) => write!(f, "campaign ledger I/O failed: {e}"),
            CoreError::Data(e) => write!(f, "campaign serialization failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::Io(e) => Some(e),
            CoreError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<alic_model::ModelError> for CoreError {
    fn from(e: alic_model::ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<alic_stats::StatsError> for CoreError {
    fn from(e: alic_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

impl From<alic_data::DataError> for CoreError {
    fn from(e: alic_data::DataError) -> Self {
        CoreError::Data(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
