//! Sampling plans.
//!
//! A sampling plan decides *how many runtime observations* a training example
//! receives. The paper compares three (§4.3):
//!
//! * **fixed, 35 observations** — the baseline of Balaprakash et al.: every
//!   selected configuration is profiled 35 times and the mean is fed to the
//!   model; visited configurations never return to the candidate set;
//! * **fixed, 1 observation** — the cheap-but-noisy extreme;
//! * **sequential (variable)** — the paper's contribution: one observation
//!   per visit, with visited configurations staying in the candidate set
//!   until they have accumulated `max_observations` runs, so the learner can
//!   revisit exactly the configurations whose measurements look noisy.

use serde::{Deserialize, Serialize};

/// How many observations each selected training example receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SamplingPlan {
    /// A fixed number of observations per example; examples are never
    /// revisited.
    Fixed {
        /// Observations taken for every selected example.
        observations: usize,
    },
    /// The paper's sequential-analysis plan: one observation per visit,
    /// revisits allowed up to a cap.
    Sequential {
        /// Maximum number of observations a single example may accumulate.
        max_observations: usize,
    },
}

impl SamplingPlan {
    /// The paper's baseline plan (35 observations, as in Balaprakash et al.).
    pub fn fixed35() -> Self {
        SamplingPlan::Fixed { observations: 35 }
    }

    /// The single-observation plan ("one observation" in Figure 6).
    pub fn one_observation() -> Self {
        SamplingPlan::Fixed { observations: 1 }
    }

    /// A fixed plan with `observations` runs per example.
    ///
    /// # Panics
    ///
    /// Panics if `observations` is zero.
    pub fn fixed(observations: usize) -> Self {
        assert!(
            observations > 0,
            "a sampling plan needs at least one observation"
        );
        SamplingPlan::Fixed { observations }
    }

    /// The paper's variable plan, capped at `max_observations` runs per
    /// example (the paper caps at 35 to match the baseline).
    ///
    /// # Panics
    ///
    /// Panics if `max_observations` is zero.
    pub fn sequential(max_observations: usize) -> Self {
        assert!(
            max_observations > 0,
            "a sampling plan needs at least one observation"
        );
        SamplingPlan::Sequential { max_observations }
    }

    /// Number of observations taken in one visit of a selected example.
    pub fn observations_per_visit(&self) -> usize {
        match self {
            SamplingPlan::Fixed { observations } => *observations,
            SamplingPlan::Sequential { .. } => 1,
        }
    }

    /// Whether visited examples remain candidates for future visits.
    pub fn allows_revisits(&self) -> bool {
        matches!(self, SamplingPlan::Sequential { .. })
    }

    /// Cap on the number of observations a single example may accumulate.
    pub fn max_observations(&self) -> usize {
        match self {
            SamplingPlan::Fixed { observations } => *observations,
            SamplingPlan::Sequential { max_observations } => *max_observations,
        }
    }

    /// Human-readable label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            SamplingPlan::Fixed { observations: 1 } => "one observation".to_string(),
            SamplingPlan::Fixed { observations } => format!("{observations} observations"),
            SamplingPlan::Sequential { .. } => "variable observations".to_string(),
        }
    }
}

impl Default for SamplingPlan {
    fn default() -> Self {
        SamplingPlan::sequential(35)
    }
}

impl std::fmt::Display for SamplingPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plans_have_expected_properties() {
        let baseline = SamplingPlan::fixed35();
        assert_eq!(baseline.observations_per_visit(), 35);
        assert!(!baseline.allows_revisits());
        assert_eq!(baseline.max_observations(), 35);

        let one = SamplingPlan::one_observation();
        assert_eq!(one.observations_per_visit(), 1);
        assert_eq!(one.label(), "one observation");

        let ours = SamplingPlan::sequential(35);
        assert_eq!(ours.observations_per_visit(), 1);
        assert!(ours.allows_revisits());
        assert_eq!(ours.max_observations(), 35);
        assert_eq!(ours.label(), "variable observations");
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(SamplingPlan::fixed35().label(), "35 observations");
        assert_eq!(
            format!("{}", SamplingPlan::sequential(10)),
            "variable observations"
        );
    }

    #[test]
    fn default_plan_is_the_papers() {
        assert_eq!(SamplingPlan::default(), SamplingPlan::sequential(35));
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn zero_observation_plan_is_rejected() {
        SamplingPlan::fixed(0);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn zero_cap_sequential_plan_is_rejected() {
        SamplingPlan::sequential(0);
    }
}
