//! Core-side surface of the deterministic fault-injection plane.
//!
//! The plane itself (sites, plans, the `ALIC_CHAOS` knob, the global
//! activation switch) lives in [`alic_stats::fault`] so that every layer of
//! the stack — including the model crate's GP factorization — can consult
//! it. This module re-exports that API and adds the injection adapters that
//! need core/sim types:
//!
//! * [`ChaosProfiler`] — wraps any [`Profiler`] and corrupts individual
//!   observations to NaN at the [`FaultSite::ObservationNan`] site,
//! * [`maybe_unit_panic`] / [`evaluator_fault`] — the unit-execution
//!   injection points used by the campaign runner.
//!
//! # Why `ChaosProfiler` replays instead of re-measuring
//!
//! The chaos contract (see `tests/chaos_campaign.rs`) is that a fully healed
//! faulty run is **byte-identical** to the fault-free run. A simulated
//! profiler owns an RNG that advances on every `measure` call, so the healing
//! retry must *not* consume an extra draw from it. `ChaosProfiler` therefore
//! stashes the true measurement when it corrupts one and replays the stash on
//! the next call: the inner profiler sees exactly one `measure` per logical
//! observation, faults or no faults, and the recorded cost ledger and model
//! inputs come out identical.

pub use alic_stats::fault::{
    deactivate, exclusive, exclusive_clean, inject, injections, install, is_active, plan_seed,
    ChaosGuard, FaultPlan, FaultSite, SiteSpec, CHAOS_ENV,
};

use alic_sim::profiler::{Measurement, Profiler};
use alic_sim::space::{Configuration, ParameterSpace};

use crate::CoreError;

/// A [`Profiler`] wrapper that injects non-finite observations.
///
/// When the [`FaultSite::ObservationNan`] site fires, the true measurement is
/// stashed and a copy with `runtime = NaN` is returned; the next `measure`
/// call (the learner's healing retry, necessarily for the same
/// configuration) returns the stashed true value without touching the inner
/// profiler. With no fault plane installed this is a zero-overhead
/// passthrough.
#[derive(Debug)]
pub struct ChaosProfiler<P> {
    inner: P,
    pending: Option<Measurement>,
}

impl<P> ChaosProfiler<P> {
    /// Wraps `inner` with NaN-observation injection.
    pub fn new(inner: P) -> Self {
        ChaosProfiler {
            inner,
            pending: None,
        }
    }

    /// The wrapped profiler.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Profiler> Profiler for ChaosProfiler<P> {
    fn space(&self) -> &ParameterSpace {
        self.inner.space()
    }

    fn kernel_name(&self) -> &str {
        self.inner.kernel_name()
    }

    fn measure(&mut self, config: &Configuration) -> Measurement {
        if let Some(stash) = self.pending.take() {
            return stash;
        }
        let measurement = self.inner.measure(config);
        if inject(FaultSite::ObservationNan) {
            self.pending = Some(measurement);
            return Measurement {
                runtime: f64::NAN,
                ..measurement
            };
        }
        measurement
    }

    fn true_mean(&self, config: &Configuration) -> f64 {
        self.inner.true_mean(config)
    }
}

/// Unit-execution injection point: panics when the
/// [`FaultSite::UnitPanic`] site fires.
///
/// The campaign runner's `catch_unwind` isolation converts the panic into a
/// recorded unit failure; the bounded re-execution pass then heals it.
pub fn maybe_unit_panic(unit: usize) {
    if inject(FaultSite::UnitPanic) {
        panic!("chaos: injected panic in work unit {unit}");
    }
}

/// Unit-execution injection point: returns a transient
/// [`CoreError::Evaluator`] error when the [`FaultSite::EvalError`] site
/// fires.
pub fn evaluator_fault(unit: usize) -> crate::Result<()> {
    if inject(FaultSite::EvalError) {
        return Err(CoreError::Evaluator(format!(
            "chaos: injected transient evaluator error in work unit {unit}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use alic_sim::profiler::SimulatedProfiler;
    use alic_sim::spapt::{spapt_kernel, SpaptKernel};

    #[test]
    fn chaos_profiler_is_a_passthrough_without_a_plane() {
        let guard = exclusive_clean();
        let kernel = spapt_kernel(SpaptKernel::Mvt);
        let mut plain = SimulatedProfiler::new(kernel.clone(), 9);
        let mut wrapped = ChaosProfiler::new(SimulatedProfiler::new(kernel, 9));
        let config = plain.space().default_configuration();
        for _ in 0..8 {
            assert_eq!(plain.measure(&config), wrapped.measure(&config));
        }
        drop(guard);
    }

    #[test]
    fn chaos_profiler_corrupts_then_replays_the_true_measurement() {
        // Reference stream from an identical profiler, no chaos.
        let kernel = spapt_kernel(SpaptKernel::Mvt);
        let mut reference = SimulatedProfiler::new(kernel.clone(), 4);
        let config = reference.space().default_configuration();
        let expected: Vec<Measurement> = (0..6).map(|_| reference.measure(&config)).collect();

        let guard = exclusive(FaultPlan::new(8).with_site(FaultSite::ObservationNan, 1.0, Some(3)));
        let mut chaotic = ChaosProfiler::new(SimulatedProfiler::new(kernel, 4));
        let mut healed = Vec::new();
        for _ in 0..6 {
            let mut m = chaotic.measure(&config);
            if !m.runtime.is_finite() {
                // The healing retry the learner performs.
                m = chaotic.measure(&config);
            }
            healed.push(m);
        }
        drop(guard);
        // Every logical observation heals to the exact fault-free stream:
        // the inner profiler's RNG never sees the retries.
        assert_eq!(healed, expected);
        assert_eq!(chaotic.inner().runs(), 6);
    }
}
