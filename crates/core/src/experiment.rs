//! Plan-comparison experiments (the Table 1 / Figure 5 / Figure 6 protocol).
//!
//! For one kernel, [`compare_plans`] runs every sampling plan for a number of
//! seeded repetitions, averages the resulting RMSE-versus-cost curves over
//! the cost range in which all plans are simultaneously active, finds the
//! **lowest common average error** that every compared plan reaches, and
//! reports how much profiling cost each plan needed to first reach it. The
//! ratio of the baseline's cost to the variable plan's cost is the paper's
//! "reduction of profiling cost" (speed-up).

use serde::{Deserialize, Serialize};

use alic_data::dataset::DatasetConfig;
use alic_model::SurrogateSpec;
use alic_sim::kernel::KernelSpec;

use crate::curve::{average_curves, common_cost_grid, AveragedCurve, LearningCurve};
use crate::learner::{LearnerConfig, LearnerRun};
use crate::plan::SamplingPlan;
use crate::Result;

/// Configuration of a plan-comparison experiment on one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonConfig {
    /// Base learner configuration; the `plan` field is overridden per
    /// compared plan and the seeds are re-derived per repetition.
    pub learner: LearnerConfig,
    /// The sampling plans to compare. Defaults to the paper's three.
    pub plans: Vec<SamplingPlan>,
    /// Number of seeded repetitions per plan (the paper uses 10).
    pub repetitions: usize,
    /// Surrogate-model specification used for every run. Any family of
    /// [`SurrogateSpec`] can be compared; the paper's protocol uses the
    /// dynamic tree.
    pub model: SurrogateSpec,
    /// Dataset-generation protocol (§4.5).
    pub dataset: DatasetConfig,
    /// Number of dataset points reserved for training (the rest is test).
    pub train_size: usize,
    /// Resolution of the common cost grid used for averaging.
    pub grid_resolution: usize,
    /// Base seed from which all per-repetition seeds are derived.
    pub seed: u64,
}

impl Default for ComparisonConfig {
    fn default() -> Self {
        ComparisonConfig {
            learner: LearnerConfig::default(),
            plans: vec![
                SamplingPlan::fixed35(),
                SamplingPlan::one_observation(),
                SamplingPlan::sequential(35),
            ],
            repetitions: 10,
            model: SurrogateSpec::default(),
            dataset: DatasetConfig::default(),
            train_size: 7_500,
            grid_resolution: 200,
            seed: 0,
        }
    }
}

impl ComparisonConfig {
    /// A scaled-down configuration that preserves the experimental structure
    /// (three plans, seeded repetitions, ALC acquisition) but runs in seconds
    /// on a laptop instead of days on a cluster. Used by the experiment
    /// harness and the examples.
    pub fn laptop_scale() -> Self {
        ComparisonConfig {
            learner: LearnerConfig {
                initial_examples: 5,
                initial_observations: 15,
                candidates_per_iteration: 60,
                max_iterations: 160,
                evaluate_every: 10,
                ..Default::default()
            },
            repetitions: 4,
            model: SurrogateSpec::dynatree(60),
            dataset: DatasetConfig {
                configurations: 700,
                observations: 15,
                seed: 0,
            },
            train_size: 500,
            grid_resolution: 120,
            seed: 0,
            ..Default::default()
        }
    }

    /// Returns the same configuration with a different surrogate model.
    #[must_use]
    pub fn with_model(mut self, model: SurrogateSpec) -> Self {
        self.model = model;
        self
    }
}

/// Aggregated result for one sampling plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanResult {
    /// The sampling plan.
    pub plan: SamplingPlan,
    /// One learning run per repetition.
    pub runs: Vec<LearnerRun>,
    /// The repetition curves averaged on the common cost grid.
    pub averaged: AveragedCurve,
}

impl PlanResult {
    /// Mean observations per visited example across repetitions.
    pub fn mean_observations_per_example(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs
            .iter()
            .map(LearnerRun::mean_observations_per_example)
            .sum::<f64>()
            / self.runs.len() as f64
    }
}

/// Outcome of comparing all plans on one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonOutcome {
    /// Kernel name.
    pub kernel: String,
    /// Per-plan results, in the order of [`ComparisonConfig::plans`].
    pub plans: Vec<PlanResult>,
    /// The lowest average RMSE that *every* plan reaches on the common grid
    /// (Table 1's "lowest common RMSE").
    pub lowest_common_rmse: f64,
    /// Cost, per plan, to first reach the lowest common RMSE.
    pub cost_to_common_rmse: Vec<Option<f64>>,
}

/// Head-to-head comparison of two sampling plans on their common error level
/// (the statistic behind each row of the paper's Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairwiseComparison {
    /// The lowest averaged RMSE that *both* plans reach.
    pub lowest_common_rmse: f64,
    /// Cost of the first plan to first reach that error.
    pub cost_first: Option<f64>,
    /// Cost of the second plan to first reach that error.
    pub cost_second: Option<f64>,
}

impl PairwiseComparison {
    /// Speed-up of the second plan over the first (first cost / second cost).
    pub fn speedup(&self) -> Option<f64> {
        match (self.cost_first, self.cost_second) {
            (Some(a), Some(b)) if b > 0.0 => Some(a / b),
            _ => None,
        }
    }
}

impl ComparisonOutcome {
    /// Result for a given plan, if it was part of the comparison.
    pub fn plan_result(&self, plan: SamplingPlan) -> Option<&PlanResult> {
        self.plans.iter().find(|p| p.plan == plan)
    }

    /// Head-to-head statistics between two plans: the lowest averaged error
    /// both reach and the cost each needed to first reach it. This mirrors
    /// the paper's Table 1, which compares the 35-observation baseline with
    /// the variable plan in isolation from the one-observation plan.
    pub fn pairwise(
        &self,
        first: SamplingPlan,
        second: SamplingPlan,
    ) -> Option<PairwiseComparison> {
        let a = self.plan_result(first)?;
        let b = self.plan_result(second)?;
        let lowest_common_rmse = a.averaged.best_rmse()?.max(b.averaged.best_rmse()?);
        Some(PairwiseComparison {
            lowest_common_rmse,
            cost_first: a.averaged.cost_to_reach(lowest_common_rmse),
            cost_second: b.averaged.cost_to_reach(lowest_common_rmse),
        })
    }

    /// Speed-up of `fast` over `baseline` in reaching the lowest common RMSE
    /// (Table 1's final column). `None` when either plan never reaches it.
    pub fn speedup(&self, baseline: SamplingPlan, fast: SamplingPlan) -> Option<f64> {
        let index_of = |plan| self.plans.iter().position(|p| p.plan == plan);
        let baseline_cost = self.cost_to_common_rmse[index_of(baseline)?]?;
        let fast_cost = self.cost_to_common_rmse[index_of(fast)?]?;
        if fast_cost > 0.0 {
            Some(baseline_cost / fast_cost)
        } else {
            None
        }
    }
}

/// Runs the full plan comparison for one simulated kernel.
///
/// Since the campaign-runner refactor this is a thin wrapper over a
/// single-kernel, single-model [`CampaignSpec`](crate::runner::CampaignSpec):
/// one work unit per `(plan, repetition)` pair, executed on the
/// work-stealing pool with deterministic per-unit derived seeds
/// ([`runner::execute_unit`](crate::runner::execute_unit)), then folded by
/// the pure merge step [`assemble_outcome`]. Larger matrices — many kernels,
/// many model families, sharded across processes with on-disk checkpoints —
/// use the [`runner`](crate::runner) API directly.
///
/// # Errors
///
/// Propagates learner errors (for example inconsistent configurations).
pub fn compare_plans(spec: &KernelSpec, config: &ComparisonConfig) -> Result<ComparisonOutcome> {
    let campaign = crate::runner::CampaignSpec::single(spec.clone(), config.clone());
    let report = crate::runner::run_campaign(&campaign)?;
    let entry = report
        .entries
        .into_iter()
        .next()
        .expect("a single-cell campaign produces exactly one entry");
    Ok(entry.outcome)
}

/// The pure merge step of a plan comparison: folds the flat run list of one
/// `(kernel, model)` cell — plan-major, repetitions in ascending order, as
/// produced by the campaign unit layout — into averaged curves and the
/// Table 1 statistics.
///
/// Being a pure function of the unit results, it can run long after (and on
/// a different machine than) the units themselves; the campaign runner's
/// `--merge` step and the in-process [`compare_plans`] path both end here,
/// which is what makes sharded-and-merged campaigns byte-identical to
/// single-process runs.
///
/// Runs beyond `plans × repetitions` are ignored; missing runs yield empty
/// plan results (campaign merges validate completeness before calling this).
pub fn assemble_outcome(
    kernel: &str,
    config: &ComparisonConfig,
    all_runs: Vec<LearnerRun>,
) -> ComparisonOutcome {
    let mut runs_iter = all_runs.into_iter();
    let plan_runs: Vec<(SamplingPlan, Vec<LearnerRun>)> = config
        .plans
        .iter()
        .map(|&plan| (plan, runs_iter.by_ref().take(config.repetitions).collect()))
        .collect();
    assemble_outcome_grouped(kernel, config, plan_runs)
}

/// [`assemble_outcome`] for runs already grouped per plan, possibly with
/// *fewer* than `config.repetitions` runs in a group. This is the partial-cell
/// path of the resilient campaign merge
/// ([`assemble_report_with_failures`](crate::runner::assemble_report_with_failures)):
/// when a work unit failed every healing pass, its cell is still assembled
/// from the surviving repetitions. For full groups the result is identical to
/// [`assemble_outcome`] (which delegates here).
pub fn assemble_outcome_grouped(
    kernel: &str,
    config: &ComparisonConfig,
    plan_runs: Vec<(SamplingPlan, Vec<LearnerRun>)>,
) -> ComparisonOutcome {
    // Average every plan's curves on the cost range where all plans overlap.
    let curve_sets: Vec<Vec<LearningCurve>> = plan_runs
        .iter()
        .map(|(_, runs)| runs.iter().map(|r| r.curve.clone()).collect())
        .collect();
    let curve_refs: Vec<&[LearningCurve]> = curve_sets.iter().map(|c| c.as_slice()).collect();
    let grid = common_cost_grid(&curve_refs, config.grid_resolution).unwrap_or_else(|| {
        // Degenerate overlap (e.g. single evaluation point): fall back to the
        // union of final costs.
        curve_sets
            .iter()
            .flat_map(|curves| curves.iter().filter_map(|c| c.total_cost()))
            .collect()
    });

    let plans: Vec<PlanResult> = plan_runs
        .into_iter()
        .zip(&curve_sets)
        .map(|((plan, runs), curves)| PlanResult {
            plan,
            averaged: average_curves(curves, &grid),
            runs,
        })
        .collect();

    // Lowest common RMSE: the worst of the plans' best averaged errors.
    let lowest_common_rmse = plans
        .iter()
        .filter_map(|p| p.averaged.best_rmse())
        .fold(f64::NEG_INFINITY, f64::max);
    let cost_to_common_rmse = plans
        .iter()
        .map(|p| p.averaged.cost_to_reach(lowest_common_rmse))
        .collect();

    ComparisonOutcome {
        kernel: kernel.to_string(),
        plans,
        lowest_common_rmse,
        cost_to_common_rmse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alic_sim::noise::NoiseProfile;
    use alic_sim::space::ParamSpec;

    fn tiny_config() -> ComparisonConfig {
        ComparisonConfig {
            learner: LearnerConfig {
                initial_examples: 4,
                initial_observations: 6,
                candidates_per_iteration: 20,
                max_iterations: 40,
                evaluate_every: 10,
                ..Default::default()
            },
            plans: vec![
                SamplingPlan::fixed(6),
                SamplingPlan::one_observation(),
                SamplingPlan::sequential(6),
            ],
            repetitions: 2,
            model: SurrogateSpec::dynatree(30),
            dataset: DatasetConfig {
                configurations: 250,
                observations: 6,
                seed: 0,
            },
            train_size: 180,
            grid_resolution: 50,
            seed: 7,
        }
    }

    fn toy_kernel(noise: NoiseProfile) -> KernelSpec {
        KernelSpec::new(
            "toy",
            vec![
                ParamSpec::unroll("u1"),
                ParamSpec::unroll("u2"),
                ParamSpec::unroll("u3"),
            ],
            1.0,
            0.5,
            noise,
        )
        .unwrap()
        .with_surface_seed(13)
    }

    #[test]
    fn comparison_produces_results_for_every_plan() {
        let outcome = compare_plans(&toy_kernel(NoiseProfile::moderate()), &tiny_config()).unwrap();
        assert_eq!(outcome.kernel, "toy");
        assert_eq!(outcome.plans.len(), 3);
        assert_eq!(outcome.cost_to_common_rmse.len(), 3);
        for plan in &outcome.plans {
            assert_eq!(plan.runs.len(), 2);
            assert!(!plan.averaged.costs.is_empty());
        }
        assert!(outcome.lowest_common_rmse.is_finite());
    }

    #[test]
    fn sequential_plan_is_cheaper_per_iteration_in_the_comparison() {
        let outcome = compare_plans(&toy_kernel(NoiseProfile::quiet()), &tiny_config()).unwrap();
        let fixed = outcome.plan_result(SamplingPlan::fixed(6)).unwrap();
        let sequential = outcome.plan_result(SamplingPlan::sequential(6)).unwrap();
        let fixed_cost: f64 = fixed.runs.iter().map(|r| r.ledger.total_seconds()).sum();
        let seq_cost: f64 = sequential
            .runs
            .iter()
            .map(|r| r.ledger.total_seconds())
            .sum();
        assert!(
            seq_cost < fixed_cost,
            "sequential total {seq_cost} should be below fixed total {fixed_cost}"
        );
        assert!(sequential.mean_observations_per_example() < fixed.mean_observations_per_example());
    }

    #[test]
    fn speedup_uses_the_requested_plans() {
        let outcome = compare_plans(&toy_kernel(NoiseProfile::quiet()), &tiny_config()).unwrap();
        let speedup = outcome.speedup(SamplingPlan::fixed(6), SamplingPlan::sequential(6));
        if let Some(s) = speedup {
            assert!(s.is_finite() && s > 0.0);
        }
        assert!(outcome
            .speedup(SamplingPlan::fixed(99), SamplingPlan::sequential(6))
            .is_none());
    }

    #[test]
    fn outcome_is_deterministic_for_a_seed() {
        let kernel = toy_kernel(NoiseProfile::moderate());
        let a = compare_plans(&kernel, &tiny_config()).unwrap();
        let b = compare_plans(&kernel, &tiny_config()).unwrap();
        assert_eq!(a.lowest_common_rmse, b.lowest_common_rmse);
        assert_eq!(a.cost_to_common_rmse, b.cost_to_common_rmse);
    }

    #[test]
    fn outcome_is_independent_of_the_thread_count() {
        // The (plan × repetition) jobs each derive their own seeds and are
        // written back by job index, so a single-threaded run must produce
        // bit-identical results to the default parallel run.
        //
        // The shim's programmatic override is used rather than the
        // RAYON_NUM_THREADS env var: setenv while sibling tests' worker
        // threads call getenv is undefined behavior on glibc. The override is
        // process-global, which is harmless here because every test in this
        // binary is deterministic by design.
        let kernel = toy_kernel(NoiseProfile::moderate());
        let parallel = compare_plans(&kernel, &tiny_config()).unwrap();
        rayon::set_num_threads(1);
        let serial = compare_plans(&kernel, &tiny_config()).unwrap();
        rayon::set_num_threads(0);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn comparison_runs_with_every_surrogate_family() {
        let kernel = toy_kernel(NoiseProfile::quiet());
        let mut config = tiny_config();
        config.repetitions = 1;
        config.learner.max_iterations = 15;
        for model in SurrogateSpec::all() {
            let outcome = compare_plans(&kernel, &config.clone().with_model(model))
                .unwrap_or_else(|e| panic!("{model}: comparison failed: {e}"));
            assert_eq!(outcome.plans.len(), 3, "{model}: missing plan results");
            for plan in &outcome.plans {
                assert!(
                    plan.runs
                        .iter()
                        .all(|r| r.curve.final_rmse().is_some_and(f64::is_finite)),
                    "{model}: non-finite learning curve"
                );
            }
        }
    }
}
