//! Cost accounting.
//!
//! The paper measures training cost as "the cumulative compilation and
//! runtimes of any executables used in training" (§4.3). The ledger records
//! exactly that, separating compile from run time so experiments can report
//! both.

use serde::{Deserialize, Serialize};

use alic_sim::profiler::Measurement;

/// Cumulative profiling cost of a learning run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostLedger {
    run_seconds: f64,
    compile_seconds: f64,
    runs: u64,
    compilations: u64,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Reconstructs a ledger from previously captured state — the inverse of
    /// the [`run_seconds`](CostLedger::run_seconds) /
    /// [`compile_seconds`](CostLedger::compile_seconds) /
    /// [`runs`](CostLedger::runs) / [`compilations`](CostLedger::compilations)
    /// accessors. Used by the campaign ledger codec to restore checkpointed
    /// unit records bit-exactly.
    pub fn from_parts(
        run_seconds: f64,
        compile_seconds: f64,
        runs: u64,
        compilations: u64,
    ) -> Self {
        CostLedger {
            run_seconds,
            compile_seconds,
            runs,
            compilations,
        }
    }

    /// Records one measurement. The run/compilation counters saturate at
    /// `u64::MAX` instead of wrapping, so a pathological campaign can never
    /// report a *small* count after overflowing.
    pub fn record(&mut self, measurement: &Measurement) {
        self.run_seconds += measurement.runtime;
        self.compile_seconds += measurement.compile_time;
        self.runs = self.runs.saturating_add(1);
        if measurement.compiled {
            self.compilations = self.compilations.saturating_add(1);
        }
    }

    /// Total cost (compile + run), in seconds — the paper's x-axis.
    pub fn total_seconds(&self) -> f64 {
        self.run_seconds + self.compile_seconds
    }

    /// Cumulative runtime of all profiling runs, in seconds.
    pub fn run_seconds(&self) -> f64 {
        self.run_seconds
    }

    /// Cumulative compilation time, in seconds.
    pub fn compile_seconds(&self) -> f64 {
        self.compile_seconds
    }

    /// Number of profiling runs.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Number of compilations.
    pub fn compilations(&self) -> u64 {
        self.compilations
    }

    /// Merges another ledger into this one. Counters saturate at `u64::MAX`.
    pub fn merge(&mut self, other: &CostLedger) {
        self.run_seconds += other.run_seconds;
        self.compile_seconds += other.compile_seconds;
        self.runs = self.runs.saturating_add(other.runs);
        self.compilations = self.compilations.saturating_add(other.compilations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(runtime: f64, compile_time: f64, compiled: bool) -> Measurement {
        Measurement {
            runtime,
            compile_time,
            compiled,
        }
    }

    #[test]
    fn records_runs_and_compilations() {
        let mut ledger = CostLedger::new();
        ledger.record(&measurement(1.5, 0.5, true));
        ledger.record(&measurement(1.4, 0.0, false));
        assert_eq!(ledger.runs(), 2);
        assert_eq!(ledger.compilations(), 1);
        assert!((ledger.total_seconds() - 3.4).abs() < 1e-12);
        assert!((ledger.run_seconds() - 2.9).abs() < 1e-12);
        assert!((ledger.compile_seconds() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_both_ledgers() {
        let mut a = CostLedger::new();
        a.record(&measurement(1.0, 0.2, true));
        let mut b = CostLedger::new();
        b.record(&measurement(2.0, 0.0, false));
        b.record(&measurement(2.0, 0.3, true));
        a.merge(&b);
        assert_eq!(a.runs(), 3);
        assert_eq!(a.compilations(), 2);
        assert!((a.total_seconds() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_is_zero() {
        let ledger = CostLedger::new();
        assert_eq!(ledger.total_seconds(), 0.0);
        assert_eq!(ledger.runs(), 0);
    }

    #[test]
    fn from_parts_restores_the_accessors_exactly() {
        let mut original = CostLedger::new();
        original.record(&measurement(0.1 + 0.2, 1.0 / 3.0, true));
        original.record(&measurement(1e-300, 0.0, false));
        let restored = CostLedger::from_parts(
            original.run_seconds(),
            original.compile_seconds(),
            original.runs(),
            original.compilations(),
        );
        assert_eq!(restored, original);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut ledger = CostLedger::from_parts(1.0, 1.0, u64::MAX - 1, u64::MAX);
        ledger.record(&measurement(1.0, 0.5, true));
        ledger.record(&measurement(1.0, 0.5, true));
        assert_eq!(ledger.runs(), u64::MAX);
        assert_eq!(ledger.compilations(), u64::MAX);

        let mut merged = CostLedger::from_parts(0.0, 0.0, u64::MAX, 5);
        merged.merge(&ledger);
        assert_eq!(merged.runs(), u64::MAX);
        assert_eq!(merged.compilations(), u64::MAX);
    }
}
