//! Cost accounting.
//!
//! The paper measures training cost as "the cumulative compilation and
//! runtimes of any executables used in training" (§4.3). The ledger records
//! exactly that, separating compile from run time so experiments can report
//! both.

use serde::{Deserialize, Serialize};

use alic_sim::profiler::Measurement;

/// Cumulative profiling cost of a learning run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostLedger {
    run_seconds: f64,
    compile_seconds: f64,
    runs: u64,
    compilations: u64,
    quarantined: u64,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Reconstructs a ledger from previously captured state — the inverse of
    /// the [`run_seconds`](CostLedger::run_seconds) /
    /// [`compile_seconds`](CostLedger::compile_seconds) /
    /// [`runs`](CostLedger::runs) / [`compilations`](CostLedger::compilations)
    /// accessors. Used by the campaign ledger codec to restore checkpointed
    /// unit records bit-exactly.
    pub fn from_parts(
        run_seconds: f64,
        compile_seconds: f64,
        runs: u64,
        compilations: u64,
    ) -> Self {
        CostLedger {
            run_seconds,
            compile_seconds,
            runs,
            compilations,
            quarantined: 0,
        }
    }

    /// Returns the ledger with its quarantine counter set — the second half
    /// of the [`from_parts`](CostLedger::from_parts) reconstruction, kept
    /// separate so fault-free call sites never mention it.
    #[must_use]
    pub fn with_quarantined(mut self, quarantined: u64) -> Self {
        self.quarantined = quarantined;
        self
    }

    /// Records one measurement. The run/compilation counters saturate at
    /// `u64::MAX` instead of wrapping, so a pathological campaign can never
    /// report a *small* count after overflowing.
    pub fn record(&mut self, measurement: &Measurement) {
        self.run_seconds += measurement.runtime;
        self.compile_seconds += measurement.compile_time;
        self.runs = self.runs.saturating_add(1);
        if measurement.compiled {
            self.compilations = self.compilations.saturating_add(1);
        }
    }

    /// Total cost (compile + run), in seconds — the paper's x-axis.
    pub fn total_seconds(&self) -> f64 {
        self.run_seconds + self.compile_seconds
    }

    /// Cumulative runtime of all profiling runs, in seconds.
    pub fn run_seconds(&self) -> f64 {
        self.run_seconds
    }

    /// Cumulative compilation time, in seconds.
    pub fn compile_seconds(&self) -> f64 {
        self.compile_seconds
    }

    /// Number of profiling runs.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Number of compilations.
    pub fn compilations(&self) -> u64 {
        self.compilations
    }

    /// Counts one observation lost to quarantine: the evaluator produced
    /// only non-finite garbage for it, even after bounded retries. Lost
    /// observations contribute to *no* other counter or cost sum — their
    /// cost is unknowable — but the count is kept so a persistently broken
    /// evaluator is visible in the report. (Glitches that heal on retry are
    /// deliberately *not* counted here: they must leave the run's bytes
    /// untouched. The fault plane's own `injections` counters observe them.)
    pub fn record_quarantined(&mut self) {
        self.quarantined = self.quarantined.saturating_add(1);
    }

    /// Number of observations lost to quarantine.
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// Merges another ledger into this one. Counters saturate at `u64::MAX`.
    pub fn merge(&mut self, other: &CostLedger) {
        self.run_seconds += other.run_seconds;
        self.compile_seconds += other.compile_seconds;
        self.runs = self.runs.saturating_add(other.runs);
        self.compilations = self.compilations.saturating_add(other.compilations);
        self.quarantined = self.quarantined.saturating_add(other.quarantined);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(runtime: f64, compile_time: f64, compiled: bool) -> Measurement {
        Measurement {
            runtime,
            compile_time,
            compiled,
        }
    }

    #[test]
    fn records_runs_and_compilations() {
        let mut ledger = CostLedger::new();
        ledger.record(&measurement(1.5, 0.5, true));
        ledger.record(&measurement(1.4, 0.0, false));
        assert_eq!(ledger.runs(), 2);
        assert_eq!(ledger.compilations(), 1);
        assert!((ledger.total_seconds() - 3.4).abs() < 1e-12);
        assert!((ledger.run_seconds() - 2.9).abs() < 1e-12);
        assert!((ledger.compile_seconds() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_both_ledgers() {
        let mut a = CostLedger::new();
        a.record(&measurement(1.0, 0.2, true));
        let mut b = CostLedger::new();
        b.record(&measurement(2.0, 0.0, false));
        b.record(&measurement(2.0, 0.3, true));
        a.merge(&b);
        assert_eq!(a.runs(), 3);
        assert_eq!(a.compilations(), 2);
        assert!((a.total_seconds() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_is_zero() {
        let ledger = CostLedger::new();
        assert_eq!(ledger.total_seconds(), 0.0);
        assert_eq!(ledger.runs(), 0);
    }

    #[test]
    fn from_parts_restores_the_accessors_exactly() {
        let mut original = CostLedger::new();
        original.record(&measurement(0.1 + 0.2, 1.0 / 3.0, true));
        original.record(&measurement(1e-300, 0.0, false));
        let restored = CostLedger::from_parts(
            original.run_seconds(),
            original.compile_seconds(),
            original.runs(),
            original.compilations(),
        );
        assert_eq!(restored, original);
    }

    #[test]
    fn quarantined_measurements_count_without_contaminating_costs() {
        let mut ledger = CostLedger::new();
        ledger.record(&measurement(1.0, 0.5, true));
        ledger.record_quarantined();
        ledger.record_quarantined();
        assert_eq!(ledger.quarantined(), 2);
        assert_eq!(ledger.runs(), 1);
        assert!((ledger.total_seconds() - 1.5).abs() < 1e-12);

        let mut other = CostLedger::new().with_quarantined(3);
        other.merge(&ledger);
        assert_eq!(other.quarantined(), 5);

        // Saturation, as for every other counter.
        let mut saturated = CostLedger::new().with_quarantined(u64::MAX);
        saturated.record_quarantined();
        assert_eq!(saturated.quarantined(), u64::MAX);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut ledger = CostLedger::from_parts(1.0, 1.0, u64::MAX - 1, u64::MAX);
        ledger.record(&measurement(1.0, 0.5, true));
        ledger.record(&measurement(1.0, 0.5, true));
        assert_eq!(ledger.runs(), u64::MAX);
        assert_eq!(ledger.compilations(), u64::MAX);

        let mut merged = CostLedger::from_parts(0.0, 0.0, u64::MAX, 5);
        merged.merge(&ledger);
        assert_eq!(merged.runs(), u64::MAX);
        assert_eq!(merged.compilations(), u64::MAX);
    }
}
