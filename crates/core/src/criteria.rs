//! Completion criteria.
//!
//! Algorithm 1 stops after a fixed number of training instances, but the
//! paper notes the criterion "could have been based on, for example,
//! wall-clock time or some estimate of error in the final model". All three
//! are supported and can be combined; the learner stops as soon as any one of
//! them is met.

use serde::{Deserialize, Serialize};

/// Stopping conditions for a learning run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CompletionCriteria {
    /// Stop after this many profiling-cost seconds have been spent.
    pub max_cost_seconds: Option<f64>,
    /// Stop once the evaluated RMSE drops to or below this value.
    pub target_rmse: Option<f64>,
}

impl CompletionCriteria {
    /// No additional criteria: run until the iteration budget is exhausted.
    pub fn none() -> Self {
        CompletionCriteria::default()
    }

    /// Stop once the cumulative profiling cost exceeds `seconds`.
    pub fn with_max_cost(mut self, seconds: f64) -> Self {
        self.max_cost_seconds = Some(seconds);
        self
    }

    /// Stop once the evaluated RMSE reaches `rmse` or better.
    pub fn with_target_rmse(mut self, rmse: f64) -> Self {
        self.target_rmse = Some(rmse);
        self
    }

    /// Whether the run should stop given the current cost and (optionally)
    /// the most recently evaluated RMSE.
    pub fn is_met(&self, cost_seconds: f64, latest_rmse: Option<f64>) -> bool {
        if let Some(max_cost) = self.max_cost_seconds {
            if cost_seconds >= max_cost {
                return true;
            }
        }
        if let (Some(target), Some(rmse)) = (self.target_rmse, latest_rmse) {
            if rmse <= target {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_criteria_never_stop() {
        let criteria = CompletionCriteria::none();
        assert!(!criteria.is_met(1e12, Some(0.0)));
    }

    #[test]
    fn cost_budget_stops_the_run() {
        let criteria = CompletionCriteria::none().with_max_cost(100.0);
        assert!(!criteria.is_met(99.9, None));
        assert!(criteria.is_met(100.0, None));
    }

    #[test]
    fn rmse_target_requires_an_evaluation() {
        let criteria = CompletionCriteria::none().with_target_rmse(0.05);
        assert!(!criteria.is_met(10.0, None));
        assert!(!criteria.is_met(10.0, Some(0.06)));
        assert!(criteria.is_met(10.0, Some(0.05)));
    }

    #[test]
    fn either_criterion_suffices() {
        let criteria = CompletionCriteria::none()
            .with_max_cost(50.0)
            .with_target_rmse(0.01);
        assert!(criteria.is_met(60.0, Some(1.0)));
        assert!(criteria.is_met(1.0, Some(0.005)));
        assert!(!criteria.is_met(1.0, Some(1.0)));
    }
}
