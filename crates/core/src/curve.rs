//! Learning curves: model error as a function of profiling cost.
//!
//! The paper's headline evaluation (Table 1, Figures 5 and 6) is built on
//! curves of Root Mean Squared Error against cumulative profiling cost,
//! averaged over ten seeded repetitions. This module stores per-run curves,
//! resamples them onto a common cost grid and derives the Table 1 statistics
//! (lowest common error, cost to reach it, speed-up).

use serde::{Deserialize, Serialize};

/// One evaluation point of a learning run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Number of learning-loop iterations completed.
    pub iterations: usize,
    /// Number of distinct training examples visited so far.
    pub training_examples: usize,
    /// Number of profiling runs executed so far.
    pub observations: u64,
    /// Cumulative profiling cost (compile + run seconds).
    pub cost_seconds: f64,
    /// RMSE of the current model over the held-out test set.
    pub rmse: f64,
}

/// A sequence of evaluation points from one learning run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LearningCurve {
    points: Vec<CurvePoint>,
}

impl LearningCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        LearningCurve::default()
    }

    /// Appends an evaluation point.
    ///
    /// # Panics
    ///
    /// Panics if the cost is not non-decreasing with respect to the previous
    /// point (curves are monotone in cost by construction).
    pub fn push(&mut self, point: CurvePoint) {
        if let Some(last) = self.points.last() {
            assert!(
                point.cost_seconds >= last.cost_seconds,
                "curve points must have non-decreasing cost"
            );
        }
        self.points.push(point);
    }

    /// The evaluation points in chronological order.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Whether the curve has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of evaluation points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// RMSE of the last evaluation, if any.
    pub fn final_rmse(&self) -> Option<f64> {
        self.points.last().map(|p| p.rmse)
    }

    /// Best (lowest) RMSE achieved during the run, if any.
    pub fn best_rmse(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.rmse)
            .min_by(|a, b| a.partial_cmp(b).expect("finite RMSE"))
    }

    /// Total cost of the run, if any evaluation was made.
    pub fn total_cost(&self) -> Option<f64> {
        self.points.last().map(|p| p.cost_seconds)
    }

    /// First cost at which the RMSE dropped to `target` or below.
    pub fn cost_to_reach(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.rmse <= target)
            .map(|p| p.cost_seconds)
    }

    /// The RMSE in effect at cost `t` (the most recent evaluation at or
    /// before `t`); `None` if the curve has not started by `t`.
    pub fn rmse_at_cost(&self, t: f64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|p| p.cost_seconds <= t)
            .last()
            .map(|p| p.rmse)
    }
}

impl FromIterator<CurvePoint> for LearningCurve {
    fn from_iter<I: IntoIterator<Item = CurvePoint>>(iter: I) -> Self {
        let mut curve = LearningCurve::new();
        for p in iter {
            curve.push(p);
        }
        curve
    }
}

/// An averaged curve over repeated runs, resampled on a common cost grid.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AveragedCurve {
    /// Cost grid, in seconds.
    pub costs: Vec<f64>,
    /// Mean RMSE across runs at each grid cost.
    pub mean_rmse: Vec<f64>,
}

impl AveragedCurve {
    /// Lowest mean RMSE attained on the grid.
    pub fn best_rmse(&self) -> Option<f64> {
        self.mean_rmse
            .iter()
            .copied()
            .min_by(|a, b| a.partial_cmp(b).expect("finite RMSE"))
    }

    /// First grid cost at which the mean RMSE is at or below `target`.
    pub fn cost_to_reach(&self, target: f64) -> Option<f64> {
        self.costs
            .iter()
            .zip(&self.mean_rmse)
            .find(|(_, r)| **r <= target)
            .map(|(c, _)| *c)
    }
}

/// Builds a linear cost grid covering the range where *all* curves are
/// active: from the largest first-evaluation cost to the smallest
/// final-evaluation cost (the "range of time over which all sampling plans
/// are simultaneously active", §5.2). Returns `None` when the ranges do not
/// overlap.
pub fn common_cost_grid(curve_sets: &[&[LearningCurve]], resolution: usize) -> Option<Vec<f64>> {
    let mut start: f64 = 0.0;
    let mut end = f64::INFINITY;
    for curves in curve_sets {
        for curve in curves.iter() {
            let first = curve.points().first()?.cost_seconds;
            let last = curve.points().last()?.cost_seconds;
            start = start.max(first);
            end = end.min(last);
        }
    }
    // `end` stays infinite when no curve set contributed a point (empty
    // outer slice, or only empty inner slices): there is no overlap to grid.
    if !end.is_finite()
        || end.partial_cmp(&start) != Some(std::cmp::Ordering::Greater)
        || resolution < 2
    {
        return None;
    }
    let step = (end - start) / (resolution - 1) as f64;
    Some((0..resolution).map(|i| start + step * i as f64).collect())
}

/// Averages repeated runs of one approach onto `grid` using
/// last-evaluation-carried-forward interpolation. Grid costs that precede a
/// run's first evaluation use that run's first RMSE.
pub fn average_curves(curves: &[LearningCurve], grid: &[f64]) -> AveragedCurve {
    let mut mean_rmse = Vec::with_capacity(grid.len());
    for &t in grid {
        let mut total = 0.0;
        let mut count = 0usize;
        for curve in curves {
            if curve.is_empty() {
                continue;
            }
            let rmse = curve
                .rmse_at_cost(t)
                .unwrap_or_else(|| curve.points()[0].rmse);
            total += rmse;
            count += 1;
        }
        mean_rmse.push(if count == 0 {
            f64::NAN
        } else {
            total / count as f64
        });
    }
    AveragedCurve {
        costs: grid.to_vec(),
        mean_rmse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(cost: f64, rmse: f64) -> CurvePoint {
        CurvePoint {
            iterations: 0,
            training_examples: 0,
            observations: 0,
            cost_seconds: cost,
            rmse,
        }
    }

    fn curve(points: &[(f64, f64)]) -> LearningCurve {
        points.iter().map(|&(c, r)| point(c, r)).collect()
    }

    #[test]
    fn basic_accessors() {
        let c = curve(&[(1.0, 0.5), (2.0, 0.3), (3.0, 0.35)]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.final_rmse(), Some(0.35));
        assert_eq!(c.best_rmse(), Some(0.3));
        assert_eq!(c.total_cost(), Some(3.0));
        assert_eq!(c.cost_to_reach(0.3), Some(2.0));
        assert_eq!(c.cost_to_reach(0.1), None);
    }

    #[test]
    fn rmse_at_cost_carries_the_last_evaluation_forward() {
        let c = curve(&[(1.0, 0.5), (2.0, 0.3)]);
        assert_eq!(c.rmse_at_cost(0.5), None);
        assert_eq!(c.rmse_at_cost(1.5), Some(0.5));
        assert_eq!(c.rmse_at_cost(10.0), Some(0.3));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_cost_is_rejected() {
        let mut c = curve(&[(2.0, 0.5)]);
        c.push(point(1.0, 0.4));
    }

    #[test]
    fn common_grid_covers_the_overlap() {
        let a = vec![curve(&[(1.0, 0.5), (10.0, 0.2)])];
        let b = vec![curve(&[(2.0, 0.6), (8.0, 0.3)])];
        let grid = common_cost_grid(&[&a, &b], 5).unwrap();
        assert_eq!(grid.len(), 5);
        assert!((grid[0] - 2.0).abs() < 1e-12);
        assert!((grid[4] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn non_overlapping_ranges_give_no_grid() {
        let a = vec![curve(&[(1.0, 0.5), (2.0, 0.2)])];
        let b = vec![curve(&[(5.0, 0.6), (8.0, 0.3)])];
        assert!(common_cost_grid(&[&a, &b], 5).is_none());
    }

    #[test]
    fn single_point_curves_have_no_common_grid() {
        // A curve whose first and last evaluation coincide spans a zero-width
        // cost range: there is no interval over which all curves are active.
        let a = vec![curve(&[(3.0, 0.5)])];
        let b = vec![curve(&[(1.0, 0.6), (8.0, 0.3)])];
        assert!(common_cost_grid(&[&a, &b], 5).is_none());
        // Two single-point curves at the same cost still give a degenerate
        // (zero-width) range.
        let c = vec![curve(&[(3.0, 0.7)])];
        assert!(common_cost_grid(&[&a, &c], 5).is_none());
    }

    #[test]
    fn empty_curve_sets_have_no_common_grid() {
        // No curve sets at all, and sets containing an empty curve, both
        // mean "no overlap", not an unbounded grid.
        assert!(common_cost_grid(&[], 5).is_none());
        let empty: Vec<LearningCurve> = vec![LearningCurve::new()];
        assert!(common_cost_grid(&[&empty], 5).is_none());
        let full = vec![curve(&[(1.0, 0.5), (2.0, 0.4)])];
        assert!(common_cost_grid(&[&full, &empty], 5).is_none());
    }

    #[test]
    fn resolution_below_two_gives_no_grid() {
        let a = vec![curve(&[(1.0, 0.5), (10.0, 0.2)])];
        assert!(common_cost_grid(&[&a], 1).is_none());
        assert!(common_cost_grid(&[&a], 0).is_none());
    }

    #[test]
    fn averaging_without_runs_gives_nan_means() {
        let averaged = average_curves(&[], &[1.0, 2.0]);
        assert_eq!(averaged.costs, vec![1.0, 2.0]);
        assert!(averaged.mean_rmse.iter().all(|r| r.is_nan()));
        // Empty curves are skipped, not counted as zero.
        let with_empty = vec![LearningCurve::new(), curve(&[(1.0, 0.4)])];
        let averaged = average_curves(&with_empty, &[1.5]);
        assert_eq!(averaged.mean_rmse, vec![0.4]);
    }

    #[test]
    fn averaging_on_an_empty_grid_is_empty() {
        let runs = vec![curve(&[(1.0, 0.4), (2.0, 0.2)])];
        let averaged = average_curves(&runs, &[]);
        assert!(averaged.costs.is_empty());
        assert!(averaged.mean_rmse.is_empty());
        assert!(averaged.best_rmse().is_none());
        assert!(averaged.cost_to_reach(0.1).is_none());
    }

    #[test]
    fn averaging_single_point_curves_carries_the_value_everywhere() {
        let runs = vec![curve(&[(2.0, 0.5)]), curve(&[(4.0, 0.3)])];
        // Before either curve starts, each contributes its first RMSE; after,
        // the single evaluation is carried forward.
        let averaged = average_curves(&runs, &[1.0, 3.0, 9.0]);
        assert_eq!(averaged.mean_rmse, vec![0.4, 0.4, 0.4]);
    }

    #[test]
    fn averaging_two_identical_curves_is_identity() {
        let runs = vec![
            curve(&[(1.0, 0.4), (2.0, 0.2)]),
            curve(&[(1.0, 0.4), (2.0, 0.2)]),
        ];
        let averaged = average_curves(&runs, &[1.0, 1.5, 2.0]);
        assert_eq!(averaged.mean_rmse, vec![0.4, 0.4, 0.2]);
        assert_eq!(averaged.best_rmse(), Some(0.2));
        assert_eq!(averaged.cost_to_reach(0.25), Some(2.0));
    }

    #[test]
    fn averaging_mixes_runs_pointwise() {
        let runs = vec![
            curve(&[(1.0, 0.4), (3.0, 0.2)]),
            curve(&[(1.0, 0.8), (2.0, 0.6)]),
        ];
        let averaged = average_curves(&runs, &[1.0, 2.5]);
        assert!((averaged.mean_rmse[0] - 0.6).abs() < 1e-12);
        assert!((averaged.mean_rmse[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn grid_costs_before_first_evaluation_use_first_rmse() {
        let runs = vec![curve(&[(5.0, 0.4), (6.0, 0.2)])];
        let averaged = average_curves(&runs, &[1.0, 5.5]);
        assert_eq!(averaged.mean_rmse[0], 0.4);
        assert_eq!(averaged.mean_rmse[1], 0.4);
    }
}
