//! The active-learning loop (Algorithm 1).
//!
//! [`ActiveLearner::run`] reproduces Algorithm 1 of the paper, generalized
//! over the sampling plan so that the same loop implements the paper's
//! variable-observation technique *and* the two fixed-plan baselines it is
//! compared against:
//!
//! 1. Seed the model with `initial_examples` randomly chosen configurations,
//!    each profiled `initial_observations` times (line 2–4).
//! 2. At each iteration build a candidate set of `candidates_per_iteration`
//!    unseen configurations, plus — for the sequential plan — every visited
//!    configuration that has fewer than `max_observations` observations
//!    (lines 7–11).
//! 3. Score the candidates with the acquisition strategy and pick the best
//!    (lines 12–20).
//! 4. Profile the winner (one observation for the sequential plan, the plan's
//!    fixed count otherwise), update the model and the bookkeeping
//!    (lines 21–28).
//! 5. Periodically evaluate the model's RMSE on the held-out test set and
//!    record a learning-curve point.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::Rng as _;
use serde::{Deserialize, Serialize};

use alic_data::dataset::Dataset;
use alic_data::split::TrainTestSplit;
use alic_model::ActiveSurrogate;
use alic_sim::profiler::{Measurement, Profiler};
use alic_sim::Configuration;
use alic_stats::error::rmse;
use alic_stats::rng::{seeded_stream, Rng as StatsRng};
use alic_stats::summary::OnlineStats;
use alic_stats::FeatureMatrix;

use crate::acquisition::Acquisition;
use crate::criteria::CompletionCriteria;
use crate::curve::{CurvePoint, LearningCurve};
use crate::ledger::CostLedger;
use crate::plan::SamplingPlan;
use crate::{CoreError, Result};

/// Configuration of one learning run (the parameters of Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearnerConfig {
    /// `n_init`: number of randomly chosen seed examples (the paper uses 5).
    pub initial_examples: usize,
    /// `n_obs` for the seed examples (the paper uses 35).
    pub initial_observations: usize,
    /// `n_c`: number of fresh candidates considered per iteration (500).
    pub candidates_per_iteration: usize,
    /// Iteration budget (`n_max`, the paper uses 2,500).
    pub max_iterations: usize,
    /// Evaluate the model on the test set every this many iterations.
    pub evaluate_every: usize,
    /// Acquisition strategy (§3.3).
    pub acquisition: Acquisition,
    /// Sampling plan (fixed or sequential).
    pub plan: SamplingPlan,
    /// Additional stopping conditions.
    pub criteria: CompletionCriteria,
    /// Seed for candidate sampling and tie breaking.
    pub seed: u64,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        LearnerConfig {
            initial_examples: 5,
            initial_observations: 35,
            candidates_per_iteration: 500,
            max_iterations: 2_500,
            evaluate_every: 25,
            acquisition: Acquisition::default_alc(),
            plan: SamplingPlan::default(),
            criteria: CompletionCriteria::none(),
            seed: 0,
        }
    }
}

/// Per-example profiling record kept by the learner (the paper's map `D`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExampleRecord {
    /// Index of the example in the dataset.
    pub dataset_index: usize,
    /// Running statistics of the runtimes observed for this example.
    pub runtimes: OnlineStats,
}

/// Outcome of one learning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnerRun {
    /// The plan that produced this run.
    pub plan: SamplingPlan,
    /// RMSE-versus-cost learning curve.
    pub curve: LearningCurve,
    /// Cumulative profiling cost.
    pub ledger: CostLedger,
    /// Profiling record per visited example.
    pub visited: Vec<ExampleRecord>,
    /// Total learning-loop iterations executed.
    pub iterations: usize,
}

impl LearnerRun {
    /// Number of distinct training examples visited.
    pub fn distinct_examples(&self) -> usize {
        self.visited.len()
    }

    /// Total observations taken across all examples.
    pub fn total_observations(&self) -> usize {
        self.visited.iter().map(|r| r.runtimes.count()).sum()
    }

    /// Mean number of observations per visited example — the statistic the
    /// sequential plan is designed to minimize.
    pub fn mean_observations_per_example(&self) -> f64 {
        if self.visited.is_empty() {
            0.0
        } else {
            self.total_observations() as f64 / self.visited.len() as f64
        }
    }
}

/// Bounded re-measure attempts after a non-finite measurement. A flaky
/// evaluator that recovers within this budget leaves no trace beyond the
/// ledger's quarantine counter; one that doesn't costs the learner the
/// observation (see [`measure_finite`]).
pub const OBSERVATION_RETRIES: usize = 2;

/// Takes one *finite* measurement, retrying up to [`OBSERVATION_RETRIES`]
/// times when the profiler returns a NaN or infinite runtime/compile time.
///
/// This is the learner's half of the uniform non-finite policy (the models'
/// half is `alic_model::validate_observation`): a broken measurement is never
/// recorded in the cost ledger — its cost is unknowable — and never reaches
/// a model or the learning curve. A glitch that heals within the retry
/// budget leaves *no* trace in the run at all (the report must stay
/// byte-identical to a fault-free run's); only when every attempt is
/// non-finite is the observation abandoned, counted in the ledger's
/// [`quarantined`](CostLedger::quarantined) counter, and `None` returned.
fn measure_finite<P: Profiler>(
    profiler: &mut P,
    configuration: &Configuration,
    ledger: &mut CostLedger,
) -> Option<Measurement> {
    for _ in 0..=OBSERVATION_RETRIES {
        let m = profiler.measure(configuration);
        if m.runtime.is_finite() && m.compile_time.is_finite() {
            ledger.record(&m);
            return Some(m);
        }
    }
    ledger.record_quarantined();
    None
}

/// The active learner: couples a profiler with the loop of Algorithm 1.
#[derive(Debug)]
pub struct ActiveLearner<'a, P: Profiler> {
    config: LearnerConfig,
    profiler: &'a mut P,
}

impl<'a, P: Profiler> ActiveLearner<'a, P> {
    /// Creates a learner that will profile through `profiler`.
    pub fn new(config: LearnerConfig, profiler: &'a mut P) -> Self {
        ActiveLearner { config, profiler }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LearnerConfig {
        &self.config
    }

    /// Runs Algorithm 1 with the given surrogate `model` over the training
    /// pool defined by `dataset` and `split`, evaluating on the split's test
    /// points.
    ///
    /// The model is only accessed through [`ActiveSurrogate`], so both
    /// concrete models and `dyn ActiveSurrogate` trait objects built from a
    /// [`SurrogateSpec`](alic_model::SurrogateSpec) work.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is inconsistent with the pool
    /// size or when the surrogate model fails.
    pub fn run<M: ActiveSurrogate + ?Sized>(
        &mut self,
        model: &mut M,
        dataset: &Dataset,
        split: &TrainTestSplit,
    ) -> Result<LearnerRun> {
        let config = self.config;
        if config.initial_examples == 0 {
            return Err(CoreError::InvalidConfig(
                "at least one seed example is required".to_string(),
            ));
        }
        if config.evaluate_every == 0 {
            return Err(CoreError::InvalidConfig(
                "evaluate_every must be positive".to_string(),
            ));
        }
        let pool: Vec<usize> = split.train_indices().to_vec();
        if pool.len() < config.initial_examples {
            return Err(CoreError::InsufficientData {
                needed: config.initial_examples,
                available: pool.len(),
            });
        }
        if split.test_indices().is_empty() {
            return Err(CoreError::InsufficientData {
                needed: 1,
                available: 0,
            });
        }

        let mut rng: StatsRng = seeded_stream(config.seed, 0xAC71);

        // Pre-compute normalized features for the pool and the test set, in
        // flat row-major storage. Candidate and reference sets below are
        // gathered as row views into these matrices, so the hot loop never
        // clones a feature vector.
        let pool_features: FeatureMatrix = dataset.features_matrix(&pool);
        let test_features: FeatureMatrix = dataset.features_matrix(split.test_indices());
        let test_targets: Vec<f64> = split
            .test_indices()
            .iter()
            .map(|&i| dataset.points()[i].mean_runtime)
            .collect();

        let mut ledger = CostLedger::new();
        let mut curve = LearningCurve::new();
        // Position (within `pool`) -> record index in `visited`.
        let mut visited_positions: BTreeMap<usize, usize> = BTreeMap::new();
        let mut visited: Vec<ExampleRecord> = Vec::new();

        // --- Seeding (Algorithm 1, lines 2-4). -------------------------------
        let mut positions: Vec<usize> = (0..pool.len()).collect();
        positions.shuffle(&mut rng);
        let seed_positions: Vec<usize> = positions[..config.initial_examples].to_vec();
        let mut seed_ys = Vec::with_capacity(config.initial_examples);
        for &pos in &seed_positions {
            let dataset_index = pool[pos];
            let configuration = &dataset.points()[dataset_index].configuration;
            let mut stats = OnlineStats::new();
            for _ in 0..config.initial_observations.max(1) {
                if let Some(m) = measure_finite(self.profiler, configuration, &mut ledger) {
                    stats.push(m.runtime);
                }
            }
            if stats.count() == 0 {
                // Without a single finite observation the seed example has no
                // target at all; the model cannot be fitted honestly.
                return Err(CoreError::Evaluator(format!(
                    "seed example {dataset_index} produced no finite measurement in {} attempts",
                    config.initial_observations.max(1) * (OBSERVATION_RETRIES + 1)
                )));
            }
            seed_ys.push(stats.mean());
            visited_positions.insert(pos, visited.len());
            visited.push(ExampleRecord {
                dataset_index,
                runtimes: stats,
            });
        }
        // The seed training set is an index gather into the pool matrix —
        // like every later `update`, `fit` reads rows straight from the
        // dataset's flat storage without cloning a feature vector.
        let seed_views: Vec<&[f64]> = pool_features.gather(seed_positions.iter().copied());
        model.fit(&seed_views, &seed_ys)?;
        drop(seed_views);

        let mut latest_rmse = evaluate_rmse(model, &test_features, &test_targets)?;
        curve.push(CurvePoint {
            iterations: 0,
            training_examples: visited.len(),
            observations: ledger.runs(),
            cost_seconds: ledger.total_seconds(),
            rmse: latest_rmse,
        });

        // --- Main loop (Algorithm 1, lines 6-29). -----------------------------
        let mut unseen: Vec<usize> = positions[config.initial_examples..].to_vec();
        let mut revisits: Vec<usize> = Vec::new();
        // Candidate row views are rebuilt every iteration but the buffer is
        // hoisted out of the loop, so the steady state allocates nothing.
        let mut candidate_rows: Vec<&[f64]> = Vec::new();
        let mut iterations = 0usize;
        while iterations < config.max_iterations {
            if config
                .criteria
                .is_met(ledger.total_seconds(), Some(latest_rmse))
            {
                break;
            }
            // Candidate set: n_c fresh positions, drawn with a partial
            // Fisher–Yates over the unseen pool — O(n_c) work instead of the
            // O(|pool|) full shuffle, on the same RNG stream.
            let fresh_count = config.candidates_per_iteration.min(unseen.len());
            for i in 0..fresh_count {
                let j = rng.gen_range(i..unseen.len());
                unseen.swap(i, j);
            }
            // ...plus, for the sequential plan, visited positions that have
            // not yet hit the observation cap (lines 8-11).
            revisits.clear();
            if config.plan.allows_revisits() {
                for (&pos, &record) in &visited_positions {
                    if visited[record].runtimes.count() < config.plan.max_observations() {
                        revisits.push(pos);
                    }
                }
            }
            if fresh_count + revisits.len() == 0 {
                break;
            }
            // Candidates are zero-copy row views into the pool matrix, fresh
            // ones first so that score ties resolve towards exploration.
            candidate_rows.clear();
            candidate_rows.extend(unseen[..fresh_count].iter().map(|&p| pool_features.row(p)));
            candidate_rows.extend(revisits.iter().map(|&p| pool_features.row(p)));
            let chosen = config
                .acquisition
                .select(model, &candidate_rows, &pool_features, &mut rng)?
                .expect("candidate set is non-empty");
            // A chosen index below `fresh_count` addresses the shuffled
            // prefix of `unseen` directly, which makes the first-visit test
            // and the unseen-pool removal below O(1).
            let first_visit = chosen < fresh_count;
            let position = if first_visit {
                unseen[chosen]
            } else {
                revisits[chosen - fresh_count]
            };
            let dataset_index = pool[position];
            let configuration = &dataset.points()[dataset_index].configuration;
            let features = pool_features.row(position);

            // Profile the winner according to the sampling plan.
            let observations = config.plan.observations_per_visit();
            let mut batch = OnlineStats::new();
            for _ in 0..observations {
                if let Some(m) = measure_finite(self.profiler, configuration, &mut ledger) {
                    batch.push(m.runtime);
                }
            }
            // Fixed plans feed the mean of the batch; the sequential plan
            // feeds the single raw observation. A batch that lost *every*
            // measurement to quarantine (ledger counts them) has no target:
            // the model is left untouched, but the bookkeeping below still
            // runs so the visit is not re-selected forever.
            if batch.count() > 0 {
                let y = batch.mean();
                model.update(features, y)?;
            }

            // Bookkeeping (lines 23-28).
            if first_visit {
                visited_positions.insert(position, visited.len());
                visited.push(ExampleRecord {
                    dataset_index,
                    runtimes: batch,
                });
                // Remove from the unseen pool: the winner sits at `chosen`
                // in the shuffled prefix.
                unseen.swap_remove(chosen);
            } else {
                let record = visited_positions[&position];
                visited[record].runtimes.merge(&batch);
            }

            iterations += 1;
            if iterations.is_multiple_of(config.evaluate_every)
                || iterations == config.max_iterations
            {
                latest_rmse = evaluate_rmse(model, &test_features, &test_targets)?;
                curve.push(CurvePoint {
                    iterations,
                    training_examples: visited.len(),
                    observations: ledger.runs(),
                    cost_seconds: ledger.total_seconds(),
                    rmse: latest_rmse,
                });
            }
        }

        Ok(LearnerRun {
            plan: config.plan,
            curve,
            ledger,
            visited,
            iterations,
        })
    }
}

/// RMSE of `model` over a test set of normalized features and target mean
/// runtimes (Equation 1).
///
/// Goes through [`predict_batch`](alic_model::SurrogateModel::predict_batch),
/// so models with a batched (and parallel) predictor — the dynamic tree in
/// particular — evaluate the whole test set in one call.
pub fn evaluate_rmse<M: ActiveSurrogate + ?Sized>(
    model: &M,
    test_features: &FeatureMatrix,
    test_targets: &[f64],
) -> std::result::Result<f64, CoreError> {
    let rows = test_features.row_views();
    let predictions: Vec<f64> = model
        .predict_batch(&rows)
        .map_err(CoreError::from)?
        .into_iter()
        .map(|p| p.mean)
        .collect();
    rmse(&predictions, test_targets).map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alic_data::dataset::{Dataset, DatasetConfig};
    use alic_model::dynatree::{DynaTree, DynaTreeConfig};
    use alic_sim::noise::NoiseProfile;
    use alic_sim::profiler::SimulatedProfiler;
    use alic_sim::space::ParamSpec;
    use alic_sim::KernelSpec;

    fn toy_profiler(noise: NoiseProfile, seed: u64) -> SimulatedProfiler {
        let spec = KernelSpec::new(
            "toy",
            vec![ParamSpec::unroll("u1"), ParamSpec::unroll("u2")],
            1.0,
            0.5,
            noise,
        )
        .unwrap()
        .with_surface_seed(7);
        SimulatedProfiler::new(spec, seed)
    }

    fn toy_setup(noise: NoiseProfile) -> (SimulatedProfiler, Dataset, TrainTestSplit) {
        let mut profiler = toy_profiler(noise, 1);
        let dataset = Dataset::generate(
            &mut profiler,
            &DatasetConfig {
                configurations: 200,
                observations: 5,
                seed: 2,
            },
        );
        let split = dataset.split(150, 3);
        (toy_profiler(noise, 11), dataset, split)
    }

    fn small_config(plan: SamplingPlan) -> LearnerConfig {
        LearnerConfig {
            initial_examples: 5,
            initial_observations: 5,
            candidates_per_iteration: 30,
            max_iterations: 60,
            evaluate_every: 15,
            acquisition: Acquisition::Alc { reference_size: 20 },
            plan,
            criteria: CompletionCriteria::none(),
            seed: 5,
        }
    }

    fn small_model(seed: u64) -> DynaTree {
        DynaTree::new(DynaTreeConfig {
            particles: 40,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn sequential_run_produces_a_monotone_cost_curve() {
        let (mut profiler, dataset, split) = toy_setup(NoiseProfile::moderate());
        let config = small_config(SamplingPlan::sequential(5));
        let mut learner = ActiveLearner::new(config, &mut profiler);
        let mut model = small_model(1);
        let run = learner.run(&mut model, &dataset, &split).unwrap();

        assert_eq!(run.iterations, 60);
        assert!(run.curve.len() >= 4);
        let costs: Vec<f64> = run.curve.points().iter().map(|p| p.cost_seconds).collect();
        assert!(costs.windows(2).all(|w| w[1] >= w[0]));
        assert!(run.curve.final_rmse().unwrap().is_finite());
        assert!(run.ledger.total_seconds() > 0.0);
    }

    #[test]
    fn sequential_plan_never_exceeds_the_observation_cap() {
        let (mut profiler, dataset, split) = toy_setup(NoiseProfile::moderate());
        let cap = 5;
        let config = small_config(SamplingPlan::sequential(cap));
        let mut learner = ActiveLearner::new(config, &mut profiler);
        let mut model = small_model(2);
        let run = learner.run(&mut model, &dataset, &split).unwrap();
        for record in &run.visited {
            assert!(
                record.runtimes.count() <= cap.max(config.initial_observations),
                "example exceeded the cap: {} observations",
                record.runtimes.count()
            );
        }
    }

    #[test]
    fn fixed_plan_profiles_each_example_exactly_n_times() {
        let (mut profiler, dataset, split) = toy_setup(NoiseProfile::quiet());
        let config = LearnerConfig {
            plan: SamplingPlan::fixed(3),
            initial_observations: 3,
            max_iterations: 20,
            ..small_config(SamplingPlan::fixed(3))
        };
        let mut learner = ActiveLearner::new(config, &mut profiler);
        let mut model = small_model(3);
        let run = learner.run(&mut model, &dataset, &split).unwrap();
        assert!(run.visited.iter().all(|r| r.runtimes.count() == 3));
        // Seed examples + one new example per iteration.
        assert_eq!(run.distinct_examples(), 5 + 20);
        assert_eq!(run.total_observations(), (5 + 20) * 3);
    }

    #[test]
    fn sequential_plan_spends_less_per_iteration_than_fixed35() {
        let (mut profiler_a, dataset, split) = toy_setup(NoiseProfile::quiet());
        let iterations = 40;
        let fixed = LearnerConfig {
            plan: SamplingPlan::fixed35(),
            initial_observations: 35,
            max_iterations: iterations,
            ..small_config(SamplingPlan::fixed35())
        };
        let mut learner = ActiveLearner::new(fixed, &mut profiler_a);
        let mut model = small_model(4);
        let run_fixed = learner.run(&mut model, &dataset, &split).unwrap();

        let mut profiler_b = toy_profiler(NoiseProfile::quiet(), 11);
        let sequential = LearnerConfig {
            plan: SamplingPlan::sequential(35),
            initial_observations: 35,
            max_iterations: iterations,
            ..small_config(SamplingPlan::sequential(35))
        };
        let mut learner = ActiveLearner::new(sequential, &mut profiler_b);
        let mut model = small_model(4);
        let run_seq = learner.run(&mut model, &dataset, &split).unwrap();

        assert!(
            run_seq.ledger.total_seconds() < run_fixed.ledger.total_seconds() / 3.0,
            "sequential cost {} should be far below fixed cost {}",
            run_seq.ledger.total_seconds(),
            run_fixed.ledger.total_seconds()
        );
    }

    #[test]
    fn learner_reduces_error_relative_to_the_seed_model() {
        let (mut profiler, dataset, split) = toy_setup(NoiseProfile::quiet());
        let config = LearnerConfig {
            max_iterations: 120,
            candidates_per_iteration: 40,
            ..small_config(SamplingPlan::sequential(10))
        };
        let mut learner = ActiveLearner::new(config, &mut profiler);
        let mut model = small_model(5);
        let run = learner.run(&mut model, &dataset, &split).unwrap();
        let first = run.curve.points().first().unwrap().rmse;
        let best = run.curve.best_rmse().unwrap();
        assert!(
            best < first,
            "training should reduce error: first {first}, best {best}"
        );
    }

    #[test]
    fn cost_budget_stops_the_run_early() {
        let (mut profiler, dataset, split) = toy_setup(NoiseProfile::quiet());
        let config = LearnerConfig {
            criteria: CompletionCriteria::none().with_max_cost(40.0),
            max_iterations: 10_000,
            ..small_config(SamplingPlan::sequential(5))
        };
        let mut learner = ActiveLearner::new(config, &mut profiler);
        let mut model = small_model(6);
        let run = learner.run(&mut model, &dataset, &split).unwrap();
        assert!(run.iterations < 10_000);
        // The run may overshoot by at most one iteration's worth of cost.
        assert!(run.ledger.total_seconds() < 80.0);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let (mut profiler, dataset, split) = toy_setup(NoiseProfile::quiet());
        let config = LearnerConfig {
            initial_examples: 0,
            ..small_config(SamplingPlan::sequential(5))
        };
        let mut learner = ActiveLearner::new(config, &mut profiler);
        let mut model = small_model(7);
        assert!(matches!(
            learner.run(&mut model, &dataset, &split),
            Err(CoreError::InvalidConfig(_))
        ));

        let config = LearnerConfig {
            initial_examples: 10_000,
            ..small_config(SamplingPlan::sequential(5))
        };
        let mut learner = ActiveLearner::new(config, &mut profiler);
        assert!(matches!(
            learner.run(&mut model, &dataset, &split),
            Err(CoreError::InsufficientData { .. })
        ));
    }

    /// Wraps a profiler and corrupts deterministic calls to NaN. `period`
    /// faults replay the true measurement on the retry (a transient glitch,
    /// like `alic_core::fault::ChaosProfiler`); calls inside `nan_window`
    /// are NaN unconditionally (a persistently broken evaluator).
    struct FlakyProfiler {
        inner: SimulatedProfiler,
        pending: Option<Measurement>,
        period: usize,
        nan_window: std::ops::Range<usize>,
        calls: usize,
    }

    impl FlakyProfiler {
        fn transient(inner: SimulatedProfiler, period: usize) -> Self {
            FlakyProfiler {
                inner,
                pending: None,
                period,
                nan_window: 0..0,
                calls: 0,
            }
        }

        fn broken_during(inner: SimulatedProfiler, nan_window: std::ops::Range<usize>) -> Self {
            FlakyProfiler {
                inner,
                pending: None,
                period: usize::MAX,
                nan_window,
                calls: 0,
            }
        }
    }

    impl Profiler for FlakyProfiler {
        fn space(&self) -> &alic_sim::ParameterSpace {
            self.inner.space()
        }

        fn kernel_name(&self) -> &str {
            self.inner.kernel_name()
        }

        fn measure(&mut self, config: &Configuration) -> Measurement {
            self.calls += 1;
            if self.nan_window.contains(&(self.calls - 1)) {
                return Measurement {
                    runtime: f64::NAN,
                    compile_time: 0.0,
                    compiled: false,
                };
            }
            if let Some(m) = self.pending.take() {
                return m;
            }
            let m = self.inner.measure(config);
            if self.calls.is_multiple_of(self.period) {
                self.pending = Some(m);
                return Measurement {
                    runtime: f64::NAN,
                    ..m
                };
            }
            m
        }

        fn true_mean(&self, config: &Configuration) -> f64 {
            self.inner.true_mean(config)
        }
    }

    #[test]
    fn transient_nan_measurements_heal_to_an_identical_run() {
        let (mut clean, dataset, split) = toy_setup(NoiseProfile::moderate());
        let config = small_config(SamplingPlan::sequential(5));
        let mut learner = ActiveLearner::new(config, &mut clean);
        let mut model = small_model(1);
        let baseline = learner.run(&mut model, &dataset, &split).unwrap();

        // Same inner profiler, but every 7th measurement comes back NaN once
        // and the retry replays the true value: the retry policy must absorb
        // the glitches without leaving ANY trace — the healed run is equal
        // to the clean one, quarantine counter included.
        let mut flaky = FlakyProfiler::transient(toy_profiler(NoiseProfile::moderate(), 11), 7);
        let mut learner = ActiveLearner::new(config, &mut flaky);
        let mut model = small_model(1);
        let healed = learner.run(&mut model, &dataset, &split).unwrap();

        assert!(flaky.calls > 60, "the fault path must actually have fired");
        assert_eq!(healed, baseline);
        assert_eq!(healed.ledger.quarantined(), 0);
    }

    #[test]
    fn exhausted_observation_retries_lose_the_observation_not_the_run() {
        let (_, dataset, split) = toy_setup(NoiseProfile::moderate());
        let config = small_config(SamplingPlan::sequential(5));
        // Three consecutive NaN calls well after seeding: one observation's
        // full retry budget (1 + OBSERVATION_RETRIES) is exhausted and the
        // observation is quarantined, but the run completes.
        let start = 40;
        let mut flaky = FlakyProfiler::broken_during(
            toy_profiler(NoiseProfile::moderate(), 11),
            start..start + OBSERVATION_RETRIES + 1,
        );
        let mut learner = ActiveLearner::new(config, &mut flaky);
        let mut model = small_model(1);
        let run = learner.run(&mut model, &dataset, &split).unwrap();
        assert_eq!(run.ledger.quarantined(), 1);
        assert_eq!(run.iterations, config.max_iterations);
        assert!(run.curve.final_rmse().unwrap().is_finite());
    }

    #[test]
    fn a_dead_evaluator_during_seeding_is_an_evaluator_error() {
        let (_, dataset, split) = toy_setup(NoiseProfile::moderate());
        let config = small_config(SamplingPlan::sequential(5));
        let mut dead =
            FlakyProfiler::broken_during(toy_profiler(NoiseProfile::moderate(), 11), 0..usize::MAX);
        let mut learner = ActiveLearner::new(config, &mut dead);
        let mut model = small_model(1);
        assert!(matches!(
            learner.run(&mut model, &dataset, &split),
            Err(CoreError::Evaluator(_))
        ));
    }

    #[test]
    fn runs_are_reproducible_for_identical_seeds() {
        let run_once = || {
            let mut profiler = toy_profiler(NoiseProfile::moderate(), 21);
            let dataset = {
                let mut gen_profiler = toy_profiler(NoiseProfile::moderate(), 1);
                Dataset::generate(
                    &mut gen_profiler,
                    &DatasetConfig {
                        configurations: 150,
                        observations: 5,
                        seed: 2,
                    },
                )
            };
            let split = dataset.split(100, 3);
            let config = small_config(SamplingPlan::sequential(5));
            let mut learner = ActiveLearner::new(config, &mut profiler);
            let mut model = small_model(9);
            learner.run(&mut model, &dataset, &split).unwrap()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.curve, b.curve);
        assert_eq!(a.ledger, b.ledger);
    }
}
