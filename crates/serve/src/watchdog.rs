//! The request watchdog: detects wedged requests.
//!
//! Deadlines are checked cooperatively at safe points inside dispatch, which
//! is useless against a request that never reaches the next safe point — a
//! stalled filesystem call, a pathological model fit, an injected
//! [`alic_stats::fault::FaultSite::Stall`]. The watchdog covers that gap: a
//! background thread observes the in-flight request and flags it once it
//! exceeds its deadline by a grace factor.
//!
//! The engine is single-owner, so the watchdog cannot (and must not) preempt
//! the stuck thread; Rust offers no safe cancellation. Instead the flag is
//! *enforced on completion*: when the request finally returns, the engine
//! sees the flag, detaches the session exactly like the panic path, and
//! replies `err stuck` — the session's durable checkpoint is unaffected and
//! a re-attach restores it. A request that stalls forever keeps its flag
//! visible to operators through the monitor handle.
//!
//! The watchdog thread holds only a [`Weak`] reference to the shared state:
//! dropping the engine drops the last strong reference and the thread exits
//! on its next poll, so short-lived engines (tests) never leak threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// How often the watchdog thread polls the in-flight request.
const POLL_INTERVAL: Duration = Duration::from_millis(3);

#[derive(Debug)]
struct InFlight {
    seq: u64,
    started: Instant,
    limit: Duration,
}

#[derive(Debug, Default)]
struct Shared {
    inflight: Mutex<Option<InFlight>>,
    /// Sequence number of the request most recently flagged as stuck
    /// (0 = none; request sequence numbers start at 1).
    stuck: AtomicU64,
}

/// Handle through which the engine registers requests with its watchdog
/// thread.
#[derive(Debug)]
pub struct Watchdog {
    shared: Arc<Shared>,
}

impl Watchdog {
    /// Spawns the watchdog thread. The thread exits once the returned handle
    /// (the only strong reference) is dropped.
    pub fn spawn() -> Watchdog {
        let shared = Arc::new(Shared::default());
        let weak: Weak<Shared> = Arc::downgrade(&shared);
        std::thread::spawn(move || loop {
            std::thread::sleep(POLL_INTERVAL);
            let Some(shared) = weak.upgrade() else { break };
            let guard = shared.inflight.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(flight) = &*guard {
                if flight.started.elapsed() > flight.limit {
                    shared.stuck.store(flight.seq, Ordering::Release);
                }
            }
        });
        Watchdog { shared }
    }

    /// Registers request `seq` as in flight with the given wall-clock limit
    /// (deadline × grace). A zero limit disables the watchdog for this
    /// request (degenerate deadlines are a cooperative-shedding concern).
    pub fn begin(&self, seq: u64, limit: Duration) {
        if limit.is_zero() {
            return;
        }
        let mut guard = self
            .shared
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *guard = Some(InFlight {
            seq,
            started: Instant::now(),
            limit,
        });
    }

    /// Deregisters request `seq`; returns true when the watchdog flagged it
    /// as stuck while it ran. Clears the flag either way.
    pub fn finish(&self, seq: u64) -> bool {
        let mut guard = self
            .shared
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if guard.as_ref().is_some_and(|f| f.seq == seq) {
            *guard = None;
        }
        // The flag is read under the same lock the poller sets it under, so
        // a flag raised mid-request can never leak onto the next one.
        self.shared.stuck.swap(0, Ordering::AcqRel) == seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_only_requests_that_outlive_their_limit() {
        let dog = Watchdog::spawn();
        dog.begin(1, Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(40));
        assert!(dog.finish(1), "a 40ms request with a 10ms limit is stuck");
        // The flag was consumed; a fast request is clean.
        dog.begin(2, Duration::from_millis(500));
        assert!(!dog.finish(2));
        // Zero limit disables the watchdog entirely.
        dog.begin(3, Duration::ZERO);
        std::thread::sleep(Duration::from_millis(20));
        assert!(!dog.finish(3));
    }
}
