//! Tuning sessions: a live incremental surrogate plus its durable event log.
//!
//! A cold session never serializes model internals. Its checkpoint is an
//! *event log* — (space, model family, seed, observations in arrival order)
//! — and restoring replays that log through the same deterministic
//! fit/update path the live session used. The PR 3/5 determinism contracts
//! (incremental update ≡ cold refit, thread-count-independent fits) are
//! what make the replayed surrogate **bit-identical** to the one that was
//! killed, which in turn makes the read-only requests (`suggest`, `best`)
//! — pure functions of the log — byte-identical across a restart.
//!
//! A **warm-started** session additionally carries the seeding surrogate's
//! snapshot (copied out of the warm store at creation) *inside its own
//! checkpoint*, so the replay recipe becomes "restore the snapshot, then
//! update once per logged observation" — still a pure function of the
//! checkpoint bytes, never of the warm store's later contents.

use std::collections::HashSet;

use alic_data::io::JsonValue;
use alic_model::snapshot::{restore_snapshot, Snapshot};
use alic_model::spec::SurrogateSpec;
use alic_model::traits::ActiveSurrogate;
use alic_model::ModelError;
use alic_sim::space::{Configuration, ParamKind, ParamSpec, ParameterSpace};
use alic_stats::rng::seeded_substream;

use crate::protocol::{code, sanitize, ErrReply};

/// Schema tag of a session checkpoint file.
pub const SESSION_SCHEMA: &str = "alic-serve-session/v1";

/// Observations required before the surrogate is first fitted; until then
/// suggestions are model-free random exploration (the learner's warmup).
pub const FIT_MIN: usize = 4;

/// Candidate-pool size drawn for each `suggest` (grows with the batch).
pub const SUGGEST_POOL: usize = 64;

/// How many of the most recent observations anchor the ALC reference set.
pub const REFERENCE_WINDOW: usize = 32;

/// RNG stream label separating suggest draws from every other consumer of
/// the session seed.
const STREAM_SUGGEST: u64 = 0x5347;

/// A warm-start seed: the trained surrogate snapshot a session adopted at
/// creation. Copied into the session checkpoint so replay never depends on
/// the warm store again.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// `alic-model-snapshot/v1` document of the seeding surrogate.
    pub snapshot: Snapshot,
    /// Observations the seeding surrogate had been trained on (provenance
    /// for replies and reporting; the snapshot itself carries the rows).
    pub observations: usize,
}

/// One tuning session: identity, space, model family, and the observation
/// log that *is* its durable state.
#[derive(Debug)]
pub struct TuningSession {
    id: String,
    kernel: String,
    space: ParameterSpace,
    spec: SurrogateSpec,
    seed: u64,
    log: Vec<(Configuration, f64)>,
    model: Option<Box<dyn ActiveSurrogate + Send>>,
    warm: Option<WarmStart>,
}

impl TuningSession {
    /// Creates an empty session.
    pub fn new(
        id: impl Into<String>,
        kernel: impl Into<String>,
        space: ParameterSpace,
        spec: SurrogateSpec,
        seed: u64,
    ) -> Self {
        TuningSession {
            id: id.into(),
            kernel: kernel.into(),
            space,
            spec,
            seed,
            log: Vec::new(),
            model: None,
            warm: None,
        }
    }

    /// Creates a session seeded from a previously trained surrogate
    /// snapshot. The snapshot is restored immediately so a broken or
    /// incompatible one is rejected here — callers degrade to a cold
    /// [`TuningSession::new`] session on error.
    ///
    /// # Errors
    ///
    /// A `model` reply when the snapshot does not restore or its trained
    /// dimension disagrees with the space.
    pub fn new_warm(
        id: impl Into<String>,
        kernel: impl Into<String>,
        space: ParameterSpace,
        spec: SurrogateSpec,
        seed: u64,
        warm: WarmStart,
    ) -> Result<TuningSession, ErrReply> {
        let mut session = TuningSession::new(id, kernel, space, spec, seed);
        session.warm = Some(warm);
        session.rebuild().map_err(|e| {
            ErrReply::new(
                code::MODEL,
                format!(
                    "warm-starting session {}: {}",
                    session.id,
                    sanitize(&e.to_string())
                ),
            )
        })?;
        Ok(session)
    }

    /// The session identifier (`s000042`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The kernel name the session tunes.
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// The tunable space.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    /// The surrogate family.
    pub fn spec(&self) -> SurrogateSpec {
        self.spec
    }

    /// Number of recorded observations.
    pub fn observations(&self) -> usize {
        self.log.len()
    }

    /// The observation log, in arrival order.
    pub fn log(&self) -> &[(Configuration, f64)] {
        &self.log
    }

    /// Model-input features of a configuration: each parameter min-max
    /// normalized to `[0, 1]` (a pure function of the space, so live and
    /// replayed sessions featurize identically).
    pub fn features(&self, config: &Configuration) -> Vec<f64> {
        config
            .values()
            .iter()
            .zip(self.space.params())
            .map(|(&v, p)| {
                if p.max == p.min {
                    0.0
                } else {
                    (v as f64 - p.min as f64) / (p.max as f64 - p.min as f64)
                }
            })
            .collect()
    }

    /// Appends one observation to the log **without** touching the model —
    /// the engine checkpoints between [`record`](Self::record) and
    /// [`apply_last`](Self::apply_last) so a reply is only ever written for
    /// a durable observation.
    pub fn record(&mut self, config: Configuration, cost: f64) {
        self.log.push((config, cost));
    }

    /// Rolls back the most recent [`record`](Self::record) (checkpoint or
    /// model failure: the observation must not survive in memory either).
    pub fn unrecord(&mut self) {
        self.log.pop();
    }

    /// Folds the most recently recorded observation into the surrogate.
    ///
    /// Cold sessions do nothing below [`FIT_MIN`] observations, an initial
    /// fit exactly at [`FIT_MIN`], an incremental update after. Warm
    /// sessions inherit a fitted model at creation, so **every**
    /// observation is an incremental update — no warmup phase.
    ///
    /// # Errors
    ///
    /// Propagates model errors (the caller rolls the observation back).
    pub fn apply_last(&mut self) -> alic_model::Result<()> {
        let n = self.log.len();
        if self.warm.is_none() {
            if n < FIT_MIN {
                return Ok(());
            }
            if n == FIT_MIN || self.model.is_none() {
                return self.rebuild();
            }
        } else if self.model.is_none() {
            return self.rebuild();
        }
        let (config, cost) = self.log.last().expect("apply_last follows a record");
        let x = {
            let config = config.clone();
            let cost = *cost;
            let x = self.features(&config);
            (x, cost)
        };
        let model = self.model.as_mut().expect("checked above");
        model.update(&x.0, x.1)
    }

    /// Rebuilds the surrogate by replaying the log through the exact
    /// sequence a live session performs. Cold: fit on the first
    /// [`FIT_MIN`] observations, then one incremental update per later
    /// observation. Warm: restore the adopted snapshot, then one
    /// incremental update per logged observation — bit-identical to the
    /// live warm session by the snapshot round-trip contract.
    ///
    /// # Errors
    ///
    /// Leaves the model absent and propagates the first model error.
    pub fn rebuild(&mut self) -> alic_model::Result<()> {
        self.model = None;
        if let Some(warm) = &self.warm {
            let mut model = restore_snapshot(&warm.snapshot)?;
            if model.dimension() != Some(self.space.dimension()) {
                return Err(ModelError::Snapshot(
                    "warm snapshot dimension disagrees with the session space".to_string(),
                ));
            }
            let rows: Vec<Vec<f64>> = self.log.iter().map(|(c, _)| self.features(c)).collect();
            for (row, (_, y)) in rows.iter().zip(&self.log) {
                model.update(row, *y)?;
            }
            self.model = Some(model);
            return Ok(());
        }
        if self.log.len() < FIT_MIN {
            return Ok(());
        }
        let rows: Vec<Vec<f64>> = self.log.iter().map(|(c, _)| self.features(c)).collect();
        let views: Vec<&[f64]> = rows[..FIT_MIN].iter().map(|r| r.as_slice()).collect();
        let ys: Vec<f64> = self.log[..FIT_MIN].iter().map(|(_, y)| *y).collect();
        let mut model = self.spec.build(self.seed);
        model.fit(&views, &ys)?;
        for (row, (_, y)) in rows[FIT_MIN..].iter().zip(&self.log[FIT_MIN..]) {
            model.update(row, *y)?;
        }
        self.model = Some(model);
        Ok(())
    }

    /// Proposes `count` candidate configurations.
    ///
    /// This is a **pure function of durable state**: the candidate pool is
    /// drawn from the RNG substream keyed by `(session seed, observation
    /// count)`, already-observed configurations are filtered out, and with
    /// a fitted model candidates are ranked by their ALC score against the
    /// most recent [`REFERENCE_WINDOW`] observations (ties break on draw
    /// order). Identical log ⇒ identical reply — before or after a daemon
    /// restart, which is the restart-resume guarantee for reads.
    ///
    /// # Errors
    ///
    /// Propagates model scoring errors.
    pub fn suggest(&self, count: usize) -> alic_model::Result<Vec<Configuration>> {
        let mut rng = seeded_substream(self.seed, STREAM_SUGGEST, self.log.len() as u64);
        let pool = self
            .space
            .sample_distinct(&mut rng, SUGGEST_POOL.max(4 * count));
        let seen: HashSet<&Configuration> = self.log.iter().map(|(c, _)| c).collect();
        let fresh: Vec<&Configuration> = pool.iter().filter(|c| !seen.contains(c)).collect();
        // A tiny, fully observed space still deserves an answer: fall back
        // to re-suggesting observed points rather than replying with fewer
        // than asked (or nothing).
        let candidates: Vec<&Configuration> = if fresh.is_empty() {
            pool.iter().collect()
        } else {
            fresh
        };
        let take = count.min(candidates.len());
        let model = match &self.model {
            None => return Ok(candidates[..take].iter().map(|c| (*c).clone()).collect()),
            Some(m) => m,
        };
        let rows: Vec<Vec<f64>> = candidates.iter().map(|c| self.features(c)).collect();
        let views: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let tail = self.log.len().saturating_sub(REFERENCE_WINDOW);
        let ref_rows: Vec<Vec<f64>> = self.log[tail..]
            .iter()
            .map(|(c, _)| self.features(c))
            .collect();
        let ref_views: Vec<&[f64]> = ref_rows.iter().map(|r| r.as_slice()).collect();
        let scores = model.alc_scores(&views, &ref_views)?;
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        Ok(order[..take]
            .iter()
            .map(|&i| candidates[i].clone())
            .collect())
    }

    /// The lowest-cost observation so far (earliest wins ties), or `None`
    /// for an empty session.
    pub fn best(&self) -> Option<(&Configuration, f64)> {
        let mut best: Option<(&Configuration, f64)> = None;
        for (config, cost) in &self.log {
            if best.is_none_or(|(_, b)| *cost < b) {
                best = Some((config, *cost));
            }
        }
        best
    }

    /// Warm-start provenance: the observation count of the seeding
    /// surrogate, or `None` for a cold session.
    pub fn warm_observations(&self) -> Option<usize> {
        self.warm.as_ref().map(|w| w.observations)
    }

    /// Serializes the trained surrogate for the warm store: `(training
    /// depth, snapshot document)`. `None` when no model is fitted yet or
    /// the family does not support snapshots.
    pub fn model_snapshot(&self) -> Option<(usize, Snapshot)> {
        let model = self.model.as_ref()?;
        let doc = model.snapshot().ok()?;
        Some((model.observation_count(), doc))
    }

    /// Serializes the session checkpoint (canonical JSON + newline).
    ///
    /// # Errors
    ///
    /// Returns an `io` error reply if serialization fails (a non-finite
    /// cost cannot enter the log, so this does not happen in practice).
    pub fn to_checkpoint_string(&self) -> Result<String, ErrReply> {
        let params: Vec<JsonValue> = self
            .space
            .params()
            .iter()
            .map(|p| {
                JsonValue::Object(vec![
                    ("name".to_string(), JsonValue::String(p.name.clone())),
                    (
                        "kind".to_string(),
                        JsonValue::String(p.kind.label().to_string()),
                    ),
                    ("min".to_string(), JsonValue::Number(p.min as f64)),
                    ("max".to_string(), JsonValue::Number(p.max as f64)),
                ])
            })
            .collect();
        let observations: Vec<JsonValue> = self
            .log
            .iter()
            .map(|(c, y)| {
                JsonValue::Array(vec![
                    JsonValue::Array(
                        c.values()
                            .iter()
                            .map(|&v| JsonValue::Number(v as f64))
                            .collect(),
                    ),
                    JsonValue::Number(*y),
                ])
            })
            .collect();
        let mut fields = vec![
            (
                "schema".to_string(),
                JsonValue::String(SESSION_SCHEMA.to_string()),
            ),
            ("id".to_string(), JsonValue::String(self.id.clone())),
            ("kernel".to_string(), JsonValue::String(self.kernel.clone())),
            (
                "model".to_string(),
                JsonValue::String(self.spec.name().to_string()),
            ),
            // Seeds use the full u64 range; hex keeps them exact where a
            // JSON number (f64) would round above 2^53.
            (
                "seed".to_string(),
                JsonValue::String(format!("{:016x}", self.seed)),
            ),
            ("space".to_string(), JsonValue::Array(params)),
            ("observations".to_string(), JsonValue::Array(observations)),
        ];
        // Cold checkpoints omit the field entirely, keeping their bytes
        // identical to pre-warm-store builds.
        if let Some(warm) = &self.warm {
            fields.push((
                "warm".to_string(),
                JsonValue::Object(vec![
                    (
                        "observations".to_string(),
                        JsonValue::Number(warm.observations as f64),
                    ),
                    ("snapshot".to_string(), warm.snapshot.clone()),
                ]),
            ));
        }
        let doc = JsonValue::Object(fields);
        doc.to_json_string()
            .map(|s| s + "\n")
            .map_err(|e| ErrReply::new(code::IO, format!("serializing session {}: {e}", self.id)))
    }

    /// Restores a session from checkpoint text and replays its log into a
    /// rebuilt surrogate.
    ///
    /// # Errors
    ///
    /// `corrupt` for anything structurally wrong with the checkpoint (the
    /// engine quarantines the file), `model` when the deterministic replay
    /// itself fails (e.g. an injected jitter-ladder exhaustion) — the file
    /// is fine and a retry may succeed.
    pub fn from_checkpoint_str(text: &str) -> Result<TuningSession, ErrReply> {
        let corrupt = |detail: String| ErrReply::new(code::CORRUPT, detail);
        let doc =
            JsonValue::parse(text).map_err(|e| corrupt(format!("unparseable checkpoint: {e}")))?;
        let mut session = Self::decode(&doc).map_err(corrupt)?;
        session.rebuild().map_err(|e| {
            // A snapshot that no longer restores is damage to the
            // checkpoint itself (quarantined), not a transient model fault.
            let code = match &e {
                ModelError::Snapshot(_) => code::CORRUPT,
                _ => code::MODEL,
            };
            ErrReply::new(
                code,
                format!(
                    "replaying session {}: {}",
                    session.id,
                    sanitize(&e.to_string())
                ),
            )
        })?;
        Ok(session)
    }

    fn decode(doc: &JsonValue) -> Result<TuningSession, String> {
        let field_str = |name: &str| -> Result<String, String> {
            Ok(doc
                .field(name)
                .and_then(|v| v.as_str())
                .map_err(|e| format!("field {name}: {e}"))?
                .to_string())
        };
        let schema = field_str("schema")?;
        if schema != SESSION_SCHEMA {
            return Err(format!("schema {schema:?} (expected {SESSION_SCHEMA:?})"));
        }
        let id = field_str("id")?;
        let kernel = field_str("kernel")?;
        let model_name = field_str("model")?;
        let spec = SurrogateSpec::from_name(&model_name)
            .ok_or_else(|| format!("unknown model family {model_name:?}"))?;
        let seed_hex = field_str("seed")?;
        let seed = u64::from_str_radix(&seed_hex, 16).map_err(|_| "seed is not hex".to_string())?;
        let mut params = Vec::new();
        for p in doc
            .field("space")
            .and_then(|v| v.as_array())
            .map_err(|e| format!("field space: {e}"))?
        {
            let name = p
                .field("name")
                .and_then(|v| v.as_str())
                .map_err(|e| format!("space entry: {e}"))?
                .to_string();
            let kind_label = p
                .field("kind")
                .and_then(|v| v.as_str())
                .map_err(|e| format!("space entry: {e}"))?;
            let kind = match kind_label {
                "unroll" => ParamKind::Unroll,
                "cache-tile" => ParamKind::CacheTile,
                "register-tile" => ParamKind::RegisterTile,
                other => return Err(format!("unknown parameter kind {other:?}")),
            };
            let bound = |field: &str| -> Result<u32, String> {
                let n = p
                    .field(field)
                    .and_then(|v| v.as_u64())
                    .map_err(|e| format!("space entry {name:?}: {e}"))?;
                u32::try_from(n).map_err(|_| format!("space entry {name:?}: {field} out of range"))
            };
            let (min, max) = (bound("min")?, bound("max")?);
            if min > max {
                return Err(format!("space entry {name:?}: empty range {min}..={max}"));
            }
            params.push(ParamSpec::new(name, kind, min, max));
        }
        let space = ParameterSpace::new(params).map_err(|e| format!("space: {e}"))?;
        let mut session = TuningSession::new(id, kernel, space, spec, seed);
        for entry in doc
            .field("observations")
            .and_then(|v| v.as_array())
            .map_err(|e| format!("field observations: {e}"))?
        {
            let pair = entry.as_array().map_err(|e| format!("observation: {e}"))?;
            if pair.len() != 2 {
                return Err("observation entries are [values, cost] pairs".to_string());
            }
            let mut values = Vec::new();
            for v in pair[0]
                .as_array()
                .map_err(|e| format!("observation: {e}"))?
            {
                let n = v.as_u64().map_err(|e| format!("observation value: {e}"))?;
                values.push(
                    u32::try_from(n).map_err(|_| "observation value out of range".to_string())?,
                );
            }
            let config = Configuration::new(values);
            session
                .space
                .validate(&config)
                .map_err(|e| format!("observation outside the space: {e}"))?;
            let cost = pair[1]
                .as_f64()
                .map_err(|e| format!("observation cost: {e}"))?;
            if !cost.is_finite() {
                return Err("observation cost is not finite".to_string());
            }
            session.log.push((config, cost));
        }
        if let JsonValue::Object(fields) = doc {
            if let Some((_, warm_doc)) = fields.iter().find(|(k, _)| k == "warm") {
                let observations = warm_doc
                    .field("observations")
                    .and_then(|v| v.as_usize())
                    .map_err(|e| format!("warm: {e}"))?;
                let snapshot = warm_doc
                    .field("snapshot")
                    .map_err(|e| format!("warm: {e}"))?
                    .clone();
                session.warm = Some(WarmStart {
                    snapshot,
                    observations,
                });
            }
        }
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_session(spec: SurrogateSpec) -> TuningSession {
        let space = ParameterSpace::new(vec![
            ParamSpec::new("u1", ParamKind::Unroll, 1, 12),
            ParamSpec::new("t1", ParamKind::CacheTile, 0, 6),
        ])
        .unwrap();
        TuningSession::new("s000000", "mvt", space, spec, 42)
    }

    fn observe(session: &mut TuningSession, values: Vec<u32>, cost: f64) {
        session.record(Configuration::new(values), cost);
        session.apply_last().unwrap();
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        for spec in [
            SurrogateSpec::from_name("dynatree").unwrap(),
            SurrogateSpec::from_name("gp").unwrap(),
            SurrogateSpec::from_name("mean").unwrap(),
        ] {
            let mut live = small_session(spec);
            for (i, cost) in [4.0, 3.5, 3.8, 2.9, 3.1, 2.7].iter().enumerate() {
                observe(&mut live, vec![1 + i as u32, (i % 7) as u32], *cost);
            }
            let text = live.to_checkpoint_string().unwrap();
            let restored = TuningSession::from_checkpoint_str(&text).unwrap();
            assert_eq!(restored.to_checkpoint_string().unwrap(), text);
            assert_eq!(restored.observations(), live.observations());
            // Replayed surrogate state is bit-identical: pure reads agree
            // byte for byte.
            for k in [1, 4] {
                assert_eq!(
                    live.suggest(k).unwrap(),
                    restored.suggest(k).unwrap(),
                    "{spec}: suggest({k}) diverged after restore"
                );
            }
            assert_eq!(
                live.best().map(|(c, y)| (c.clone(), y)),
                restored.best().map(|(c, y)| (c.clone(), y))
            );
        }
    }

    #[test]
    fn suggest_is_pure_and_avoids_observed_points() {
        let mut s = small_session(SurrogateSpec::from_name("gp").unwrap());
        for (i, cost) in [4.0, 3.5, 3.8, 2.9, 3.1].iter().enumerate() {
            observe(&mut s, vec![1 + i as u32, (i % 7) as u32], *cost);
        }
        let a = s.suggest(3).unwrap();
        let b = s.suggest(3).unwrap();
        assert_eq!(a, b, "suggest must be idempotent between observations");
        let seen: HashSet<&Configuration> = s.log().iter().map(|(c, _)| c).collect();
        for c in &a {
            assert!(!seen.contains(c), "suggested an already-observed point");
        }
        observe(&mut s, vec![9, 3], 2.5);
        // New evidence may (and here does, by stream design) change the draw.
        let c = s.suggest(3).unwrap();
        assert_eq!(c, s.suggest(3).unwrap());
    }

    #[test]
    fn best_prefers_lowest_cost_then_earliest() {
        let mut s = small_session(SurrogateSpec::from_name("mean").unwrap());
        s.record(Configuration::new(vec![2, 1]), 3.0);
        s.record(Configuration::new(vec![3, 1]), 2.5);
        s.record(Configuration::new(vec![4, 1]), 2.5);
        let (config, cost) = s.best().unwrap();
        assert_eq!((config.values(), cost), (&[3u32, 1u32][..], 2.5));
        assert!(small_session(SurrogateSpec::Mean).best().is_none());
    }

    #[test]
    fn damaged_checkpoints_are_structured_corruption_errors() {
        let mut s = small_session(SurrogateSpec::from_name("mean").unwrap());
        observe(&mut s, vec![2, 2], 1.0);
        let healthy = s.to_checkpoint_string().unwrap();
        for broken in [
            "",
            "{torn",
            &healthy[..healthy.len() / 2],
            "{\"schema\":\"bogus/v9\"}",
        ] {
            let err = TuningSession::from_checkpoint_str(broken).unwrap_err();
            assert_eq!(err.code, code::CORRUPT, "{broken:?}: {}", err.render());
        }
    }

    #[test]
    fn warm_sessions_checkpoint_and_replay_bit_identically() {
        for name in ["gp", "dynatree", "mean"] {
            let spec = SurrogateSpec::from_name(name).unwrap();
            // Train a donor session, snapshot its surrogate.
            let mut donor = small_session(spec);
            for (i, cost) in [4.0, 3.5, 3.8, 2.9, 3.1, 2.7].iter().enumerate() {
                observe(&mut donor, vec![1 + i as u32, (i % 7) as u32], *cost);
            }
            let (depth, snapshot) = donor.model_snapshot().unwrap();
            assert_eq!(depth, donor.observations());
            // Seed a fresh session from it: fitted from observation zero.
            let space = donor.space().clone();
            let mut warm = TuningSession::new_warm(
                "s000001",
                "mvt",
                space,
                spec,
                99,
                WarmStart {
                    snapshot,
                    observations: depth,
                },
            )
            .unwrap();
            assert_eq!(warm.warm_observations(), Some(6));
            assert!(
                !warm.suggest(2).unwrap().is_empty(),
                "{name}: model-driven suggest at 0 obs"
            );
            // Every observation is an incremental update (no FIT_MIN warmup),
            // and the checkpoint replays to the same bits.
            for (i, cost) in [2.6, 2.8, 2.4].iter().enumerate() {
                observe(&mut warm, vec![7 + i as u32, (i % 7) as u32], *cost);
            }
            let text = warm.to_checkpoint_string().unwrap();
            let restored = TuningSession::from_checkpoint_str(&text).unwrap();
            assert_eq!(restored.to_checkpoint_string().unwrap(), text);
            assert_eq!(restored.warm_observations(), Some(6));
            for k in [1, 4] {
                assert_eq!(
                    warm.suggest(k).unwrap(),
                    restored.suggest(k).unwrap(),
                    "{name}: warm suggest({k}) diverged after restore"
                );
            }
        }
    }

    #[test]
    fn broken_warm_snapshot_is_rejected_at_creation_and_corrupt_on_replay() {
        let spec = SurrogateSpec::from_name("gp").unwrap();
        let bogus = WarmStart {
            snapshot: JsonValue::Object(vec![(
                "schema".to_string(),
                JsonValue::String("bogus/v9".to_string()),
            )]),
            observations: 5,
        };
        let space = small_session(spec).space().clone();
        let err = TuningSession::new_warm("s000002", "mvt", space, spec, 7, bogus).unwrap_err();
        assert_eq!(err.code, code::MODEL);
        // A checkpoint whose embedded snapshot is damaged is corrupt.
        let mut donor = small_session(spec);
        for (i, cost) in [4.0, 3.5, 3.8, 2.9].iter().enumerate() {
            observe(&mut donor, vec![1 + i as u32, i as u32], *cost);
        }
        let (depth, snapshot) = donor.model_snapshot().unwrap();
        let warm = TuningSession::new_warm(
            "s000003",
            "mvt",
            donor.space().clone(),
            spec,
            7,
            WarmStart {
                snapshot,
                observations: depth,
            },
        )
        .unwrap();
        let text = warm.to_checkpoint_string().unwrap();
        let sabotaged = text.replace("alic-model-snapshot/v1", "alic-model-snapshot/v9");
        let err = TuningSession::from_checkpoint_str(&sabotaged).unwrap_err();
        assert_eq!(err.code, code::CORRUPT, "{}", err.render());
    }

    #[test]
    fn cold_checkpoints_carry_no_warm_field() {
        let mut s = small_session(SurrogateSpec::from_name("gp").unwrap());
        for (i, cost) in [4.0, 3.5, 3.8, 2.9, 3.1].iter().enumerate() {
            observe(&mut s, vec![1 + i as u32, (i % 7) as u32], *cost);
        }
        let text = s.to_checkpoint_string().unwrap();
        assert!(!text.contains("\"warm\""));
        assert!(s.warm_observations().is_none());
    }

    #[test]
    fn rollback_keeps_log_and_model_consistent() {
        let mut s = small_session(SurrogateSpec::from_name("gp").unwrap());
        for (i, cost) in [4.0, 3.5, 3.8, 2.9].iter().enumerate() {
            observe(&mut s, vec![1 + i as u32, i as u32], *cost);
        }
        let before = s.to_checkpoint_string().unwrap();
        let suggestion = s.suggest(2).unwrap();
        s.record(Configuration::new(vec![7, 3]), 2.0);
        s.unrecord();
        s.rebuild().unwrap();
        assert_eq!(s.to_checkpoint_string().unwrap(), before);
        assert_eq!(s.suggest(2).unwrap(), suggestion);
    }
}
