//! `alic-serve` — the autotuning daemon.
//!
//! Turns the batch experiment stack into a long-lived service: a persistent
//! process speaking a hand-rolled line-based text protocol over stdin or
//! TCP, where each tuning session owns a live incremental surrogate
//! (PR 3/5 made updates cheap enough for interactive use).
//!
//! The headline property is **crash safety**, built from the same pieces as
//! the self-healing campaign runner:
//!
//! * every acknowledged mutation is durable before the reply is written —
//!   sessions checkpoint through the campaign ledger's
//!   [`write_verified`](alic_core::runner::ledger::write_verified) (atomic
//!   rename, bounded retry with exponential backoff, read-back
//!   verification), so a SIGKILLed daemon
//!   restarts and resumes every session with **bit-identical** surrogate
//!   state (checkpoints are event logs replayed through the deterministic
//!   fit/update paths, not serialized model internals);
//! * read-only requests (`suggest`, `best`) are pure functions of durable
//!   state, so their replies are byte-identical before and after a restart;
//! * every request runs under a deadline with panic isolation
//!   (`catch_unwind`, like `heal_campaign`) — one poisoned session is
//!   detached and later restored from its checkpoint, never taking the
//!   process down;
//! * malformed input always yields a structured `err <code> <msg>` reply;
//! * under load the daemon degrades gracefully: the live-session table is
//!   bounded with LRU idle eviction to checkpoint, and requests that cannot
//!   be served are shed with an explicit `busy` reply carrying a
//!   retry-after hint;
//! * under *resource pressure* it walks an explicit degradation ladder
//!   (healthy → shedding-writes → read-only → draining) instead of failing
//!   randomly: persistent checkpoint-write failures shed writes while reads
//!   keep answering, eviction failures go read-only, and a successful probe
//!   write promotes back to healthy ([`engine::HealthState`]);
//! * `health` reports the ladder state plus fault/retry counters, `drain`
//!   (or SIGTERM, in both transports) stops admission and flushes every
//!   session with a structured per-session outcome report
//!   ([`engine::DrainSummary`]);
//! * a watchdog thread ([`watchdog`]) flags requests that blow through
//!   their deadline by a grace factor; the wedged session is detached like
//!   the panic path and restored from its checkpoint on re-attach.
//!
//! The `alic_stats::fault` chaos plane reaches into the daemon end to end:
//! the connection layer has injection sites for dropped connections
//! mid-line, short reads, and torn replies (see [`chaos`]), on top of the
//! ledger-level write faults the checkpoints inherit.
//!
//! See the crate's `README.md` "Serving" section for the protocol
//! reference, the session lifecycle, and the checkpoint directory layout.

#![warn(missing_docs)]

pub mod chaos;
pub mod daemon;
pub mod engine;
pub mod protocol;
pub mod session;
pub mod term;
pub mod watchdog;

pub use engine::{
    Action, ConnState, DrainSummary, Engine, FlushOutcome, HealthState, Response, ServeConfig,
};
pub use protocol::{ErrReply, Request, PROTOCOL_VERSION};
pub use session::TuningSession;
