//! Transport loops: stdin/stdout and TCP.
//!
//! Both loops are thin shells over [`Engine::handle_line`]. The TCP mode
//! accepts concurrent connections but serializes engine access through a
//! single owner thread (requests queue on a channel in arrival order), so
//! session state needs no locking and surrogate internals — which already
//! multiplex their fit/update work onto the rayon pool — stay
//! single-owner. Connection I/O goes through the [`crate::chaos`] wrappers
//! so the fault plane reaches the wire.
//!
//! Both transports treat SIGTERM as a drain request (see [`crate::term`]):
//! the loop stops admitting input, every session flushes to checkpoint, and
//! the structured [`DrainSummary`] goes to stderr — the same report the
//! `drain` verb returns inline. The exit code reflects flush failures so a
//! supervisor can tell a clean drain from one that left volatile state.

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::time::Duration;

use crate::chaos::{write_reply, ChaosLines};
use crate::engine::{Action, ConnState, DrainSummary, Engine};
use crate::protocol::PROTOCOL_VERSION;

/// How often the transport loops poll the SIGTERM flag between requests.
const TERM_POLL: Duration = Duration::from_millis(25);

/// Renders a flush/drain summary to stderr and returns its failure count,
/// so both transports (and both exit paths: EOF and SIGTERM) report
/// identically.
fn report(summary: &DrainSummary) -> usize {
    eprintln!("alic-serve: {}", summary.render_detailed());
    summary.failed_count()
}

/// Runs the daemon over stdin/stdout until EOF, `quit`, `shutdown`, or
/// SIGTERM. Returns how many session flushes failed on the way out, so the
/// binary's exit code can reflect volatile state instead of silently
/// dropping it.
///
/// Every session flushes to checkpoint on the way out, whatever ended the
/// loop; a SIGKILL skips that, which is exactly the case the per-request
/// checkpoints already cover. SIGTERM additionally pins the engine in the
/// draining state before the flush, so nothing new is admitted while the
/// process winds down.
///
/// # Errors
///
/// Propagates stdin read errors (write errors end the loop like EOF: the
/// one client is gone).
pub fn serve_stdio(mut engine: Engine) -> std::io::Result<usize> {
    let term = crate::term::install();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut conn = ConnState::new();
    if write_reply(&mut out, &format!("ok {PROTOCOL_VERSION}")).is_err() {
        return Ok(report(&engine.flush_all()));
    }
    // Stdin reads block (and std retries EINTR), so a signal cannot wake
    // the read itself: a reader thread feeds lines over a channel and the
    // main loop polls the term flag between receives.
    let (line_tx, line_rx) = mpsc::channel::<std::io::Result<Option<String>>>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut reader = ChaosLines::new(stdin.lock());
        loop {
            let item = reader.next_line();
            let done = !matches!(item, Ok(Some(_)));
            if line_tx.send(item).is_err() || done {
                break;
            }
        }
    });
    loop {
        if term.load(Ordering::Acquire) {
            return Ok(report(&engine.drain()));
        }
        let line = match line_rx.recv_timeout(TERM_POLL) {
            Ok(Ok(Some(line))) => line,
            Ok(Ok(None)) => break,
            Ok(Err(e)) => return Err(e),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        let response = engine.handle_line(&mut conn, &line);
        if let Some(reply) = &response.reply {
            if write_reply(&mut out, reply).is_err() {
                break;
            }
        }
        match response.action {
            Action::Continue => {}
            Action::CloseConnection | Action::ShutdownDaemon => break,
        }
    }
    Ok(report(&engine.flush_all()))
}

enum EngineMsg {
    Line {
        conn: u64,
        line: String,
        reply: mpsc::Sender<(Option<String>, bool)>,
    },
    Close {
        conn: u64,
    },
    /// SIGTERM arrived: drain and exit (queued like any request, so
    /// requests already in flight finish first).
    Drain,
}

/// Runs the daemon on a TCP listener; one thread per connection, one owner
/// thread for the engine. `shutdown` flushes every session and exits the
/// process (the accept loop holds no state worth unwinding); SIGTERM
/// drains through the same owner-thread queue.
///
/// # Errors
///
/// Returns bind errors; per-connection errors only end that connection.
pub fn serve_tcp(engine: Engine, addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    let (tx, rx) = mpsc::channel::<EngineMsg>();
    let term = crate::term::install();
    let term_tx = tx.clone();
    std::thread::spawn(move || loop {
        if term.load(Ordering::Acquire) {
            let _ = term_tx.send(EngineMsg::Drain);
            break;
        }
        std::thread::sleep(TERM_POLL);
    });
    std::thread::spawn(move || engine_owner(engine, rx));
    let mut next_conn = 0u64;
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let conn = next_conn;
        next_conn += 1;
        let tx = tx.clone();
        std::thread::spawn(move || {
            let _ = handle_connection(stream, conn, &tx);
            let _ = tx.send(EngineMsg::Close { conn });
        });
    }
    Ok(())
}

fn engine_owner(mut engine: Engine, rx: mpsc::Receiver<EngineMsg>) {
    let mut conns: std::collections::HashMap<u64, ConnState> = std::collections::HashMap::new();
    for msg in rx {
        match msg {
            EngineMsg::Close { conn } => {
                conns.remove(&conn);
            }
            EngineMsg::Drain => {
                let failures = report(&engine.drain());
                std::process::exit(if failures > 0 { 1 } else { 0 });
            }
            EngineMsg::Line { conn, line, reply } => {
                let state = conns.entry(conn).or_default();
                let response = engine.handle_line(state, &line);
                let shutdown = response.action == Action::ShutdownDaemon;
                let close = shutdown || response.action == Action::CloseConnection;
                if close {
                    conns.remove(&conn);
                }
                let _ = reply.send((response.reply, close));
                if shutdown {
                    // A nonzero exit reports sessions whose final flush
                    // failed (the summary is already on stderr).
                    let failures = report(&engine.flush_all());
                    std::process::exit(if failures > 0 { 1 } else { 0 });
                }
            }
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    conn: u64,
    tx: &mpsc::Sender<EngineMsg>,
) -> std::io::Result<()> {
    let mut reader = ChaosLines::new(BufReader::new(stream.try_clone()?));
    let mut out = stream;
    write_reply(&mut out, &format!("ok {PROTOCOL_VERSION}"))?;
    while let Some(line) = reader.next_line()? {
        let (reply_tx, reply_rx) = mpsc::channel();
        if tx
            .send(EngineMsg::Line {
                conn,
                line,
                reply: reply_tx,
            })
            .is_err()
        {
            break;
        }
        let Ok((reply, close)) = reply_rx.recv() else {
            break;
        };
        if let Some(reply) = reply {
            write_reply(&mut out, &reply)?;
        }
        if close {
            break;
        }
    }
    Ok(())
}
