//! The request engine: session table, dispatch, durability, degradation.
//!
//! The engine is transport-agnostic — [`Engine::handle_line`] maps one
//! request line to one reply, and the stdin/TCP loops in [`crate::daemon`]
//! are thin shells around it. Its contracts:
//!
//! * **Replied ⇒ durable** (with the default `checkpoint_every = 1`): a
//!   mutating request is checkpointed through the ledger's
//!   [`write_verified`] *before* the `ok` reply exists; on checkpoint
//!   failure the mutation is rolled back and a structured `err` returned.
//!   The converse does not hold — a kill between commit and reply can leave
//!   one acknowledged-looking observation on disk (at-least-once). Clients
//!   needing exactly-once re-`attach` and compare the reported observation
//!   count before retrying an unacknowledged `observe`.
//! * **Panic isolation**: dispatch runs under `catch_unwind`; a panicking
//!   request detaches the connection's live session (its on-disk
//!   checkpoint is unaffected) and yields `err panic`, like
//!   `heal_campaign` quarantines a panicking work unit.
//! * **Deadlines**: requests check a per-request deadline at safe points
//!   (never between a durable commit and its reply) and shed with
//!   `err deadline`.
//! * **Graceful degradation**: at most `max_live` sessions are resident;
//!   attaching one more evicts the least-recently-used idle session to its
//!   checkpoint. When even eviction fails (e.g. a failing disk), requests
//!   are shed with `err busy retry-after-ms <hint>`, the hint backing off
//!   exponentially (via [`RetryPolicy::SERVE_HINT`]) while the condition
//!   persists.
//! * **The degradation ladder** ([`HealthState`]): resource pressure walks
//!   the engine down `Healthy → SheddingWrites` (checkpoint writes failing:
//!   observes shed with `err degraded retry-after-ms`, reads still served)
//!   `→ ReadOnly` (eviction impossible: only `suggest`/`best`/`sessions`)
//!   `→ Draining` (terminal: state flushed, nothing new admitted). A
//!   successful probe write promotes the engine back to `Healthy`
//!   automatically. The `health` verb reports the state plus per-site
//!   injection and retry counters; `drain` flushes everything and reports
//!   per-session outcomes as one [`DrainSummary`].
//! * **Watchdog**: a request exceeding its deadline by
//!   [`ServeConfig::watchdog_grace`] is flagged by a background thread and,
//!   on completion, detached exactly like the panic path (`err stuck`).

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use alic_core::runner::ledger::{quarantine_file, write_atomic, write_verified};
use alic_core::warmstore::{WarmKey, WarmStore};
use alic_model::spec::SurrogateSpec;
use alic_sim::space::ParameterSpace;
use alic_stats::fault::{inject, injections, FaultSite};
use alic_stats::policy::{self, RetryPolicy};
use alic_stats::rng::derive_seed2;

use crate::protocol::{
    self, code, format_config, format_cost, sanitize, ErrReply, Request, MAX_LINE_BYTES,
};
use crate::session::{TuningSession, WarmStart};
use crate::watchdog::Watchdog;

/// Subdirectory of the serve directory holding one checkpoint per session.
pub const SESSIONS_DIR: &str = "sessions";

/// Default bound on resident live sessions.
pub const DEFAULT_MAX_LIVE: usize = 8;

/// Default per-request deadline.
pub const DEFAULT_DEADLINE: Duration = Duration::from_millis(2_000);

/// Default watchdog grace factor: a request is stuck once it runs longer
/// than `deadline × grace`.
pub const DEFAULT_WATCHDOG_GRACE: f64 = 4.0;

/// Relative path (under the serve directory) of the ladder's probe file:
/// one successful atomic write there proves the disk admits writes again.
pub const PROBE_FILE: &str = ".health-probe";

/// RNG stream label under which per-session seeds derive from the daemon
/// seed.
const STREAM_SESSION_SEED: u64 = 0x5e55;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root of the checkpoint directory (`<dir>/sessions/<id>.json`).
    pub dir: PathBuf,
    /// Surrogate family for sessions that do not name one.
    pub default_model: SurrogateSpec,
    /// Base seed; per-session seeds derive from it and are checkpointed, so
    /// restarts (even with a different base seed) keep existing sessions'
    /// streams.
    pub seed: u64,
    /// Bound on resident live sessions before LRU eviction kicks in.
    pub max_live: usize,
    /// Per-request deadline.
    pub deadline: Duration,
    /// Checkpoint cadence in observations. `1` (the default) gives the
    /// replied-⇒-durable guarantee; larger values trade a bounded window of
    /// acknowledged-but-volatile observations for fewer writes under load.
    pub checkpoint_every: usize,
    /// Optional warm-start store path. `None` (the default) disables warm
    /// starts entirely — every reply stays byte-identical to a build
    /// without the store.
    pub warm_store: Option<PathBuf>,
    /// Noise-regime label namespacing warm-store keys, so surrogates
    /// trained under an incompatible featurization (e.g. campaign
    /// normalizers) never seed serve sessions.
    pub noise_regime: String,
    /// Watchdog grace factor: a request running longer than
    /// `deadline × watchdog_grace` is flagged as stuck and its session
    /// detached on completion. `0.0` disables the watchdog.
    pub watchdog_grace: f64,
}

impl ServeConfig {
    /// A default-configured engine rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            dir: dir.into(),
            default_model: SurrogateSpec::default(),
            seed: 0,
            max_live: DEFAULT_MAX_LIVE,
            deadline: DEFAULT_DEADLINE,
            checkpoint_every: 1,
            warm_store: None,
            noise_regime: "default".to_string(),
            watchdog_grace: DEFAULT_WATCHDOG_GRACE,
        }
    }
}

/// The engine's position on the degradation ladder, ordered by severity.
///
/// Demotions only ever move down the ladder (and never out of `Draining`);
/// a successful probe write promotes straight back to `Healthy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// All verbs served.
    Healthy,
    /// Checkpoint writes are failing: mutating verbs are shed with
    /// `err degraded retry-after-ms`, reads are still served from memory.
    SheddingWrites,
    /// Even eviction is impossible: only `suggest`/`best`/`sessions` (and
    /// the control verbs) are served.
    ReadOnly,
    /// Terminal: sessions are flushed and no new work is admitted.
    Draining,
}

impl HealthState {
    /// The wire label reported by the `health` verb.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::SheddingWrites => "shedding-writes",
            HealthState::ReadOnly => "read-only",
            HealthState::Draining => "draining",
        }
    }
}

/// Per-session outcome of one flush/drain pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlushOutcome {
    /// The session was dirty and its checkpoint was written.
    Flushed,
    /// The session had no volatile state.
    Clean,
    /// The checkpoint write failed; the payload is the structured error
    /// detail (the session stays resident and dirty).
    Failed(String),
}

impl FlushOutcome {
    /// Short wire label (`flushed` / `clean` / `failed`).
    pub fn label(&self) -> &'static str {
        match self {
            FlushOutcome::Flushed => "flushed",
            FlushOutcome::Clean => "clean",
            FlushOutcome::Failed(_) => "failed",
        }
    }
}

/// Structured result of draining or flushing the live table — the one
/// summary shared by the `drain` verb and both transports' shutdown paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrainSummary {
    /// Per-session outcomes in session-id order.
    pub outcomes: Vec<(String, FlushOutcome)>,
    /// Error from persisting the warm store, if any (advisory: warm-store
    /// damage never counts against the flush).
    pub warm_store_error: Option<String>,
}

impl DrainSummary {
    /// Sessions flushed or already clean.
    pub fn ok_count(&self) -> usize {
        self.outcomes.len() - self.failed_count()
    }

    /// Sessions whose final checkpoint write failed.
    pub fn failed_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, FlushOutcome::Failed(_)))
            .count()
    }

    /// The one-line headline form: `drained ok <n> failed <m>`.
    pub fn render(&self) -> String {
        format!(
            "drained ok {} failed {}",
            self.ok_count(),
            self.failed_count()
        )
    }

    /// The headline plus per-session outcomes:
    /// `drained ok <n> failed <m> [<id>=<outcome> ...] [warm-store=failed]`.
    pub fn render_detailed(&self) -> String {
        let mut out = self.render();
        for (id, outcome) in &self.outcomes {
            out.push(' ');
            out.push_str(id);
            out.push('=');
            out.push_str(outcome.label());
        }
        if self.warm_store_error.is_some() {
            out.push_str(" warm-store=failed");
        }
        out
    }
}

/// What the transport loop should do after writing the reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep reading requests.
    Continue,
    /// Close this connection (`quit`).
    CloseConnection,
    /// Stop the whole daemon (`shutdown`).
    ShutdownDaemon,
}

/// One handled request: the reply line (if any) and the follow-up action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Reply line without trailing newline; `None` for blank input.
    pub reply: Option<String>,
    /// Transport follow-up.
    pub action: Action,
}

impl Response {
    fn text(reply: String, action: Action) -> Self {
        Response {
            reply: Some(reply),
            action,
        }
    }
}

/// Per-connection state: which session the connection is talking to.
#[derive(Debug, Clone, Default)]
pub struct ConnState {
    current: Option<String>,
}

impl ConnState {
    /// A fresh connection attached to nothing.
    pub fn new() -> Self {
        ConnState::default()
    }

    /// The attached session id, if any.
    pub fn current(&self) -> Option<&str> {
        self.current.as_deref()
    }
}

#[derive(Debug)]
struct LiveEntry {
    session: TuningSession,
    last_touch: u64,
    dirty: usize,
}

/// The daemon's core: a bounded table of live sessions over a checkpoint
/// directory.
#[derive(Debug)]
pub struct Engine {
    config: ServeConfig,
    live: BTreeMap<String, LiveEntry>,
    clock: u64,
    next_id: u64,
    busy_streak: u32,
    warm: Option<WarmStore>,
    state: HealthState,
    req_seq: u64,
    flush_failures: u64,
    watchdog: Watchdog,
}

impl Engine {
    /// Opens (creating if necessary) the serve directory and scans existing
    /// checkpoints so new session ids never collide with old ones.
    ///
    /// # Errors
    ///
    /// Returns a message when the directory cannot be created or scanned.
    pub fn open(config: ServeConfig) -> Result<Engine, String> {
        let sessions = config.dir.join(SESSIONS_DIR);
        std::fs::create_dir_all(&sessions)
            .map_err(|e| format!("cannot create {}: {e}", sessions.display()))?;
        let mut next_id = 0u64;
        let entries = std::fs::read_dir(&sessions)
            .map_err(|e| format!("cannot scan {}: {e}", sessions.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot scan {}: {e}", sessions.display()))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(n) = name
                .strip_prefix('s')
                .and_then(|rest| rest.strip_suffix(".json"))
                .filter(|digits| digits.len() == 6)
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                next_id = next_id.max(n + 1);
            }
        }
        // A corrupt store quarantines inside `open` and comes back empty,
        // so warm-start damage can never fail daemon startup.
        let warm = config.warm_store.as_deref().map(WarmStore::open);
        Ok(Engine {
            config,
            live: BTreeMap::new(),
            clock: 0,
            next_id,
            busy_streak: 0,
            warm,
            state: HealthState::Healthy,
            req_seq: 0,
            flush_failures: 0,
            watchdog: Watchdog::spawn(),
        })
    }

    /// The engine's current position on the degradation ladder.
    pub fn health_state(&self) -> HealthState {
        self.state
    }

    /// Warm-store hit/miss/store counters (`None` when disabled).
    pub fn warm_counters(&self) -> Option<(u64, u64, u64)> {
        self.warm
            .as_ref()
            .map(|w| (w.hits(), w.misses(), w.stores()))
    }

    /// The engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of currently resident live sessions.
    pub fn live_sessions(&self) -> usize {
        self.live.len()
    }

    fn sessions_dir(&self) -> PathBuf {
        self.config.dir.join(SESSIONS_DIR)
    }

    fn session_path(&self, id: &str) -> PathBuf {
        self.sessions_dir().join(format!("{id}.json"))
    }

    /// Handles one raw input line and returns the reply plus transport
    /// action. Never panics: parsing is total and dispatch runs under
    /// `catch_unwind`.
    pub fn handle_line(&mut self, conn: &mut ConnState, line: &str) -> Response {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Response {
                reply: None,
                action: Action::Continue,
            };
        }
        if line.len() > MAX_LINE_BYTES {
            return Response::text(
                ErrReply::new(code::PARSE, format!("line exceeds {MAX_LINE_BYTES} bytes")).render(),
                Action::Continue,
            );
        }
        let request = match protocol::parse_request(trimmed) {
            Ok(request) => request,
            Err(e) => return Response::text(e.render(), Action::Continue),
        };
        let started = Instant::now();
        self.req_seq += 1;
        let seq = self.req_seq;
        let grace = self.config.watchdog_grace;
        let limit = if grace > 0.0 {
            self.config.deadline.mul_f64(grace)
        } else {
            Duration::ZERO
        };
        self.watchdog.begin(seq, limit);
        let outcome = catch_unwind(AssertUnwindSafe(|| self.dispatch(conn, &request, started)));
        if self.watchdog.finish(seq) {
            // The watchdog flagged this request as stuck while it ran. The
            // engine is single-owner, so the only safe enforcement point is
            // completion: detach the session exactly like the panic path
            // (durable state is untouched; any reply the late work computed
            // is dropped, and at-least-once reconciliation on re-attach
            // covers a mutation that did commit).
            if let Some(id) = conn.current.take() {
                self.live.remove(&id);
            }
            return Response::text(
                ErrReply::new(
                    code::STUCK,
                    format!(
                        "request exceeded {grace}x its {}ms deadline (watchdog); \
                         session detached, re-attach to restore it",
                        self.config.deadline.as_millis()
                    ),
                )
                .render(),
                Action::Continue,
            );
        }
        match outcome {
            Ok(Ok((reply, action))) => Response::text(reply, action),
            Ok(Err(e)) => Response::text(e.render(), Action::Continue),
            Err(payload) => {
                // The live state the panicking request touched is suspect;
                // detach it. The on-disk checkpoint is intact (mutations
                // checkpoint before they apply), so a re-attach restores
                // the session to its last durable state.
                if let Some(id) = conn.current.take() {
                    self.live.remove(&id);
                }
                Response::text(
                    ErrReply::new(
                        code::PANIC,
                        format!(
                            "request panicked ({}); session detached, re-attach to restore it",
                            sanitize(&panic_message(payload.as_ref()))
                        ),
                    )
                    .render(),
                    Action::Continue,
                )
            }
        }
    }

    fn dispatch(
        &mut self,
        conn: &mut ConnState,
        request: &Request,
        started: Instant,
    ) -> Result<(String, Action), ErrReply> {
        // The chaos plane's panic site fires before any mutation, so an
        // injected panic is always clean: reply `err panic`, retry, heal.
        if inject(FaultSite::UnitPanic) {
            panic!("chaos: injected request panic");
        }
        // An injected stall sleeps past deadline × grace, so both the
        // cooperative deadline checks and the watchdog observe it.
        if inject(FaultSite::Stall) {
            let grace = self.config.watchdog_grace.max(1.0);
            std::thread::sleep(self.config.deadline.mul_f64(2.0 * grace));
        }
        self.clock += 1;
        self.admit(request)?;
        let deadline = self.config.deadline;
        let over_deadline = || started.elapsed() > deadline;
        let deadline_err = || {
            ErrReply::new(
                code::DEADLINE,
                format!("request exceeded its {}ms deadline", deadline.as_millis()),
            )
        };
        match request {
            Request::NewSession {
                kernel,
                space,
                model,
            } => {
                let spec = match model {
                    None => self.config.default_model,
                    Some(name) => SurrogateSpec::from_name(name).ok_or_else(|| {
                        ErrReply::new(
                            code::BAD_MODEL,
                            format!(
                                "unknown model {:?} (known: {})",
                                sanitize(name),
                                SurrogateSpec::names().join(", ")
                            ),
                        )
                    })?,
                };
                self.make_room()?;
                let id = format!("s{:06}", self.next_id);
                let seed = derive_seed2(self.config.seed, STREAM_SESSION_SEED, self.next_id);
                // Consult the warm store; a snapshot that fails to restore
                // degrades silently to a cold session.
                let session = self
                    .probe_warm(kernel, space, spec)
                    .and_then(|warm| {
                        TuningSession::new_warm(&id, kernel, space.clone(), spec, seed, warm).ok()
                    })
                    .unwrap_or_else(|| TuningSession::new(&id, kernel, space.clone(), spec, seed));
                let warm_obs = session.warm_observations();
                // Durable before acknowledged: the session exists on disk
                // before the client ever learns its id.
                if let Err(e) = checkpoint_session(&self.session_path(&id), &session) {
                    return Err(self.degrade_write(e));
                }
                let dim = space.dimension();
                self.next_id += 1;
                self.live.insert(
                    id.clone(),
                    LiveEntry {
                        session,
                        last_touch: self.clock,
                        dirty: 0,
                    },
                );
                conn.current = Some(id.clone());
                let reply = match warm_obs {
                    Some(n) => format!("ok session {id} dim {dim} warm {n}"),
                    None => format!("ok session {id} dim {dim}"),
                };
                Ok((reply, Action::Continue))
            }
            Request::Attach { id } => {
                self.ensure_live(id)?;
                conn.current = Some(id.clone());
                let n = self.live_ref(id)?.session.observations();
                Ok((format!("ok attached {id} obs {n}"), Action::Continue))
            }
            Request::Suggest { count } => {
                let id = attached(conn)?;
                self.ensure_live(&id)?;
                let entry = self.live_mut(&id)?;
                let configs = entry.session.suggest(*count).map_err(model_err)?;
                // Reads are side-effect free; shedding after the work is
                // done still protects the *connection's* latency budget.
                if over_deadline() {
                    return Err(deadline_err());
                }
                let mut reply = String::from("ok suggest");
                for c in &configs {
                    reply.push(' ');
                    reply.push_str(&format_config(c));
                }
                Ok((reply, Action::Continue))
            }
            Request::Observe { config, cost } => {
                let id = attached(conn)?;
                self.ensure_live(&id)?;
                // Validate everything and check the deadline *before* the
                // mutation: past this point the request always commits or
                // rolls back, never half-happens.
                self.live_ref(&id)?
                    .session
                    .space()
                    .validate(config)
                    .map_err(|e| ErrReply::new(code::BAD_CONFIG, e.to_string()))?;
                if over_deadline() {
                    return Err(deadline_err());
                }
                let path = self.session_path(&id);
                let cadence = self.config.checkpoint_every.max(1);
                let entry = self.live_mut(&id)?;
                entry.session.record(config.clone(), *cost);
                entry.dirty += 1;
                if entry.dirty >= cadence {
                    if let Err(e) = checkpoint_session(&path, &entry.session) {
                        entry.session.unrecord();
                        entry.dirty -= 1;
                        // A failing commit write is the ladder's entry
                        // point: demote and shed with a backoff hint.
                        return Err(self.degrade_write(e));
                    }
                    entry.dirty = 0;
                }
                let mut rollback_write_failed = false;
                if let Err(model_failure) = entry.session.apply_last() {
                    // The model rejected the observation: roll the log back
                    // in memory, then bring the disk copy back in line.
                    entry.session.unrecord();
                    if checkpoint_session(&path, &entry.session).is_ok() {
                        // Disk and memory agree on the rolled-back log.
                        entry.dirty = 0;
                        if entry.session.rebuild().is_err() {
                            // The surrogate would not rebuild; drop the
                            // entry so the next attach replays from the
                            // (now correct) checkpoint.
                            self.live.remove(&id);
                        }
                    } else {
                        // The rollback checkpoint failed, so the in-memory
                        // log is the only correct copy: at cadence 1 the
                        // disk still holds the rejected observation, at
                        // larger cadences it may be missing acknowledged
                        // ones. Keep the entry resident and dirty so a
                        // later checkpoint, eviction, or flush repairs the
                        // disk — dropping it here would resurrect the
                        // rejected observation (or lose acknowledged ones)
                        // on the next attach.
                        entry.dirty = entry.dirty.max(1);
                        let _ = entry.session.rebuild();
                        rollback_write_failed = true;
                    }
                    if rollback_write_failed {
                        // The reply stays `err model` (the observation was
                        // rejected, not shed), but the disk is degraded.
                        self.demote(HealthState::SheddingWrites);
                    }
                    return Err(model_err(model_failure));
                }
                let n = entry.session.observations();
                // A successful admission write clears any shed streak.
                self.busy_streak = 0;
                Ok((format!("ok observed {n}"), Action::Continue))
            }
            Request::Best => {
                let id = attached(conn)?;
                self.ensure_live(&id)?;
                let entry = self.live_ref(&id)?;
                match entry.session.best() {
                    Some((config, cost)) => Ok((
                        format!("ok best {} {}", format_config(config), format_cost(cost)),
                        Action::Continue,
                    )),
                    None => Err(ErrReply::new(code::EMPTY, "no observations recorded yet")),
                }
            }
            Request::Checkpoint => {
                let id = attached(conn)?;
                self.ensure_live(&id)?;
                let path = self.session_path(&id);
                match checkpoint_session(&path, &self.live_ref(&id)?.session) {
                    Ok(()) => {
                        self.live_mut(&id)?.dirty = 0;
                        self.busy_streak = 0;
                        Ok((
                            format!("ok checkpoint {SESSIONS_DIR}/{id}.json"),
                            Action::Continue,
                        ))
                    }
                    Err(e) => Err(self.degrade_write(e)),
                }
            }
            Request::Sessions => {
                if inject(FaultSite::FdLimit) {
                    return Err(ErrReply::new(
                        code::IO,
                        "scanning sessions: chaos injected file-descriptor exhaustion",
                    ));
                }
                let mut ids: std::collections::BTreeSet<String> =
                    self.live.keys().cloned().collect();
                let entries = std::fs::read_dir(self.sessions_dir())
                    .map_err(|e| ErrReply::new(code::IO, format!("scanning sessions: {e}")))?;
                for entry in entries {
                    let entry = entry
                        .map_err(|e| ErrReply::new(code::IO, format!("scanning sessions: {e}")))?;
                    if let Some(name) = entry.file_name().to_str() {
                        if let Some(id) = name.strip_suffix(".json") {
                            if protocol::parse_session_id(id).is_ok() {
                                ids.insert(id.to_string());
                            }
                        }
                    }
                }
                let mut reply = String::from("ok sessions");
                for id in ids {
                    reply.push(' ');
                    reply.push_str(&id);
                }
                Ok((reply, Action::Continue))
            }
            Request::Health => {
                let mut inj = String::new();
                for site in FaultSite::ALL {
                    let n = injections(site);
                    if n > 0 {
                        if !inj.is_empty() {
                            inj.push(',');
                        }
                        inj.push_str(site.name());
                        inj.push(':');
                        inj.push_str(&n.to_string());
                    }
                }
                if inj.is_empty() {
                    inj.push_str("none");
                }
                let warm = match self.warm_counters() {
                    Some((h, m, s)) => format!("{h}/{m}/{s}"),
                    None => "off".to_string(),
                };
                Ok((
                    format!(
                        "ok health state={} live={} shed-streak={} flush-failed={} \
                         retry-sleeps={} inj={} warm={}",
                        self.state.label(),
                        self.live.len(),
                        self.busy_streak,
                        self.flush_failures,
                        policy::sleeps(),
                        inj,
                        warm
                    ),
                    Action::Continue,
                ))
            }
            Request::Drain => {
                let summary = self.drain();
                Ok((
                    format!("ok {}", summary.render_detailed()),
                    Action::Continue,
                ))
            }
            Request::Quit => {
                let _ = self.flush_all();
                Ok(("ok bye".to_string(), Action::CloseConnection))
            }
            Request::Shutdown => {
                let _ = self.flush_all();
                Ok(("ok shutdown".to_string(), Action::ShutdownDaemon))
            }
        }
    }

    /// The ladder's admission gate: control verbs always pass; otherwise the
    /// current [`HealthState`] decides which verbs are shed. While degraded
    /// (but not draining), a probe write first attempts automatic promotion
    /// back to `Healthy`.
    fn admit(&mut self, request: &Request) -> Result<(), ErrReply> {
        if matches!(
            request,
            Request::Sessions
                | Request::Health
                | Request::Drain
                | Request::Quit
                | Request::Shutdown
        ) {
            return Ok(());
        }
        if self.state == HealthState::Draining {
            return Err(ErrReply::new(
                code::DRAINING,
                "daemon is draining; state is flushed and no new work is admitted",
            ));
        }
        if self.state == HealthState::Healthy {
            return Ok(());
        }
        self.try_promote();
        match self.state {
            HealthState::Healthy => Ok(()),
            HealthState::SheddingWrites => match request {
                Request::NewSession { .. } | Request::Observe { .. } | Request::Checkpoint => {
                    Err(self.shed(
                        code::DEGRADED,
                        "shedding writes: checkpoint writes are failing; reads are still served",
                    ))
                }
                _ => Ok(()),
            },
            HealthState::ReadOnly => match request {
                Request::Suggest { .. } | Request::Best => Ok(()),
                Request::NewSession { .. } | Request::Attach { .. } => Err(self.shed(
                    code::BUSY,
                    "read-only: the live table cannot evict; only suggest/best/sessions are served",
                )),
                _ => Err(self.shed(
                    code::DEGRADED,
                    "read-only: the live table cannot evict; only suggest/best/sessions are served",
                )),
            },
            HealthState::Draining => Err(ErrReply::new(
                code::DRAINING,
                "daemon is draining; state is flushed and no new work is admitted",
            )),
        }
    }

    /// Demotes the ladder to `to` unless already at that severity or worse.
    /// Never demotes out of `Draining` (it is terminal) and never promotes —
    /// promotion is the probe's job.
    fn demote(&mut self, to: HealthState) {
        if self.state != HealthState::Draining && to > self.state {
            self.state = to;
        }
    }

    /// Attempts automatic promotion back to `Healthy`: one successful
    /// atomic write to the probe file proves the disk admits writes again.
    fn try_promote(&mut self) {
        if !matches!(
            self.state,
            HealthState::SheddingWrites | HealthState::ReadOnly
        ) {
            return;
        }
        let probe = self.config.dir.join(PROBE_FILE);
        if write_atomic(&probe, "alic-serve health probe\n").is_ok() {
            self.state = HealthState::Healthy;
            self.busy_streak = 0;
        }
    }

    /// Builds a load-shedding reply: bumps the shed streak and stamps the
    /// `retry-after-ms` hint from [`RetryPolicy::SERVE_HINT`], so the hint
    /// backs off exponentially while the condition persists and resets on
    /// the next successful admission.
    fn shed(&mut self, code: &'static str, why: &str) -> ErrReply {
        self.busy_streak = self.busy_streak.saturating_add(1);
        let hint = RetryPolicy::SERVE_HINT.hint_ms(self.busy_streak);
        ErrReply::new(code, format!("retry-after-ms {hint} ({why})"))
    }

    /// A failed admission write (checkpoint commit) demotes to
    /// `SheddingWrites` and sheds with a `degraded` backoff hint carrying
    /// the underlying error.
    fn degrade_write(&mut self, e: ErrReply) -> ErrReply {
        self.demote(HealthState::SheddingWrites);
        let msg = e.msg;
        self.shed(code::DEGRADED, &msg)
    }

    fn internal_missing(id: &str) -> ErrReply {
        ErrReply::new(
            code::INTERNAL,
            format!(
                "session {id} expected resident but missing from the live table; \
                 re-attach to restore it"
            ),
        )
    }

    /// Graceful lookup of a session the dispatch path has already ensured
    /// live: a bookkeeping slip fails this one request with `err internal`
    /// instead of poisoning the session through a panic.
    fn live_ref(&self, id: &str) -> Result<&LiveEntry, ErrReply> {
        self.live.get(id).ok_or_else(|| Self::internal_missing(id))
    }

    /// Mutable sibling of [`Engine::live_ref`].
    fn live_mut(&mut self, id: &str) -> Result<&mut LiveEntry, ErrReply> {
        self.live
            .get_mut(id)
            .ok_or_else(|| Self::internal_missing(id))
    }

    /// Makes `id` resident: a no-op when live, otherwise a checkpoint
    /// restore (with LRU eviction to make room).
    fn ensure_live(&mut self, id: &str) -> Result<(), ErrReply> {
        if !self.live.contains_key(id) {
            let path = self.session_path(id);
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Err(ErrReply::new(
                        code::UNKNOWN_SESSION,
                        format!("no session {id} (see `sessions`)"),
                    ));
                }
                Err(e) => return Err(ErrReply::new(code::IO, format!("reading {id}: {e}"))),
            };
            let session = match TuningSession::from_checkpoint_str(&text) {
                Ok(session) => session,
                Err(e) if e.code == code::CORRUPT => {
                    // Preserve the evidence and report structured
                    // corruption; the id is gone until re-created.
                    quarantine_file(&path).map_err(|qe| {
                        ErrReply::new(code::IO, format!("quarantining {id}: {qe}"))
                    })?;
                    return Err(ErrReply::new(
                        code::CORRUPT,
                        format!("checkpoint of {id} was damaged and quarantined to {id}.json.corrupt: {}", e.msg),
                    ));
                }
                Err(e) => return Err(e),
            };
            if session.id() != id {
                quarantine_file(&path)
                    .map_err(|qe| ErrReply::new(code::IO, format!("quarantining {id}: {qe}")))?;
                return Err(ErrReply::new(
                    code::CORRUPT,
                    format!("checkpoint of {id} claims id {}; quarantined", session.id()),
                ));
            }
            self.make_room()?;
            self.live.insert(
                id.to_string(),
                LiveEntry {
                    session,
                    last_touch: self.clock,
                    dirty: 0,
                },
            );
        }
        self.live_mut(id)?.last_touch = self.clock;
        Ok(())
    }

    /// Evicts least-recently-used sessions until a slot is free, flushing
    /// dirty ones to checkpoint first. Failure to evict is the `busy`
    /// shedding point.
    fn make_room(&mut self) -> Result<(), ErrReply> {
        let cap = self.config.max_live.max(1);
        while self.live.len() >= cap {
            // Select the victim by reference — ties on `last_touch` break
            // to the lexicographically smallest id — and clone the one
            // winning id, not every id per comparison.
            let Some(victim) = self
                .live
                .iter()
                .min_by_key(|&(id, entry)| (entry.last_touch, id))
                .map(|(id, _)| id.clone())
            else {
                return Err(ErrReply::new(
                    code::INTERNAL,
                    "live table at capacity yet empty; eviction bookkeeping slipped",
                ));
            };
            let dirty = self.live[&victim].dirty > 0;
            if dirty {
                let path = self.session_path(&victim);
                if let Err(e) = checkpoint_session(&path, &self.live[&victim].session) {
                    // A table that cannot evict cannot admit: demote to
                    // read-only until the probe proves writes work again.
                    self.demote(HealthState::ReadOnly);
                    let msg = e.msg;
                    return Err(self.shed(
                        code::BUSY,
                        &format!("live-session table full and evicting {victim} failed: {msg}"),
                    ));
                }
            }
            // An evicted session's trained surrogate is exactly what the
            // warm store wants: harvest it before the entry disappears.
            if let Some(entry) = self.live.get(&victim) {
                Self::harvest_warm(&mut self.warm, &self.config.noise_regime, &entry.session);
            }
            self.live.remove(&victim);
        }
        self.busy_streak = 0;
        Ok(())
    }

    /// Builds the warm-store key for a session under this engine's noise
    /// regime.
    fn warm_key(noise: &str, kernel: &str, space: &ParameterSpace, spec: SurrogateSpec) -> WarmKey {
        WarmKey::new(kernel, space, spec.name(), noise)
    }

    /// Looks up a cached surrogate for a prospective session. `None` when
    /// the store is disabled or has no matching entry.
    fn probe_warm(
        &mut self,
        kernel: &str,
        space: &ParameterSpace,
        spec: SurrogateSpec,
    ) -> Option<WarmStart> {
        let store = self.warm.as_mut()?;
        let key = Self::warm_key(&self.config.noise_regime, kernel, space, spec);
        let entry = store.probe(&key)?;
        Some(WarmStart {
            snapshot: entry.model.clone(),
            observations: entry.observations,
        })
    }

    /// Offers a session's trained surrogate to the warm store (associated
    /// fn so callers can split the borrow of `self.warm` from `self.live`).
    fn harvest_warm(warm: &mut Option<WarmStore>, noise: &str, session: &TuningSession) {
        let Some(store) = warm.as_mut() else { return };
        let Some((depth, snapshot)) = session.model_snapshot() else {
            return;
        };
        let key = Self::warm_key(noise, session.kernel(), session.space(), session.spec());
        store.insert(&key, depth, snapshot);
    }

    /// Checkpoints every dirty live session (shutdown/EOF/drain path) and
    /// reports the per-session outcome as a [`DrainSummary`] instead of
    /// free-form stderr lines — the drain verb and both transports render
    /// the same structured `drained ok <n> failed <m>` summary. With the
    /// default cadence of 1 nothing is ever dirty here. Fitted live
    /// surrogates are also harvested into the warm store, which is then
    /// persisted — advisory, so store failures are carried in the summary
    /// but never counted against the flush.
    pub fn flush_all(&mut self) -> DrainSummary {
        let mut outcomes = Vec::new();
        let ids: Vec<String> = self.live.keys().cloned().collect();
        for id in ids {
            let outcome = if self.live[&id].dirty > 0 {
                let path = self.session_path(&id);
                match checkpoint_session(&path, &self.live[&id].session) {
                    Ok(()) => {
                        if let Some(entry) = self.live.get_mut(&id) {
                            entry.dirty = 0;
                        }
                        FlushOutcome::Flushed
                    }
                    Err(e) => {
                        self.flush_failures += 1;
                        FlushOutcome::Failed(e.msg)
                    }
                }
            } else {
                FlushOutcome::Clean
            };
            outcomes.push((id, outcome));
        }
        let mut warm_store_error = None;
        if self.warm.is_some() {
            for entry in self.live.values() {
                Self::harvest_warm(&mut self.warm, &self.config.noise_regime, &entry.session);
            }
            if let Some(store) = &self.warm {
                if let Err(e) = store.save() {
                    warm_store_error =
                        Some(format!("saving warm store {}: {e}", store.path().display()));
                }
            }
        }
        DrainSummary {
            outcomes,
            warm_store_error,
        }
    }

    /// The drain protocol: stop admitting new work, flush every live
    /// session, and report per-session outcomes. After this the ladder is
    /// pinned at [`HealthState::Draining`] — only `sessions`, `health`,
    /// `drain`, `quit` and `shutdown` keep answering.
    pub fn drain(&mut self) -> DrainSummary {
        self.state = HealthState::Draining;
        self.flush_all()
    }
}

fn attached(conn: &ConnState) -> Result<String, ErrReply> {
    conn.current.clone().ok_or_else(|| {
        ErrReply::new(
            code::NO_SESSION,
            "no session attached (newsession or attach first)",
        )
    })
}

fn model_err(e: alic_model::ModelError) -> ErrReply {
    ErrReply::new(code::MODEL, e.to_string())
}

/// Writes one session checkpoint through the ledger's atomic, retrying,
/// read-back-verifying writer.
///
/// Verification matters more here than in the campaign ledger: a torn unit
/// record heals by deterministic re-execution, but a session checkpoint is
/// the only copy of client-provided observations — a torn write that went
/// undetected would surface later as quarantined (lost) state. The
/// verified writer turns it into a structured, retryable error instead.
fn checkpoint_session(path: &Path, session: &TuningSession) -> Result<(), ErrReply> {
    let text = session.to_checkpoint_string()?;
    write_verified(path, &text)
        .map_err(|e| ErrReply::new(code::IO, format!("checkpointing {}: {e}", session.id())))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::sync::atomic::{AtomicUsize, Ordering};

    static CASE: AtomicUsize = AtomicUsize::new(0);

    fn temp_engine(label: &str) -> (Engine, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "alic-serve-engine-{label}-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = ServeConfig::new(&dir);
        config.default_model = SurrogateSpec::from_name("gp").unwrap();
        (Engine::open(config).unwrap(), dir)
    }

    fn ok(engine: &mut Engine, conn: &mut ConnState, line: &str) -> String {
        let response = engine.handle_line(conn, line);
        let reply = response.reply.expect("non-empty line yields a reply");
        assert!(reply.starts_with("ok "), "{line:?} -> {reply}");
        reply
    }

    fn err(engine: &mut Engine, conn: &mut ConnState, line: &str) -> String {
        let reply = engine.handle_line(conn, line).reply.unwrap();
        assert!(reply.starts_with("err "), "{line:?} -> {reply}");
        reply
    }

    #[test]
    fn full_session_lifecycle_over_the_wire() {
        let (mut engine, dir) = temp_engine("lifecycle");
        let mut conn = ConnState::new();
        let reply = ok(
            &mut engine,
            &mut conn,
            "newsession mvt u:unroll:1:9,t:cache-tile:0:5",
        );
        assert_eq!(reply, "ok session s000000 dim 2");
        assert!(dir.join(SESSIONS_DIR).join("s000000.json").exists());

        let suggest = ok(&mut engine, &mut conn, "suggest 2");
        assert_eq!(suggest.split_whitespace().count(), 4);
        ok(&mut engine, &mut conn, "observe 3,2 1.5");
        ok(&mut engine, &mut conn, "observe 4,1 1.25");
        assert_eq!(ok(&mut engine, &mut conn, "best"), "ok best 4,1 1.25");
        assert_eq!(
            ok(&mut engine, &mut conn, "checkpoint"),
            "ok checkpoint sessions/s000000.json"
        );
        assert_eq!(
            ok(&mut engine, &mut conn, "sessions"),
            "ok sessions s000000"
        );
        let response = engine.handle_line(&mut conn, "quit");
        assert_eq!(response.action, Action::CloseConnection);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn structured_errors_for_misuse() {
        let (mut engine, dir) = temp_engine("errors");
        let mut conn = ConnState::new();
        assert!(err(&mut engine, &mut conn, "best").starts_with("err no-session"));
        assert!(err(&mut engine, &mut conn, "attach s000009").starts_with("err unknown-session"));
        ok(&mut engine, &mut conn, "newsession mvt u:unroll:1:9");
        assert!(err(&mut engine, &mut conn, "best").starts_with("err empty"));
        assert!(err(&mut engine, &mut conn, "observe 99 1.0").starts_with("err bad-config"));
        assert!(err(&mut engine, &mut conn, "observe 3,3 1.0").starts_with("err bad-config"));
        assert!(
            err(&mut engine, &mut conn, "newsession mvt u:unroll bogusmodel")
                .starts_with("err bad-model")
        );
        assert!(engine.handle_line(&mut conn, "   ").reply.is_none());
        let long = "x".repeat(MAX_LINE_BYTES + 1);
        assert!(err(&mut engine, &mut conn, &long).starts_with("err "));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_resumes_sessions_with_identical_reads() {
        let (mut engine, dir) = temp_engine("restart");
        let mut conn = ConnState::new();
        ok(
            &mut engine,
            &mut conn,
            "newsession mvt u:unroll:1:20,t:cache-tile:0:6 gp",
        );
        for line in [
            "observe 3,2 4.0",
            "observe 9,1 3.1",
            "observe 14,5 2.8",
            "observe 6,3 3.4",
            "observe 18,0 2.9",
        ] {
            ok(&mut engine, &mut conn, line);
        }
        let best = ok(&mut engine, &mut conn, "best");
        let suggest = ok(&mut engine, &mut conn, "suggest 3");
        // Simulated SIGKILL: drop the engine with no shutdown handshake.
        drop(engine);

        let mut engine = Engine::open(ServeConfig::new(&dir)).unwrap();
        let mut conn = ConnState::new();
        assert_eq!(
            ok(&mut engine, &mut conn, "attach s000000"),
            "ok attached s000000 obs 5"
        );
        assert_eq!(ok(&mut engine, &mut conn, "best"), best);
        assert_eq!(ok(&mut engine, &mut conn, "suggest 3"), suggest);
        // Id allocation continues past restored sessions.
        let reply = ok(&mut engine, &mut conn, "newsession mvt u:unroll");
        assert!(reply.starts_with("ok session s000001 "), "{reply}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_eviction_bounds_live_sessions_transparently() {
        let (mut engine, dir) = temp_engine("lru");
        engine.config.max_live = 2;
        let mut conn = ConnState::new();
        ok(&mut engine, &mut conn, "newsession k0 u:unroll:1:9");
        ok(&mut engine, &mut conn, "observe 4 1.0");
        ok(&mut engine, &mut conn, "newsession k1 u:unroll:1:9");
        ok(&mut engine, &mut conn, "newsession k2 u:unroll:1:9");
        assert!(engine.live_sessions() <= 2);
        // The evicted session transparently reloads from its checkpoint.
        assert_eq!(
            ok(&mut engine, &mut conn, "attach s000000"),
            "ok attached s000000 obs 1"
        );
        assert_eq!(ok(&mut engine, &mut conn, "best"), "ok best 4 1.0");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eviction_ties_on_last_touch_break_to_the_smallest_id() {
        let (mut engine, dir) = temp_engine("lru-tie");
        engine.config.max_live = 2;
        let mut conn = ConnState::new();
        ok(&mut engine, &mut conn, "newsession k0 u:unroll:1:9");
        ok(&mut engine, &mut conn, "newsession k1 u:unroll:1:9");
        // Force the tie the LRU clock normally prevents.
        for entry in engine.live.values_mut() {
            entry.last_touch = 7;
        }
        ok(&mut engine, &mut conn, "newsession k2 u:unroll:1:9");
        let resident: Vec<&String> = engine.live.keys().collect();
        assert_eq!(resident, ["s000001", "s000002"], "s000000 should evict");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_store_seeds_sessions_across_restarts() {
        let (mut engine, dir) = temp_engine("warm");
        engine.config.warm_store = Some(dir.join("warm.json"));
        engine.warm = Some(WarmStore::open(dir.join("warm.json")));
        let mut conn = ConnState::new();
        assert_eq!(
            ok(
                &mut engine,
                &mut conn,
                "newsession mvt u:unroll:1:9,t:cache-tile:0:5 gp"
            ),
            "ok session s000000 dim 2",
            "empty store: cold reply is byte-identical to a store-less build"
        );
        for line in [
            "observe 3,2 4.0",
            "observe 9,1 3.1",
            "observe 5,5 2.8",
            "observe 6,3 3.4",
            "observe 8,0 2.9",
        ] {
            ok(&mut engine, &mut conn, line);
        }
        assert_eq!(
            engine.handle_line(&mut conn, "quit").action,
            Action::CloseConnection
        );
        assert_eq!(engine.warm_counters(), Some((0, 1, 1)));
        drop(engine);

        let mut config = ServeConfig::new(&dir);
        config.default_model = SurrogateSpec::from_name("gp").unwrap();
        config.warm_store = Some(dir.join("warm.json"));
        let mut engine = Engine::open(config).unwrap();
        let mut conn = ConnState::new();
        // Same kernel/space/family: seeded from the cached surrogate.
        let reply = ok(
            &mut engine,
            &mut conn,
            "newsession mvt u:unroll:1:9,t:cache-tile:0:5 gp",
        );
        assert_eq!(reply, "ok session s000001 dim 2 warm 5");
        // Counters persist in the store file: 1 miss + 1 store from the
        // first process, plus this hit.
        assert_eq!(engine.warm_counters(), Some((1, 1, 1)));
        // Model-driven from observation zero, and still fully functional.
        ok(&mut engine, &mut conn, "suggest 2");
        ok(&mut engine, &mut conn, "observe 4,4 2.7");
        assert_eq!(ok(&mut engine, &mut conn, "best"), "ok best 4,4 2.7");
        // A different space shape misses and starts cold.
        let reply = ok(&mut engine, &mut conn, "newsession mvt u:unroll:1:5 gp");
        assert_eq!(reply, "ok session s000002 dim 1");
        // Warm sessions survive a second restart through their checkpoint
        // alone (the store is advisory after creation).
        ok(&mut engine, &mut conn, "attach s000001");
        let suggest = ok(&mut engine, &mut conn, "suggest 3");
        drop(engine);
        let mut engine = Engine::open(ServeConfig::new(&dir)).unwrap();
        let mut conn = ConnState::new();
        assert_eq!(
            ok(&mut engine, &mut conn, "attach s000001"),
            "ok attached s000001 obs 1"
        );
        assert_eq!(ok(&mut engine, &mut conn, "suggest 3"), suggest);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_warm_store_degrades_to_cold_start() {
        let (engine, dir) = temp_engine("warm-corrupt");
        drop(engine);
        std::fs::write(dir.join("warm.json"), "{half a store").unwrap();
        let mut config = ServeConfig::new(&dir);
        config.default_model = SurrogateSpec::from_name("gp").unwrap();
        config.warm_store = Some(dir.join("warm.json"));
        let mut engine = Engine::open(config).unwrap();
        let mut conn = ConnState::new();
        assert_eq!(
            ok(&mut engine, &mut conn, "newsession mvt u:unroll:1:9"),
            "ok session s000000 dim 1"
        );
        assert!(dir.join("warm.json.corrupt").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoints_are_quarantined_with_structured_errors() {
        let (mut engine, dir) = temp_engine("corrupt");
        let mut conn = ConnState::new();
        ok(&mut engine, &mut conn, "newsession mvt u:unroll:1:9");
        drop(engine);
        let path = dir.join(SESSIONS_DIR).join("s000000.json");
        std::fs::write(&path, "{torn").unwrap();

        let mut engine = Engine::open(ServeConfig::new(&dir)).unwrap();
        let mut conn = ConnState::new();
        let reply = err(&mut engine, &mut conn, "attach s000000");
        assert!(reply.starts_with("err corrupt"), "{reply}");
        assert!(!path.exists());
        assert!(dir.join(SESSIONS_DIR).join("s000000.json.corrupt").exists());
        // The damaged id no longer resolves; the evidence is preserved.
        assert!(err(&mut engine, &mut conn, "attach s000000").starts_with("err unknown-session"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_deadline_sheds_requests_without_mutating() {
        let (mut engine, dir) = temp_engine("deadline");
        let mut conn = ConnState::new();
        ok(&mut engine, &mut conn, "newsession mvt u:unroll:1:9");
        engine.config.deadline = Duration::ZERO;
        assert!(err(&mut engine, &mut conn, "observe 4 1.0").starts_with("err deadline"));
        assert!(err(&mut engine, &mut conn, "suggest").starts_with("err deadline"));
        engine.config.deadline = DEFAULT_DEADLINE;
        // The shed observe left no trace.
        assert!(err(&mut engine, &mut conn, "best").starts_with("err empty"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
