//! The request engine: session table, dispatch, durability, degradation.
//!
//! The engine is transport-agnostic — [`Engine::handle_line`] maps one
//! request line to one reply, and the stdin/TCP loops in [`crate::daemon`]
//! are thin shells around it. Its contracts:
//!
//! * **Replied ⇒ durable** (with the default `checkpoint_every = 1`): a
//!   mutating request is checkpointed through the ledger's
//!   [`write_verified`] *before* the `ok` reply exists; on checkpoint
//!   failure the mutation is rolled back and a structured `err` returned.
//!   The converse does not hold — a kill between commit and reply can leave
//!   one acknowledged-looking observation on disk (at-least-once). Clients
//!   needing exactly-once re-`attach` and compare the reported observation
//!   count before retrying an unacknowledged `observe`.
//! * **Panic isolation**: dispatch runs under `catch_unwind`; a panicking
//!   request detaches the connection's live session (its on-disk
//!   checkpoint is unaffected) and yields `err panic`, like
//!   `heal_campaign` quarantines a panicking work unit.
//! * **Deadlines**: requests check a per-request deadline at safe points
//!   (never between a durable commit and its reply) and shed with
//!   `err deadline`.
//! * **Graceful degradation**: at most `max_live` sessions are resident;
//!   attaching one more evicts the least-recently-used idle session to its
//!   checkpoint. When even eviction fails (e.g. a failing disk), requests
//!   are shed with `err busy retry-after-ms <hint>`, the hint backing off
//!   exponentially while the condition persists.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use alic_core::runner::ledger::{quarantine_file, write_verified};
use alic_core::warmstore::{WarmKey, WarmStore};
use alic_model::spec::SurrogateSpec;
use alic_sim::space::ParameterSpace;
use alic_stats::fault::{inject, FaultSite};
use alic_stats::rng::derive_seed2;

use crate::protocol::{
    self, code, format_config, format_cost, sanitize, ErrReply, Request, MAX_LINE_BYTES,
};
use crate::session::{TuningSession, WarmStart};

/// Subdirectory of the serve directory holding one checkpoint per session.
pub const SESSIONS_DIR: &str = "sessions";

/// Default bound on resident live sessions.
pub const DEFAULT_MAX_LIVE: usize = 8;

/// Default per-request deadline.
pub const DEFAULT_DEADLINE: Duration = Duration::from_millis(2_000);

/// RNG stream label under which per-session seeds derive from the daemon
/// seed.
const STREAM_SESSION_SEED: u64 = 0x5e55;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root of the checkpoint directory (`<dir>/sessions/<id>.json`).
    pub dir: PathBuf,
    /// Surrogate family for sessions that do not name one.
    pub default_model: SurrogateSpec,
    /// Base seed; per-session seeds derive from it and are checkpointed, so
    /// restarts (even with a different base seed) keep existing sessions'
    /// streams.
    pub seed: u64,
    /// Bound on resident live sessions before LRU eviction kicks in.
    pub max_live: usize,
    /// Per-request deadline.
    pub deadline: Duration,
    /// Checkpoint cadence in observations. `1` (the default) gives the
    /// replied-⇒-durable guarantee; larger values trade a bounded window of
    /// acknowledged-but-volatile observations for fewer writes under load.
    pub checkpoint_every: usize,
    /// Optional warm-start store path. `None` (the default) disables warm
    /// starts entirely — every reply stays byte-identical to a build
    /// without the store.
    pub warm_store: Option<PathBuf>,
    /// Noise-regime label namespacing warm-store keys, so surrogates
    /// trained under an incompatible featurization (e.g. campaign
    /// normalizers) never seed serve sessions.
    pub noise_regime: String,
}

impl ServeConfig {
    /// A default-configured engine rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            dir: dir.into(),
            default_model: SurrogateSpec::default(),
            seed: 0,
            max_live: DEFAULT_MAX_LIVE,
            deadline: DEFAULT_DEADLINE,
            checkpoint_every: 1,
            warm_store: None,
            noise_regime: "default".to_string(),
        }
    }
}

/// What the transport loop should do after writing the reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep reading requests.
    Continue,
    /// Close this connection (`quit`).
    CloseConnection,
    /// Stop the whole daemon (`shutdown`).
    ShutdownDaemon,
}

/// One handled request: the reply line (if any) and the follow-up action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Reply line without trailing newline; `None` for blank input.
    pub reply: Option<String>,
    /// Transport follow-up.
    pub action: Action,
}

impl Response {
    fn text(reply: String, action: Action) -> Self {
        Response {
            reply: Some(reply),
            action,
        }
    }
}

/// Per-connection state: which session the connection is talking to.
#[derive(Debug, Clone, Default)]
pub struct ConnState {
    current: Option<String>,
}

impl ConnState {
    /// A fresh connection attached to nothing.
    pub fn new() -> Self {
        ConnState::default()
    }

    /// The attached session id, if any.
    pub fn current(&self) -> Option<&str> {
        self.current.as_deref()
    }
}

#[derive(Debug)]
struct LiveEntry {
    session: TuningSession,
    last_touch: u64,
    dirty: usize,
}

/// The daemon's core: a bounded table of live sessions over a checkpoint
/// directory.
#[derive(Debug)]
pub struct Engine {
    config: ServeConfig,
    live: BTreeMap<String, LiveEntry>,
    clock: u64,
    next_id: u64,
    busy_streak: u32,
    warm: Option<WarmStore>,
}

impl Engine {
    /// Opens (creating if necessary) the serve directory and scans existing
    /// checkpoints so new session ids never collide with old ones.
    ///
    /// # Errors
    ///
    /// Returns a message when the directory cannot be created or scanned.
    pub fn open(config: ServeConfig) -> Result<Engine, String> {
        let sessions = config.dir.join(SESSIONS_DIR);
        std::fs::create_dir_all(&sessions)
            .map_err(|e| format!("cannot create {}: {e}", sessions.display()))?;
        let mut next_id = 0u64;
        let entries = std::fs::read_dir(&sessions)
            .map_err(|e| format!("cannot scan {}: {e}", sessions.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot scan {}: {e}", sessions.display()))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(n) = name
                .strip_prefix('s')
                .and_then(|rest| rest.strip_suffix(".json"))
                .filter(|digits| digits.len() == 6)
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                next_id = next_id.max(n + 1);
            }
        }
        // A corrupt store quarantines inside `open` and comes back empty,
        // so warm-start damage can never fail daemon startup.
        let warm = config.warm_store.as_deref().map(WarmStore::open);
        Ok(Engine {
            config,
            live: BTreeMap::new(),
            clock: 0,
            next_id,
            busy_streak: 0,
            warm,
        })
    }

    /// Warm-store hit/miss/store counters (`None` when disabled).
    pub fn warm_counters(&self) -> Option<(u64, u64, u64)> {
        self.warm
            .as_ref()
            .map(|w| (w.hits(), w.misses(), w.stores()))
    }

    /// The engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of currently resident live sessions.
    pub fn live_sessions(&self) -> usize {
        self.live.len()
    }

    fn sessions_dir(&self) -> PathBuf {
        self.config.dir.join(SESSIONS_DIR)
    }

    fn session_path(&self, id: &str) -> PathBuf {
        self.sessions_dir().join(format!("{id}.json"))
    }

    /// Handles one raw input line and returns the reply plus transport
    /// action. Never panics: parsing is total and dispatch runs under
    /// `catch_unwind`.
    pub fn handle_line(&mut self, conn: &mut ConnState, line: &str) -> Response {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Response {
                reply: None,
                action: Action::Continue,
            };
        }
        if line.len() > MAX_LINE_BYTES {
            return Response::text(
                ErrReply::new(code::PARSE, format!("line exceeds {MAX_LINE_BYTES} bytes")).render(),
                Action::Continue,
            );
        }
        let request = match protocol::parse_request(trimmed) {
            Ok(request) => request,
            Err(e) => return Response::text(e.render(), Action::Continue),
        };
        let started = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| self.dispatch(conn, &request, started))) {
            Ok(Ok((reply, action))) => Response::text(reply, action),
            Ok(Err(e)) => Response::text(e.render(), Action::Continue),
            Err(payload) => {
                // The live state the panicking request touched is suspect;
                // detach it. The on-disk checkpoint is intact (mutations
                // checkpoint before they apply), so a re-attach restores
                // the session to its last durable state.
                if let Some(id) = conn.current.take() {
                    self.live.remove(&id);
                }
                Response::text(
                    ErrReply::new(
                        code::PANIC,
                        format!(
                            "request panicked ({}); session detached, re-attach to restore it",
                            sanitize(&panic_message(payload.as_ref()))
                        ),
                    )
                    .render(),
                    Action::Continue,
                )
            }
        }
    }

    fn dispatch(
        &mut self,
        conn: &mut ConnState,
        request: &Request,
        started: Instant,
    ) -> Result<(String, Action), ErrReply> {
        // The chaos plane's panic site fires before any mutation, so an
        // injected panic is always clean: reply `err panic`, retry, heal.
        if inject(FaultSite::UnitPanic) {
            panic!("chaos: injected request panic");
        }
        self.clock += 1;
        let deadline = self.config.deadline;
        let over_deadline = || started.elapsed() > deadline;
        let deadline_err = || {
            ErrReply::new(
                code::DEADLINE,
                format!("request exceeded its {}ms deadline", deadline.as_millis()),
            )
        };
        match request {
            Request::NewSession {
                kernel,
                space,
                model,
            } => {
                let spec = match model {
                    None => self.config.default_model,
                    Some(name) => SurrogateSpec::from_name(name).ok_or_else(|| {
                        ErrReply::new(
                            code::BAD_MODEL,
                            format!(
                                "unknown model {:?} (known: {})",
                                sanitize(name),
                                SurrogateSpec::names().join(", ")
                            ),
                        )
                    })?,
                };
                self.make_room()?;
                let id = format!("s{:06}", self.next_id);
                let seed = derive_seed2(self.config.seed, STREAM_SESSION_SEED, self.next_id);
                // Consult the warm store; a snapshot that fails to restore
                // degrades silently to a cold session.
                let session = self
                    .probe_warm(kernel, space, spec)
                    .and_then(|warm| {
                        TuningSession::new_warm(&id, kernel, space.clone(), spec, seed, warm).ok()
                    })
                    .unwrap_or_else(|| TuningSession::new(&id, kernel, space.clone(), spec, seed));
                let warm_obs = session.warm_observations();
                // Durable before acknowledged: the session exists on disk
                // before the client ever learns its id.
                checkpoint_session(&self.session_path(&id), &session)?;
                let dim = space.dimension();
                self.next_id += 1;
                self.live.insert(
                    id.clone(),
                    LiveEntry {
                        session,
                        last_touch: self.clock,
                        dirty: 0,
                    },
                );
                conn.current = Some(id.clone());
                let reply = match warm_obs {
                    Some(n) => format!("ok session {id} dim {dim} warm {n}"),
                    None => format!("ok session {id} dim {dim}"),
                };
                Ok((reply, Action::Continue))
            }
            Request::Attach { id } => {
                self.ensure_live(id)?;
                conn.current = Some(id.clone());
                let n = self.live[id].session.observations();
                Ok((format!("ok attached {id} obs {n}"), Action::Continue))
            }
            Request::Suggest { count } => {
                let id = attached(conn)?;
                self.ensure_live(&id)?;
                let entry = self.live.get_mut(&id).expect("ensured live");
                let configs = entry.session.suggest(*count).map_err(model_err)?;
                // Reads are side-effect free; shedding after the work is
                // done still protects the *connection's* latency budget.
                if over_deadline() {
                    return Err(deadline_err());
                }
                let mut reply = String::from("ok suggest");
                for c in &configs {
                    reply.push(' ');
                    reply.push_str(&format_config(c));
                }
                Ok((reply, Action::Continue))
            }
            Request::Observe { config, cost } => {
                let id = attached(conn)?;
                self.ensure_live(&id)?;
                // Validate everything and check the deadline *before* the
                // mutation: past this point the request always commits or
                // rolls back, never half-happens.
                self.live[&id]
                    .session
                    .space()
                    .validate(config)
                    .map_err(|e| ErrReply::new(code::BAD_CONFIG, e.to_string()))?;
                if over_deadline() {
                    return Err(deadline_err());
                }
                let path = self.session_path(&id);
                let cadence = self.config.checkpoint_every.max(1);
                let entry = self.live.get_mut(&id).expect("ensured live");
                entry.session.record(config.clone(), *cost);
                entry.dirty += 1;
                if entry.dirty >= cadence {
                    if let Err(e) = checkpoint_session(&path, &entry.session) {
                        entry.session.unrecord();
                        entry.dirty -= 1;
                        return Err(e);
                    }
                    entry.dirty = 0;
                }
                if let Err(model_failure) = entry.session.apply_last() {
                    // The model rejected the observation: roll the log back
                    // in memory, then bring the disk copy back in line.
                    entry.session.unrecord();
                    if checkpoint_session(&path, &entry.session).is_ok() {
                        // Disk and memory agree on the rolled-back log.
                        entry.dirty = 0;
                        if entry.session.rebuild().is_err() {
                            // The surrogate would not rebuild; drop the
                            // entry so the next attach replays from the
                            // (now correct) checkpoint.
                            self.live.remove(&id);
                        }
                    } else {
                        // The rollback checkpoint failed, so the in-memory
                        // log is the only correct copy: at cadence 1 the
                        // disk still holds the rejected observation, at
                        // larger cadences it may be missing acknowledged
                        // ones. Keep the entry resident and dirty so a
                        // later checkpoint, eviction, or flush repairs the
                        // disk — dropping it here would resurrect the
                        // rejected observation (or lose acknowledged ones)
                        // on the next attach.
                        entry.dirty = entry.dirty.max(1);
                        let _ = entry.session.rebuild();
                    }
                    return Err(model_err(model_failure));
                }
                let n = entry.session.observations();
                Ok((format!("ok observed {n}"), Action::Continue))
            }
            Request::Best => {
                let id = attached(conn)?;
                self.ensure_live(&id)?;
                let entry = &self.live[&id];
                match entry.session.best() {
                    Some((config, cost)) => Ok((
                        format!("ok best {} {}", format_config(config), format_cost(cost)),
                        Action::Continue,
                    )),
                    None => Err(ErrReply::new(code::EMPTY, "no observations recorded yet")),
                }
            }
            Request::Checkpoint => {
                let id = attached(conn)?;
                self.ensure_live(&id)?;
                let path = self.session_path(&id);
                let entry = self.live.get_mut(&id).expect("ensured live");
                checkpoint_session(&path, &entry.session)?;
                entry.dirty = 0;
                Ok((
                    format!("ok checkpoint {SESSIONS_DIR}/{id}.json"),
                    Action::Continue,
                ))
            }
            Request::Sessions => {
                let mut ids: std::collections::BTreeSet<String> =
                    self.live.keys().cloned().collect();
                let entries = std::fs::read_dir(self.sessions_dir())
                    .map_err(|e| ErrReply::new(code::IO, format!("scanning sessions: {e}")))?;
                for entry in entries {
                    let entry = entry
                        .map_err(|e| ErrReply::new(code::IO, format!("scanning sessions: {e}")))?;
                    if let Some(name) = entry.file_name().to_str() {
                        if let Some(id) = name.strip_suffix(".json") {
                            if protocol::parse_session_id(id).is_ok() {
                                ids.insert(id.to_string());
                            }
                        }
                    }
                }
                let mut reply = String::from("ok sessions");
                for id in ids {
                    reply.push(' ');
                    reply.push_str(&id);
                }
                Ok((reply, Action::Continue))
            }
            Request::Quit => {
                self.flush_all();
                Ok(("ok bye".to_string(), Action::CloseConnection))
            }
            Request::Shutdown => {
                self.flush_all();
                Ok(("ok shutdown".to_string(), Action::ShutdownDaemon))
            }
        }
    }

    /// Makes `id` resident: a no-op when live, otherwise a checkpoint
    /// restore (with LRU eviction to make room).
    fn ensure_live(&mut self, id: &str) -> Result<(), ErrReply> {
        if !self.live.contains_key(id) {
            let path = self.session_path(id);
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Err(ErrReply::new(
                        code::UNKNOWN_SESSION,
                        format!("no session {id} (see `sessions`)"),
                    ));
                }
                Err(e) => return Err(ErrReply::new(code::IO, format!("reading {id}: {e}"))),
            };
            let session = match TuningSession::from_checkpoint_str(&text) {
                Ok(session) => session,
                Err(e) if e.code == code::CORRUPT => {
                    // Preserve the evidence and report structured
                    // corruption; the id is gone until re-created.
                    quarantine_file(&path).map_err(|qe| {
                        ErrReply::new(code::IO, format!("quarantining {id}: {qe}"))
                    })?;
                    return Err(ErrReply::new(
                        code::CORRUPT,
                        format!("checkpoint of {id} was damaged and quarantined to {id}.json.corrupt: {}", e.msg),
                    ));
                }
                Err(e) => return Err(e),
            };
            if session.id() != id {
                quarantine_file(&path)
                    .map_err(|qe| ErrReply::new(code::IO, format!("quarantining {id}: {qe}")))?;
                return Err(ErrReply::new(
                    code::CORRUPT,
                    format!("checkpoint of {id} claims id {}; quarantined", session.id()),
                ));
            }
            self.make_room()?;
            self.live.insert(
                id.to_string(),
                LiveEntry {
                    session,
                    last_touch: self.clock,
                    dirty: 0,
                },
            );
        }
        let entry = self.live.get_mut(id).expect("just inserted or present");
        entry.last_touch = self.clock;
        Ok(())
    }

    /// Evicts least-recently-used sessions until a slot is free, flushing
    /// dirty ones to checkpoint first. Failure to evict is the `busy`
    /// shedding point.
    fn make_room(&mut self) -> Result<(), ErrReply> {
        let cap = self.config.max_live.max(1);
        while self.live.len() >= cap {
            // Select the victim by reference — ties on `last_touch` break
            // to the lexicographically smallest id — and clone the one
            // winning id, not every id per comparison.
            let victim = self
                .live
                .iter()
                .min_by_key(|&(id, entry)| (entry.last_touch, id))
                .map(|(id, _)| id.clone())
                .expect("table is non-empty when at capacity");
            let dirty = self.live[&victim].dirty > 0;
            if dirty {
                let path = self.session_path(&victim);
                if let Err(e) = checkpoint_session(&path, &self.live[&victim].session) {
                    self.busy_streak = self.busy_streak.saturating_add(1);
                    let hint = 50u64 << (self.busy_streak - 1).min(5);
                    return Err(ErrReply::new(
                        code::BUSY,
                        format!(
                            "retry-after-ms {hint} (live-session table full and evicting {victim} failed: {})",
                            e.msg
                        ),
                    ));
                }
            }
            // An evicted session's trained surrogate is exactly what the
            // warm store wants: harvest it before the entry disappears.
            if let Some(entry) = self.live.get(&victim) {
                Self::harvest_warm(&mut self.warm, &self.config.noise_regime, &entry.session);
            }
            self.live.remove(&victim);
        }
        self.busy_streak = 0;
        Ok(())
    }

    /// Builds the warm-store key for a session under this engine's noise
    /// regime.
    fn warm_key(noise: &str, kernel: &str, space: &ParameterSpace, spec: SurrogateSpec) -> WarmKey {
        WarmKey::new(kernel, space, spec.name(), noise)
    }

    /// Looks up a cached surrogate for a prospective session. `None` when
    /// the store is disabled or has no matching entry.
    fn probe_warm(
        &mut self,
        kernel: &str,
        space: &ParameterSpace,
        spec: SurrogateSpec,
    ) -> Option<WarmStart> {
        let store = self.warm.as_mut()?;
        let key = Self::warm_key(&self.config.noise_regime, kernel, space, spec);
        let entry = store.probe(&key)?;
        Some(WarmStart {
            snapshot: entry.model.clone(),
            observations: entry.observations,
        })
    }

    /// Offers a session's trained surrogate to the warm store (associated
    /// fn so callers can split the borrow of `self.warm` from `self.live`).
    fn harvest_warm(warm: &mut Option<WarmStore>, noise: &str, session: &TuningSession) {
        let Some(store) = warm.as_mut() else { return };
        let Some((depth, snapshot)) = session.model_snapshot() else {
            return;
        };
        let key = Self::warm_key(noise, session.kernel(), session.space(), session.spec());
        store.insert(&key, depth, snapshot);
    }

    /// Checkpoints every dirty live session (shutdown/EOF path), returning
    /// how many flushes failed. With the default cadence of 1 nothing is
    /// ever dirty here. Each failure names its session path on stderr so
    /// an operator can find (and the daemon's exit code can reflect) what
    /// was left volatile. Fitted live surrogates are also harvested into
    /// the warm store, which is then persisted — advisory, so store
    /// failures are logged but never counted against the flush.
    pub fn flush_all(&mut self) -> usize {
        let mut failures = 0;
        let ids: Vec<String> = self.live.keys().cloned().collect();
        for id in ids {
            if self.live[&id].dirty > 0 {
                let path = self.session_path(&id);
                match checkpoint_session(&path, &self.live[&id].session) {
                    Ok(()) => self.live.get_mut(&id).expect("present").dirty = 0,
                    Err(e) => {
                        failures += 1;
                        eprintln!("alic-serve: flushing {} failed: {}", path.display(), e.msg);
                    }
                }
            }
        }
        if self.warm.is_some() {
            for entry in self.live.values() {
                Self::harvest_warm(&mut self.warm, &self.config.noise_regime, &entry.session);
            }
            if let Some(store) = &self.warm {
                if let Err(e) = store.save() {
                    eprintln!(
                        "alic-serve: saving warm store {} failed: {e}",
                        store.path().display()
                    );
                }
            }
        }
        failures
    }
}

fn attached(conn: &ConnState) -> Result<String, ErrReply> {
    conn.current.clone().ok_or_else(|| {
        ErrReply::new(
            code::NO_SESSION,
            "no session attached (newsession or attach first)",
        )
    })
}

fn model_err(e: alic_model::ModelError) -> ErrReply {
    ErrReply::new(code::MODEL, e.to_string())
}

/// Writes one session checkpoint through the ledger's atomic, retrying,
/// read-back-verifying writer.
///
/// Verification matters more here than in the campaign ledger: a torn unit
/// record heals by deterministic re-execution, but a session checkpoint is
/// the only copy of client-provided observations — a torn write that went
/// undetected would surface later as quarantined (lost) state. The
/// verified writer turns it into a structured, retryable error instead.
fn checkpoint_session(path: &Path, session: &TuningSession) -> Result<(), ErrReply> {
    let text = session.to_checkpoint_string()?;
    write_verified(path, &text)
        .map_err(|e| ErrReply::new(code::IO, format!("checkpointing {}: {e}", session.id())))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::sync::atomic::{AtomicUsize, Ordering};

    static CASE: AtomicUsize = AtomicUsize::new(0);

    fn temp_engine(label: &str) -> (Engine, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "alic-serve-engine-{label}-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = ServeConfig::new(&dir);
        config.default_model = SurrogateSpec::from_name("gp").unwrap();
        (Engine::open(config).unwrap(), dir)
    }

    fn ok(engine: &mut Engine, conn: &mut ConnState, line: &str) -> String {
        let response = engine.handle_line(conn, line);
        let reply = response.reply.expect("non-empty line yields a reply");
        assert!(reply.starts_with("ok "), "{line:?} -> {reply}");
        reply
    }

    fn err(engine: &mut Engine, conn: &mut ConnState, line: &str) -> String {
        let reply = engine.handle_line(conn, line).reply.unwrap();
        assert!(reply.starts_with("err "), "{line:?} -> {reply}");
        reply
    }

    #[test]
    fn full_session_lifecycle_over_the_wire() {
        let (mut engine, dir) = temp_engine("lifecycle");
        let mut conn = ConnState::new();
        let reply = ok(
            &mut engine,
            &mut conn,
            "newsession mvt u:unroll:1:9,t:cache-tile:0:5",
        );
        assert_eq!(reply, "ok session s000000 dim 2");
        assert!(dir.join(SESSIONS_DIR).join("s000000.json").exists());

        let suggest = ok(&mut engine, &mut conn, "suggest 2");
        assert_eq!(suggest.split_whitespace().count(), 4);
        ok(&mut engine, &mut conn, "observe 3,2 1.5");
        ok(&mut engine, &mut conn, "observe 4,1 1.25");
        assert_eq!(ok(&mut engine, &mut conn, "best"), "ok best 4,1 1.25");
        assert_eq!(
            ok(&mut engine, &mut conn, "checkpoint"),
            "ok checkpoint sessions/s000000.json"
        );
        assert_eq!(
            ok(&mut engine, &mut conn, "sessions"),
            "ok sessions s000000"
        );
        let response = engine.handle_line(&mut conn, "quit");
        assert_eq!(response.action, Action::CloseConnection);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn structured_errors_for_misuse() {
        let (mut engine, dir) = temp_engine("errors");
        let mut conn = ConnState::new();
        assert!(err(&mut engine, &mut conn, "best").starts_with("err no-session"));
        assert!(err(&mut engine, &mut conn, "attach s000009").starts_with("err unknown-session"));
        ok(&mut engine, &mut conn, "newsession mvt u:unroll:1:9");
        assert!(err(&mut engine, &mut conn, "best").starts_with("err empty"));
        assert!(err(&mut engine, &mut conn, "observe 99 1.0").starts_with("err bad-config"));
        assert!(err(&mut engine, &mut conn, "observe 3,3 1.0").starts_with("err bad-config"));
        assert!(
            err(&mut engine, &mut conn, "newsession mvt u:unroll bogusmodel")
                .starts_with("err bad-model")
        );
        assert!(engine.handle_line(&mut conn, "   ").reply.is_none());
        let long = "x".repeat(MAX_LINE_BYTES + 1);
        assert!(err(&mut engine, &mut conn, &long).starts_with("err "));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_resumes_sessions_with_identical_reads() {
        let (mut engine, dir) = temp_engine("restart");
        let mut conn = ConnState::new();
        ok(
            &mut engine,
            &mut conn,
            "newsession mvt u:unroll:1:20,t:cache-tile:0:6 gp",
        );
        for line in [
            "observe 3,2 4.0",
            "observe 9,1 3.1",
            "observe 14,5 2.8",
            "observe 6,3 3.4",
            "observe 18,0 2.9",
        ] {
            ok(&mut engine, &mut conn, line);
        }
        let best = ok(&mut engine, &mut conn, "best");
        let suggest = ok(&mut engine, &mut conn, "suggest 3");
        // Simulated SIGKILL: drop the engine with no shutdown handshake.
        drop(engine);

        let mut engine = Engine::open(ServeConfig::new(&dir)).unwrap();
        let mut conn = ConnState::new();
        assert_eq!(
            ok(&mut engine, &mut conn, "attach s000000"),
            "ok attached s000000 obs 5"
        );
        assert_eq!(ok(&mut engine, &mut conn, "best"), best);
        assert_eq!(ok(&mut engine, &mut conn, "suggest 3"), suggest);
        // Id allocation continues past restored sessions.
        let reply = ok(&mut engine, &mut conn, "newsession mvt u:unroll");
        assert!(reply.starts_with("ok session s000001 "), "{reply}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_eviction_bounds_live_sessions_transparently() {
        let (mut engine, dir) = temp_engine("lru");
        engine.config.max_live = 2;
        let mut conn = ConnState::new();
        ok(&mut engine, &mut conn, "newsession k0 u:unroll:1:9");
        ok(&mut engine, &mut conn, "observe 4 1.0");
        ok(&mut engine, &mut conn, "newsession k1 u:unroll:1:9");
        ok(&mut engine, &mut conn, "newsession k2 u:unroll:1:9");
        assert!(engine.live_sessions() <= 2);
        // The evicted session transparently reloads from its checkpoint.
        assert_eq!(
            ok(&mut engine, &mut conn, "attach s000000"),
            "ok attached s000000 obs 1"
        );
        assert_eq!(ok(&mut engine, &mut conn, "best"), "ok best 4 1.0");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eviction_ties_on_last_touch_break_to_the_smallest_id() {
        let (mut engine, dir) = temp_engine("lru-tie");
        engine.config.max_live = 2;
        let mut conn = ConnState::new();
        ok(&mut engine, &mut conn, "newsession k0 u:unroll:1:9");
        ok(&mut engine, &mut conn, "newsession k1 u:unroll:1:9");
        // Force the tie the LRU clock normally prevents.
        for entry in engine.live.values_mut() {
            entry.last_touch = 7;
        }
        ok(&mut engine, &mut conn, "newsession k2 u:unroll:1:9");
        let resident: Vec<&String> = engine.live.keys().collect();
        assert_eq!(resident, ["s000001", "s000002"], "s000000 should evict");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_store_seeds_sessions_across_restarts() {
        let (mut engine, dir) = temp_engine("warm");
        engine.config.warm_store = Some(dir.join("warm.json"));
        engine.warm = Some(WarmStore::open(dir.join("warm.json")));
        let mut conn = ConnState::new();
        assert_eq!(
            ok(
                &mut engine,
                &mut conn,
                "newsession mvt u:unroll:1:9,t:cache-tile:0:5 gp"
            ),
            "ok session s000000 dim 2",
            "empty store: cold reply is byte-identical to a store-less build"
        );
        for line in [
            "observe 3,2 4.0",
            "observe 9,1 3.1",
            "observe 5,5 2.8",
            "observe 6,3 3.4",
            "observe 8,0 2.9",
        ] {
            ok(&mut engine, &mut conn, line);
        }
        assert_eq!(
            engine.handle_line(&mut conn, "quit").action,
            Action::CloseConnection
        );
        assert_eq!(engine.warm_counters(), Some((0, 1, 1)));
        drop(engine);

        let mut config = ServeConfig::new(&dir);
        config.default_model = SurrogateSpec::from_name("gp").unwrap();
        config.warm_store = Some(dir.join("warm.json"));
        let mut engine = Engine::open(config).unwrap();
        let mut conn = ConnState::new();
        // Same kernel/space/family: seeded from the cached surrogate.
        let reply = ok(
            &mut engine,
            &mut conn,
            "newsession mvt u:unroll:1:9,t:cache-tile:0:5 gp",
        );
        assert_eq!(reply, "ok session s000001 dim 2 warm 5");
        // Counters persist in the store file: 1 miss + 1 store from the
        // first process, plus this hit.
        assert_eq!(engine.warm_counters(), Some((1, 1, 1)));
        // Model-driven from observation zero, and still fully functional.
        ok(&mut engine, &mut conn, "suggest 2");
        ok(&mut engine, &mut conn, "observe 4,4 2.7");
        assert_eq!(ok(&mut engine, &mut conn, "best"), "ok best 4,4 2.7");
        // A different space shape misses and starts cold.
        let reply = ok(&mut engine, &mut conn, "newsession mvt u:unroll:1:5 gp");
        assert_eq!(reply, "ok session s000002 dim 1");
        // Warm sessions survive a second restart through their checkpoint
        // alone (the store is advisory after creation).
        ok(&mut engine, &mut conn, "attach s000001");
        let suggest = ok(&mut engine, &mut conn, "suggest 3");
        drop(engine);
        let mut engine = Engine::open(ServeConfig::new(&dir)).unwrap();
        let mut conn = ConnState::new();
        assert_eq!(
            ok(&mut engine, &mut conn, "attach s000001"),
            "ok attached s000001 obs 1"
        );
        assert_eq!(ok(&mut engine, &mut conn, "suggest 3"), suggest);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_warm_store_degrades_to_cold_start() {
        let (engine, dir) = temp_engine("warm-corrupt");
        drop(engine);
        std::fs::write(dir.join("warm.json"), "{half a store").unwrap();
        let mut config = ServeConfig::new(&dir);
        config.default_model = SurrogateSpec::from_name("gp").unwrap();
        config.warm_store = Some(dir.join("warm.json"));
        let mut engine = Engine::open(config).unwrap();
        let mut conn = ConnState::new();
        assert_eq!(
            ok(&mut engine, &mut conn, "newsession mvt u:unroll:1:9"),
            "ok session s000000 dim 1"
        );
        assert!(dir.join("warm.json.corrupt").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoints_are_quarantined_with_structured_errors() {
        let (mut engine, dir) = temp_engine("corrupt");
        let mut conn = ConnState::new();
        ok(&mut engine, &mut conn, "newsession mvt u:unroll:1:9");
        drop(engine);
        let path = dir.join(SESSIONS_DIR).join("s000000.json");
        std::fs::write(&path, "{torn").unwrap();

        let mut engine = Engine::open(ServeConfig::new(&dir)).unwrap();
        let mut conn = ConnState::new();
        let reply = err(&mut engine, &mut conn, "attach s000000");
        assert!(reply.starts_with("err corrupt"), "{reply}");
        assert!(!path.exists());
        assert!(dir.join(SESSIONS_DIR).join("s000000.json.corrupt").exists());
        // The damaged id no longer resolves; the evidence is preserved.
        assert!(err(&mut engine, &mut conn, "attach s000000").starts_with("err unknown-session"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_deadline_sheds_requests_without_mutating() {
        let (mut engine, dir) = temp_engine("deadline");
        let mut conn = ConnState::new();
        ok(&mut engine, &mut conn, "newsession mvt u:unroll:1:9");
        engine.config.deadline = Duration::ZERO;
        assert!(err(&mut engine, &mut conn, "observe 4 1.0").starts_with("err deadline"));
        assert!(err(&mut engine, &mut conn, "suggest").starts_with("err deadline"));
        engine.config.deadline = DEFAULT_DEADLINE;
        // The shed observe left no trace.
        assert!(err(&mut engine, &mut conn, "best").starts_with("err empty"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
