//! The `alic-serve` daemon binary.
//!
//! ```text
//! alic-serve [--dir PATH] [--model NAME] [--seed N] [--max-sessions N]
//!            [--deadline-ms N] [--checkpoint-every N] [--tcp ADDR]
//!            [--warm-store PATH] [--noise-regime LABEL]
//!            [--watchdog-grace FACTOR]
//! ```
//!
//! Without `--tcp` the daemon speaks the protocol on stdin/stdout. The
//! model default honors `ALIC_MODEL`; arming `ALIC_CHAOS` injects faults
//! across the storage and connection sites (see the README's Robustness
//! and Serving sections).

use std::time::Duration;

use alic_model::spec::SurrogateSpec;
use alic_serve::daemon::{serve_stdio, serve_tcp};
use alic_serve::engine::{Engine, ServeConfig};

const USAGE: &str = "usage: alic-serve [--dir PATH] [--model NAME] [--seed N] \
[--max-sessions N] [--deadline-ms N] [--checkpoint-every N] [--tcp ADDR] \
[--warm-store PATH] [--noise-regime LABEL] [--watchdog-grace FACTOR]";

fn fail(msg: &str) -> ! {
    eprintln!("alic-serve: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut config = ServeConfig::new("alic-serve-data");
    if let Ok(name) = std::env::var("ALIC_MODEL") {
        match SurrogateSpec::from_name(&name) {
            Some(spec) => config.default_model = spec,
            None => fail(&format!("ALIC_MODEL names unknown model {name:?}")),
        }
    }
    let mut tcp: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs {what}")))
        };
        match flag.as_str() {
            "--dir" => config.dir = value("a path").into(),
            "--model" => {
                let name = value("a model name");
                config.default_model = SurrogateSpec::from_name(&name)
                    .unwrap_or_else(|| fail(&format!("unknown model {name:?}")));
            }
            "--seed" => {
                config.seed = value("a u64")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed needs a u64"));
            }
            "--max-sessions" => {
                config.max_live = value("a count")
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail("--max-sessions needs a count >= 1"));
            }
            "--deadline-ms" => {
                let ms: u64 = value("milliseconds")
                    .parse()
                    .unwrap_or_else(|_| fail("--deadline-ms needs a u64"));
                config.deadline = Duration::from_millis(ms);
            }
            "--checkpoint-every" => {
                config.checkpoint_every = value("a count")
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail("--checkpoint-every needs a count >= 1"));
            }
            "--tcp" => tcp = Some(value("an address like 127.0.0.1:4317")),
            "--warm-store" => config.warm_store = Some(value("a path").into()),
            "--noise-regime" => config.noise_regime = value("a label"),
            "--watchdog-grace" => {
                config.watchdog_grace = value("a factor")
                    .parse::<f64>()
                    .ok()
                    .filter(|g| g.is_finite() && *g >= 0.0)
                    .unwrap_or_else(|| {
                        fail("--watchdog-grace needs a finite factor >= 0 (0 disables)")
                    });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    let engine = Engine::open(config).unwrap_or_else(|e| fail(&e));
    match tcp {
        Some(addr) => {
            if let Err(e) = serve_tcp(engine, &addr) {
                eprintln!("alic-serve: transport error: {e}");
                std::process::exit(1);
            }
        }
        None => match serve_stdio(engine) {
            Err(e) => {
                eprintln!("alic-serve: transport error: {e}");
                std::process::exit(1);
            }
            // Sessions whose final flush failed are still volatile; say so
            // in the exit code (paths are already on stderr).
            Ok(failures) if failures > 0 => std::process::exit(1),
            Ok(_) => {}
        },
    }
}
