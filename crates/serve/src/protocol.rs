//! The line-based text protocol: request grammar and structured replies.
//!
//! One request per line, one reply per line. Every reply starts with either
//! `ok` or `err <code>`, so a client can always dispatch on the first two
//! tokens; error payloads are free text with control characters stripped
//! (a reply can never span lines, whatever the input contained).
//!
//! ```text
//! newsession <kernel> <space> [<model>]   -> ok session <id> dim <d>
//! attach <id>                             -> ok attached <id> obs <n>
//! suggest [k]                             -> ok suggest <cfg> [<cfg> ...]
//! observe <cfg> <cost>                    -> ok observed <n>
//! best                                    -> ok best <cfg> <cost>
//! checkpoint                              -> ok checkpoint <relative-path>
//! sessions                                -> ok sessions [<id> ...]
//! health                                  -> ok health state=<s> live=<n> ...
//! drain                                   -> ok drained ok <n> failed <m> [<id>=<outcome> ...]
//! quit                                    -> ok bye          (closes the connection)
//! shutdown                                -> ok shutdown     (stops the daemon)
//! ```
//!
//! A `<cfg>` is the comma-joined parameter values, e.g. `3,0,7`. A
//! `<space>` is either the literal `spapt` (use the named SPAPT kernel's
//! own space) or comma-joined parameter specs
//! `<name>:<kind>[:<min>:<max>]` with `kind` one of `unroll`, `cache-tile`,
//! `register-tile` (ranges default to the paper's standard ranges).
//!
//! Parsing never panics, whatever bytes arrive — the protocol fuzz proptest
//! (`tests/serve_protocol.rs`) pins that.

use alic_sim::space::{Configuration, ParamKind, ParamSpec, ParameterSpace};
use alic_sim::spapt::{spapt_kernel, SpaptKernel};

/// Protocol identifier announced by the daemon when a connection opens.
pub const PROTOCOL_VERSION: &str = "alic-serve/1";

/// Longest request line the daemon accepts, in bytes.
pub const MAX_LINE_BYTES: usize = 8192;

/// Largest `suggest` batch a single request may ask for.
pub const MAX_SUGGEST: usize = 64;

/// Most tunable parameters a client-specified space may declare.
pub const MAX_SPACE_DIMENSION: usize = 32;

/// Error codes of the `err <code> <msg>` reply form.
pub mod code {
    /// The line is not a well-formed request.
    pub const PARSE: &str = "parse";
    /// The first token is not a known command.
    pub const UNKNOWN_CMD: &str = "unknown-cmd";
    /// A session command arrived with no session attached.
    pub const NO_SESSION: &str = "no-session";
    /// `attach` named a session that does not exist.
    pub const UNKNOWN_SESSION: &str = "unknown-session";
    /// The kernel name is not acceptable.
    pub const BAD_KERNEL: &str = "bad-kernel";
    /// The space spec did not parse or is out of bounds.
    pub const BAD_SPACE: &str = "bad-space";
    /// The model name is not a known surrogate family.
    pub const BAD_MODEL: &str = "bad-model";
    /// The configuration is malformed or invalid for the session's space.
    pub const BAD_CONFIG: &str = "bad-config";
    /// The observed cost is not a finite number.
    pub const BAD_COST: &str = "bad-cost";
    /// The daemon is shedding load; the message carries `retry-after-ms`.
    pub const BUSY: &str = "busy";
    /// The daemon is on the degradation ladder (checkpoint writes are
    /// failing): writes are shed with a `retry-after-ms` hint while reads
    /// are still served.
    pub const DEGRADED: &str = "degraded";
    /// The daemon is draining: state is flushed and no new work is admitted.
    pub const DRAINING: &str = "draining";
    /// The request exceeded its deadline.
    pub const DEADLINE: &str = "deadline";
    /// The watchdog flagged the request as stuck (it exceeded its deadline
    /// by the grace factor); the session was detached like the panic path.
    pub const STUCK: &str = "stuck";
    /// The request panicked; the session was detached (re-`attach` restores
    /// it from its last checkpoint).
    pub const PANIC: &str = "panic";
    /// A checkpoint or directory operation failed after bounded retries.
    pub const IO: &str = "io";
    /// A session checkpoint on disk is damaged (it was quarantined to
    /// `*.corrupt`).
    pub const CORRUPT: &str = "corrupt";
    /// `best` was asked of a session with no observations.
    pub const EMPTY: &str = "empty";
    /// The surrogate model rejected the operation; the observation was
    /// rolled back.
    pub const MODEL: &str = "model";
    /// An engine bookkeeping invariant failed mid-request. The request is
    /// abandoned (re-attach restores the session from its checkpoint); the
    /// process and the session's durable state are unaffected.
    pub const INTERNAL: &str = "internal";
}

/// A structured protocol error: the `err <code> <msg>` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrReply {
    /// One of the [`code`] constants.
    pub code: &'static str,
    /// Human-readable detail (sanitized to one line when rendered).
    pub msg: String,
}

impl ErrReply {
    /// Creates an error reply.
    pub fn new(code: &'static str, msg: impl Into<String>) -> Self {
        ErrReply {
            code,
            msg: msg.into(),
        }
    }

    /// Renders the single-line wire form `err <code> <msg>`.
    pub fn render(&self) -> String {
        format!("err {} {}", self.code, sanitize(&self.msg))
    }
}

/// Collapses a message onto one bounded line: control characters become
/// spaces and anything past 240 bytes is elided. Replies must never span
/// lines or echo unbounded attacker-controlled input.
pub fn sanitize(msg: &str) -> String {
    let mut out: String = msg
        .chars()
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect();
    if out.len() > 240 {
        let mut cut = 240;
        while !out.is_char_boundary(cut) {
            cut -= 1;
        }
        out.truncate(cut);
        out.push_str("...");
    }
    out
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `newsession <kernel> <space> [<model>]`
    NewSession {
        /// Kernel identifier the session tunes.
        kernel: String,
        /// The tunable parameter space.
        space: ParameterSpace,
        /// Optional surrogate family name (daemon default when `None`).
        model: Option<String>,
    },
    /// `attach <id>`
    Attach {
        /// Session identifier, e.g. `s000003`.
        id: String,
    },
    /// `suggest [k]`
    Suggest {
        /// Number of candidate configurations to propose.
        count: usize,
    },
    /// `observe <cfg> <cost>`
    Observe {
        /// The evaluated configuration.
        config: Configuration,
        /// Its measured cost (finite).
        cost: f64,
    },
    /// `best`
    Best,
    /// `checkpoint`
    Checkpoint,
    /// `sessions`
    Sessions,
    /// `health`
    Health,
    /// `drain`
    Drain,
    /// `quit`
    Quit,
    /// `shutdown`
    Shutdown,
}

/// Parses one non-empty request line.
///
/// # Errors
///
/// Returns the structured [`ErrReply`] the daemon should send; never
/// panics, whatever the input bytes were.
pub fn parse_request(line: &str) -> Result<Request, ErrReply> {
    let mut tokens = line.split_whitespace();
    let command = tokens.next().unwrap_or("");
    let rest: Vec<&str> = tokens.collect();
    let arity = |want: &str| {
        ErrReply::new(
            code::PARSE,
            format!("usage: {command} {want}").trim().to_string(),
        )
    };
    match command {
        "newsession" => {
            if rest.len() < 2 || rest.len() > 3 {
                return Err(arity("<kernel> <space> [<model>]"));
            }
            let kernel = parse_kernel_name(rest[0])?;
            let space = parse_space(rest[1], &kernel)?;
            Ok(Request::NewSession {
                kernel,
                space,
                model: rest.get(2).map(|s| s.to_string()),
            })
        }
        "attach" => {
            if rest.len() != 1 {
                return Err(arity("<session-id>"));
            }
            parse_session_id(rest[0]).map(|id| Request::Attach { id })
        }
        "suggest" => {
            if rest.len() > 1 {
                return Err(arity("[k]"));
            }
            let count = match rest.first() {
                None => 1,
                Some(tok) => tok.parse::<usize>().ok().filter(|k| (1..=MAX_SUGGEST).contains(k)).ok_or_else(|| {
                    ErrReply::new(
                        code::PARSE,
                        format!("suggest count must be an integer in 1..={MAX_SUGGEST}"),
                    )
                })?,
            };
            Ok(Request::Suggest { count })
        }
        "observe" => {
            if rest.len() != 2 {
                return Err(arity("<cfg> <cost>"));
            }
            let config = parse_config(rest[0])?;
            let cost: f64 = rest[1].parse().map_err(|_| {
                ErrReply::new(code::BAD_COST, format!("cost {:?} is not a number", sanitize(rest[1])))
            })?;
            if !cost.is_finite() {
                return Err(ErrReply::new(code::BAD_COST, "cost must be finite"));
            }
            Ok(Request::Observe { config, cost })
        }
        "best" => no_args(&rest, Request::Best, arity("")),
        "checkpoint" => no_args(&rest, Request::Checkpoint, arity("")),
        "sessions" => no_args(&rest, Request::Sessions, arity("")),
        "health" => no_args(&rest, Request::Health, arity("")),
        "drain" => no_args(&rest, Request::Drain, arity("")),
        "quit" => no_args(&rest, Request::Quit, arity("")),
        "shutdown" => no_args(&rest, Request::Shutdown, arity("")),
        other => Err(ErrReply::new(
            code::UNKNOWN_CMD,
            format!(
                "unknown command {:?} (try: newsession attach suggest observe best checkpoint sessions health drain quit shutdown)",
                sanitize(&other.chars().take(32).collect::<String>())
            ),
        )),
    }
}

fn no_args(rest: &[&str], request: Request, err: ErrReply) -> Result<Request, ErrReply> {
    if rest.is_empty() {
        Ok(request)
    } else {
        Err(err)
    }
}

fn parse_kernel_name(token: &str) -> Result<String, ErrReply> {
    let ok = !token.is_empty()
        && token.len() <= 64
        && token
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if ok {
        Ok(token.to_string())
    } else {
        Err(ErrReply::new(
            code::BAD_KERNEL,
            "kernel names are 1-64 chars of [A-Za-z0-9_-]",
        ))
    }
}

/// Parses and validates a session identifier (`s` + 6 digits).
pub fn parse_session_id(token: &str) -> Result<String, ErrReply> {
    let digits = token.strip_prefix('s').unwrap_or("");
    if digits.len() == 6 && digits.bytes().all(|b| b.is_ascii_digit()) {
        Ok(token.to_string())
    } else {
        Err(ErrReply::new(code::PARSE, "session ids look like s000042"))
    }
}

/// Parses a comma-joined configuration token like `3,0,7`.
pub fn parse_config(token: &str) -> Result<Configuration, ErrReply> {
    let bad = |detail: &str| {
        ErrReply::new(
            code::BAD_CONFIG,
            format!("configuration {:?}: {detail}", sanitize(token)),
        )
    };
    if token.len() > 512 {
        return Err(bad("too long"));
    }
    let values: Result<Vec<u32>, _> = token.split(',').map(|v| v.parse::<u32>()).collect();
    match values {
        Ok(values) if !values.is_empty() => Ok(Configuration::new(values)),
        _ => Err(bad("expected comma-joined unsigned integers like 3,0,7")),
    }
}

/// Renders a configuration in the wire form `3,0,7`.
pub fn format_config(config: &Configuration) -> String {
    let mut out = String::new();
    for (i, v) in config.values().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out
}

/// Renders a cost in the shortest representation that round-trips
/// bit-exactly (the same float form the ledger's canonical JSON uses), so
/// replies are byte-stable across runs and restarts.
pub fn format_cost(cost: f64) -> String {
    format!("{cost:?}")
}

fn parse_kind(token: &str) -> Option<ParamKind> {
    match token {
        "unroll" => Some(ParamKind::Unroll),
        "cache-tile" => Some(ParamKind::CacheTile),
        "register-tile" => Some(ParamKind::RegisterTile),
        _ => None,
    }
}

/// Parses a `<space>` token: `spapt` (the named kernel's own SPAPT space)
/// or comma-joined `<name>:<kind>[:<min>:<max>]` parameter specs.
///
/// # Errors
///
/// Returns a `bad-space` [`ErrReply`] describing the first offending entry.
pub fn parse_space(spec: &str, kernel: &str) -> Result<ParameterSpace, ErrReply> {
    let bad = |detail: String| ErrReply::new(code::BAD_SPACE, detail);
    if spec == "spapt" {
        let known = SpaptKernel::from_name(kernel).ok_or_else(|| {
            bad(format!(
                "kernel {:?} is not a SPAPT kernel; spell the space out as name:kind[:min:max],...",
                sanitize(kernel)
            ))
        })?;
        return Ok(spapt_kernel(known).space().clone());
    }
    let mut params = Vec::new();
    for entry in spec.split(',') {
        if params.len() >= MAX_SPACE_DIMENSION {
            return Err(bad(format!(
                "spaces may declare at most {MAX_SPACE_DIMENSION} parameters"
            )));
        }
        let parts: Vec<&str> = entry.split(':').collect();
        let context = || sanitize(&entry.chars().take(64).collect::<String>());
        if parts.len() != 2 && parts.len() != 4 {
            return Err(bad(format!(
                "parameter {:?}: expected name:kind or name:kind:min:max",
                context()
            )));
        }
        let name = parts[0];
        if name.is_empty()
            || name.len() > 64
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(bad(format!(
                "parameter {:?}: names are 1-64 chars of [A-Za-z0-9_-]",
                context()
            )));
        }
        let kind = parse_kind(parts[1]).ok_or_else(|| {
            bad(format!(
                "parameter {:?}: kind must be unroll, cache-tile, or register-tile",
                context()
            ))
        })?;
        let param = if parts.len() == 2 {
            match kind {
                ParamKind::Unroll => ParamSpec::unroll(name),
                ParamKind::CacheTile => ParamSpec::cache_tile(name),
                ParamKind::RegisterTile => ParamSpec::register_tile(name),
            }
        } else {
            let range = |tok: &str| {
                tok.parse::<u32>().map_err(|_| {
                    bad(format!(
                        "parameter {:?}: min/max must be unsigned integers",
                        context()
                    ))
                })
            };
            let (min, max) = (range(parts[2])?, range(parts[3])?);
            if min > max {
                return Err(bad(format!(
                    "parameter {:?}: empty range {min}..={max}",
                    context()
                )));
            }
            ParamSpec::new(name, kind, min, max)
        };
        params.push(param);
    }
    ParameterSpace::new(params).map_err(|_| bad("a space needs at least one parameter".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse_and_misuse_is_structured() {
        assert_eq!(parse_request("best"), Ok(Request::Best));
        assert_eq!(parse_request("health"), Ok(Request::Health));
        assert_eq!(parse_request("drain"), Ok(Request::Drain));
        assert!(parse_request("health now").is_err());
        assert!(parse_request("drain fast").is_err());
        assert_eq!(parse_request("suggest"), Ok(Request::Suggest { count: 1 }));
        assert_eq!(
            parse_request("suggest 5"),
            Ok(Request::Suggest { count: 5 })
        );
        assert!(matches!(
            parse_request("observe 3,4 1.25"),
            Ok(Request::Observe { cost, .. }) if cost == 1.25
        ));
        for (line, expect) in [
            ("suggest 0", code::PARSE),
            ("suggest 65", code::PARSE),
            ("suggest 1 2", code::PARSE),
            ("observe 3,4 NaN", code::BAD_COST),
            ("observe 3,4 inf", code::BAD_COST),
            ("observe 3;4 1.0", code::BAD_CONFIG),
            ("observe", code::PARSE),
            ("attach nope", code::PARSE),
            ("frobnicate", code::UNKNOWN_CMD),
            ("newsession mvt", code::PARSE),
            ("newsession m!t u:unroll", code::BAD_KERNEL),
            ("newsession mvt u:quantum", code::BAD_SPACE),
            ("newsession mvt u:unroll:9:2", code::BAD_SPACE),
            ("newsession notakernel spapt", code::BAD_SPACE),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, expect, "{line:?} -> {}", err.render());
        }
    }

    #[test]
    fn spaces_parse_with_defaults_and_explicit_ranges() {
        let space = parse_space("u1:unroll,t:cache-tile:0:4,r:register-tile", "anything").unwrap();
        assert_eq!(space.dimension(), 3);
        assert_eq!(space.params()[0].max, 30);
        assert_eq!(space.params()[1].max, 4);
        let spapt = parse_space("spapt", "mvt").unwrap();
        assert!(spapt.dimension() > 0);
    }

    #[test]
    fn configs_round_trip_through_wire_form() {
        let c = parse_config("3,0,7").unwrap();
        assert_eq!(c.values(), &[3, 0, 7]);
        assert_eq!(format_config(&c), "3,0,7");
        assert!(parse_config("").is_err());
        assert!(parse_config("1,,2").is_err());
        assert!(parse_config("-1").is_err());
    }

    #[test]
    fn errors_render_on_one_bounded_line() {
        let err = ErrReply::new(code::PARSE, "a\nb\rc\u{7}d".to_string());
        assert_eq!(err.render(), "err parse a b c d");
        let long = ErrReply::new(code::PARSE, "x".repeat(1000));
        let rendered = long.render();
        assert!(rendered.len() < 300);
        assert!(!rendered.contains('\n'));
    }
}
