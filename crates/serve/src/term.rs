//! SIGTERM-as-drain: the supervised-shutdown signal flag.
//!
//! A supervisor (systemd, Kubernetes, the CI drain-smoke job) stops a daemon
//! with SIGTERM and expects it to exit cleanly. For `alic-serve` "cleanly"
//! means *drained*: every session flushed to checkpoint and the outcome
//! reported, so acknowledged observations are never lost to a polite
//! shutdown (SIGKILL is the crash path the per-request checkpoints already
//! cover).
//!
//! The handler itself does the only thing that is async-signal-safe: it
//! stores to an atomic flag. The transport loops poll the flag between
//! requests and run the engine's drain when it trips. Registration goes
//! through a direct `signal(2)` FFI declaration — the workspace builds
//! without a libc binding crate — and compiles to a no-op flag on
//! non-Unix targets.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static TERM: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

/// Installs the SIGTERM handler (once per process) and returns the flag it
/// sets. Polling the flag is the caller's job; see the transport loops in
/// [`crate::daemon`].
pub fn install() -> &'static AtomicBool {
    INSTALL.call_once(|| {
        #[cfg(unix)]
        register();
    });
    &TERM
}

/// Whether SIGTERM has been received (always false before [`install`]).
pub fn triggered() -> bool {
    TERM.load(Ordering::Acquire)
}

#[cfg(unix)]
fn register() {
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_term(_signum: i32) {
        // The only async-signal-safe action: set the flag and return.
        TERM.store(true, Ordering::Release);
    }
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
    }
}
