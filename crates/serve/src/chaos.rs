//! Connection-level fault injection for the daemon's I/O loops.
//!
//! The PR 7 chaos plane covers the storage and compute layers; these
//! wrappers extend it to the wire, so the chaos suite can exercise the
//! daemon end to end:
//!
//! * [`FaultSite::ConnDrop`] — the connection drops mid-line: the request
//!   in flight is lost and the reader reports EOF (the daemon's
//!   end-of-connection path runs, flushing sessions).
//! * [`FaultSite::ShortRead`] — a read tears: only a prefix of the line
//!   arrives. The engine parses the fragment like any other bytes and
//!   replies with a structured `err`, never a panic.
//! * [`FaultSite::TornReply`] — a reply tears: a prefix is written and the
//!   connection then errors, so the client sees a lost/partial reply for a
//!   request that may have committed (the documented at-least-once
//!   window; clients reconcile via `attach`'s observation count).
//!
//! All three are armed through the same `ALIC_CHAOS` plan grammar
//! (`conndrop=`, `shortread=`, `tornreply=`) with per-site rates, budgets,
//! and [`injections`](alic_stats::fault::injections) counters.

use std::io::{BufRead, Write};

use alic_stats::fault::{inject, FaultSite};

/// A line reader with the connection-level chaos sites wired in.
#[derive(Debug)]
pub struct ChaosLines<R> {
    inner: R,
}

impl<R: BufRead> ChaosLines<R> {
    /// Wraps a buffered reader.
    pub fn new(inner: R) -> Self {
        ChaosLines { inner }
    }

    /// Reads the next line (without its terminator); `Ok(None)` is EOF —
    /// real, or injected by a [`FaultSite::ConnDrop`].
    ///
    /// # Errors
    ///
    /// Propagates underlying I/O errors. Invalid UTF-8 is replaced, not
    /// fatal: the engine answers garbage with a structured error.
    pub fn next_line(&mut self) -> std::io::Result<Option<String>> {
        let mut buf = Vec::new();
        let n = self.inner.read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(None);
        }
        if inject(FaultSite::ConnDrop) {
            // The peer vanished mid-request: the line never reaches the
            // engine and the connection is over.
            return Ok(None);
        }
        while buf.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
            buf.pop();
        }
        if inject(FaultSite::ShortRead) {
            buf.truncate(buf.len() / 2);
        }
        Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
    }
}

/// Writes one reply line, honoring the [`FaultSite::TornReply`] site.
///
/// # Errors
///
/// Returns `BrokenPipe` after writing only a prefix when the torn-reply
/// site fires, and propagates real write errors; either way the caller
/// must treat the connection as gone.
pub fn write_reply<W: Write>(out: &mut W, reply: &str) -> std::io::Result<()> {
    if inject(FaultSite::TornReply) {
        let mut cut = reply.len() / 2;
        while !reply.is_char_boundary(cut) {
            cut -= 1;
        }
        out.write_all(&reply.as_bytes()[..cut])?;
        out.flush()?;
        return Err(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "chaos: injected torn reply",
        ));
    }
    out.write_all(reply.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alic_stats::fault::{exclusive, injections, FaultPlan};

    #[test]
    fn chaos_sites_tear_reads_and_replies_deterministically() {
        let guard = exclusive(
            FaultPlan::new(11)
                .with_site(FaultSite::ShortRead, 1.0, Some(1))
                .with_site(FaultSite::TornReply, 1.0, Some(1))
                .with_site(FaultSite::ConnDrop, 1.0, Some(1)),
        );
        let mut reader = ChaosLines::new(&b"observe 3,4 1.25\nbest\nsuggest\n"[..]);
        // The first line is swallowed by the dropped connection (the drop
        // site is checked first: a vanished peer loses the whole line)...
        assert_eq!(reader.next_line().unwrap(), None);
        assert_eq!(injections(FaultSite::ConnDrop), 1);
        // ...the next read tears to a prefix...
        assert_eq!(reader.next_line().unwrap().unwrap(), "be");
        assert_eq!(injections(FaultSite::ShortRead), 1);
        // ...and a reply tears after a prefix.
        let mut out = Vec::new();
        let err = write_reply(&mut out, "ok observed 3").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert_eq!(out, b"ok obs");
        assert_eq!(injections(FaultSite::TornReply), 1);
        // Budgets spent: the plane is quiet again.
        let mut reader = ChaosLines::new(&b"best\n"[..]);
        assert_eq!(reader.next_line().unwrap().unwrap(), "best");
        let mut out = Vec::new();
        write_reply(&mut out, "ok bye").unwrap();
        assert_eq!(out, b"ok bye\n");
        drop(guard);
    }

    #[test]
    fn invalid_utf8_is_replaced_not_fatal() {
        let mut reader = ChaosLines::new(&[0x66u8, 0xff, 0x6f, b'\n'][..]);
        let line = reader.next_line().unwrap().unwrap();
        assert!(line.starts_with('f'));
    }
}
