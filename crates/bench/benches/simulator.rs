//! Benchmarks of the iterative-compilation simulator: single measurements,
//! ground-truth surface evaluation and dataset generation (the §4.5
//! profiling protocol).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use alic_bench::{bench_kernel, bench_profiler};
use alic_data::dataset::{Dataset, DatasetConfig};
use alic_sim::profiler::{Profiler, SimulatedProfiler};
use alic_sim::spapt::{spapt_kernel, SpaptKernel};
use alic_sim::surface::ResponseSurface;

fn bench_measure(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiler_measure");
    for kernel in [SpaptKernel::Mvt, SpaptKernel::Gemver, SpaptKernel::Dgemv3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            &kernel,
            |b, &kernel| {
                let mut profiler = SimulatedProfiler::new(spapt_kernel(kernel), 1);
                let config = profiler.space().default_configuration();
                b.iter(|| profiler.measure(black_box(&config)));
            },
        );
    }
    group.finish();
}

fn bench_surface(c: &mut Criterion) {
    let spec = bench_kernel();
    let surface = ResponseSurface::new(spec.space(), spec.base_runtime(), 7, &[]);
    let config = spec.space().default_configuration();
    c.bench_function("surface_true_mean", |b| {
        b.iter(|| surface.true_mean(black_box(&config)))
    });
}

fn bench_dataset_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generate");
    group.sample_size(10);
    for &configs in &[100usize, 500] {
        group.bench_with_input(
            BenchmarkId::from_parameter(configs),
            &configs,
            |b, &configs| {
                b.iter(|| {
                    let mut profiler = bench_profiler(3);
                    Dataset::generate(
                        &mut profiler,
                        &DatasetConfig {
                            configurations: configs,
                            observations: 5,
                            seed: 1,
                        },
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_measure,
    bench_surface,
    bench_dataset_generation
);
criterion_main!(benches);
