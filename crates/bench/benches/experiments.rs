//! One benchmark per table and figure of the paper, measuring the cost of
//! regenerating each artefact at a reduced ("quick") scale:
//!
//! * `fig1_mm_plane`      — Figure 1 sample-size study,
//! * `fig2_adi_sweep`     — Figure 2 unroll sweep,
//! * `table1_comparison`  — one Table 1 row (plan comparison on one kernel),
//! * `table2_kernel_row`  — one Table 2 row (variance / CI spreads),
//! * `fig5_reduction`     — Figure 5 bar values derived from a comparison,
//! * `fig6_curves`        — Figure 6 learning-curve extraction,
//! * `ablation_acquisition` — the acquisition-function ablation,
//! * `campaign_runner`      — unit decomposition + execution + merge through
//!   the campaign runner.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use alic_core::experiment::compare_plans;
use alic_experiments::{ablation, fig1, fig2, fig5, fig6, table1, table2, Scale};
use alic_sim::spapt::{spapt_kernel, SpaptKernel};

fn small_comparison_config() -> alic_core::experiment::ComparisonConfig {
    let mut config = Scale::Quick.comparison_config();
    config.repetitions = 1;
    config.learner.max_iterations = 30;
    config
}

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_mm_plane");
    group.sample_size(10);
    group.bench_function("grid8_obs10", |b| {
        b.iter(|| fig1::run_with(black_box(8), black_box(10), fig1::MAE_THRESHOLD_SECONDS, 1))
    });
    group.finish();
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_adi_sweep", |b| b.iter(|| fig2::run(black_box(1))));
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_comparison");
    group.sample_size(10);
    let config = small_comparison_config();
    group.bench_function("mvt_quick", |b| {
        b.iter(|| compare_plans(&spapt_kernel(SpaptKernel::Mvt), black_box(&config)).unwrap())
    });
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_kernel_row");
    group.sample_size(10);
    group.bench_function("mm_40cfg_10obs", |b| {
        b.iter(|| table2::run_kernel(SpaptKernel::Mm, black_box(40), black_box(10), 1))
    });
    group.finish();
}

fn bench_fig5_and_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_fig6_derivation");
    group.sample_size(10);
    let config = small_comparison_config();
    let outcome = compare_plans(&spapt_kernel(SpaptKernel::Hessian), &config).unwrap();
    let outcomes = vec![outcome];
    let table = table1::rows_from_outcomes(&outcomes, &config);
    group.bench_function("fig5_reduction", |b| {
        b.iter(|| fig5::Fig5Result::from_table1(black_box(&table)))
    });
    group.bench_function("fig6_curves", |b| {
        b.iter(|| fig6::curves_from_outcomes(black_box(&outcomes)))
    });
    group.finish();
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_acquisition");
    group.sample_size(10);
    group.bench_function("mvt_quick", |b| {
        b.iter(|| ablation::acquisition_ablation(black_box(SpaptKernel::Mvt), Scale::Quick))
    });
    group.finish();
}

fn bench_campaign_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_runner");
    group.sample_size(10);
    let spec = alic_bench::bench_campaign(10, 20, 20, 150);
    group.bench_function("six_units_run_and_merge", |b| {
        b.iter(|| alic_core::runner::run_campaign(black_box(&spec)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_fig2,
    bench_table1,
    bench_table2,
    bench_fig5_and_fig6,
    bench_ablation,
    bench_campaign_runner
);
criterion_main!(benches);
