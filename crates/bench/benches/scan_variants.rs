//! Side-by-side race of the dynamic tree's split-scan kernels (PR 6).
//!
//! The three kernels in `alic_model::dynatree::scan` are bit-identical by
//! construction (see `tests/scan_identity.rs`), so the production default
//! (`DEFAULT_SCAN_KIND`) is purely a speed choice — this bench is the
//! committed evidence behind it, and CI runs it once in smoke mode (the
//! criterion shim's `--test` pass) so the `cfg`-gated SIMD path cannot
//! bit-rot on platforms where it compiles.
//!
//! Leaf sizes cover the regimes the particle filter actually visits: small
//! fresh leaves (32), the steady-state mid-size leaves that dominate fit
//! time (128/512), and the large root-era leaves of early updates (2048).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use alic_model::dynatree::scan::{scan_left, LeafColumns, ScanKind, ATTEMPT_BATCH};

const N_DIMS: usize = 2;

/// A deterministic leaf: `len` points with pseudo-random features in
/// roughly [0, 1) and targets in roughly [-1, 2).
fn leaf(len: usize) -> LeafColumns {
    let rows: Vec<Vec<f64>> = (0..len)
        .map(|i| {
            (0..N_DIMS)
                .map(|d| ((i * 2654435761 + d * 40503 + 17) % 1000) as f64 / 1000.0)
                .collect()
        })
        .collect();
    let ys: Vec<f64> = (0..len)
        .map(|i| ((i * 1103515245 + 12345) % 3000) as f64 / 1000.0 - 1.0)
        .collect();
    let mut columns = LeafColumns::default();
    columns.fill(
        N_DIMS,
        len,
        rows.iter().map(|r| r.as_slice()).zip(ys.iter().copied()),
    );
    columns
}

fn bench_scan_kinds(c: &mut Criterion) {
    // Four live attempts, matching the default `grow_attempts`.
    let dims = [0usize, 1, 0, 1, 0, 1, 0, 1];
    let mut thresholds = [0.0f64; ATTEMPT_BATCH];
    for (k, t) in thresholds.iter_mut().enumerate() {
        *t = 0.15 + 0.1 * k as f64;
    }
    let live = 4;
    for (kind, label) in [
        (ScanKind::Scalar, "scalar"),
        (ScanKind::Bitset, "bitset"),
        (ScanKind::Simd, "simd"),
    ] {
        let mut group = c.benchmark_group(format!("scan_left_{label}"));
        for &len in &[32usize, 128, 512, 2048] {
            let columns = leaf(len);
            group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
                b.iter(|| {
                    scan_left(
                        kind,
                        black_box(&columns),
                        black_box(&dims),
                        black_box(&thresholds),
                        live,
                    )
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_scan_kinds);
criterion_main!(benches);
