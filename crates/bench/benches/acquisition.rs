//! Benchmarks of the acquisition criteria: MacKay's ALM (`O(|C|)`) versus
//! Cohn's ALC (`O(|C|·|R|)`-ish), the trade-off the paper discusses in §3.3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use alic_bench::fitted_dynatree;
use alic_model::ActiveSurrogate;

fn candidate_grid(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![(i % 23) as f64 / 22.0, (i % 7) as f64 / 6.0])
        .collect()
}

fn bench_alm_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("alm_scores");
    let model = fitted_dynatree(300, 200);
    for &n_candidates in &[100usize, 500] {
        let candidates = candidate_grid(n_candidates);
        let views: Vec<&[f64]> = candidates.iter().map(Vec::as_slice).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(n_candidates),
            &views,
            |b, views| b.iter(|| model.alm_scores(black_box(views)).unwrap()),
        );
    }
    group.finish();
}

fn bench_alc_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("alc_scores");
    let model = fitted_dynatree(300, 200);
    let reference = candidate_grid(50);
    let reference: Vec<&[f64]> = reference.iter().map(Vec::as_slice).collect();
    for &n_candidates in &[100usize, 500] {
        let candidates = candidate_grid(n_candidates);
        let views: Vec<&[f64]> = candidates.iter().map(Vec::as_slice).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(n_candidates),
            &views,
            |b, views| {
                b.iter(|| {
                    model
                        .alc_scores(black_box(views), black_box(&reference))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_alm_scoring, bench_alc_scoring);
criterion_main!(benches);
