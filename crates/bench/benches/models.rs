//! Micro-benchmarks of the surrogate models: incremental updates, prediction
//! and full fits for the dynamic tree, the Gaussian process and the static
//! CART tree. These quantify the `O(n³)` GP refit versus the incremental
//! dynamic-tree update that motivates the paper's model choice (§3.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use alic_bench::{fitted_dynatree, synthetic_training_data};
use alic_model::cart::RegressionTree;
use alic_model::dynatree::{DynaTree, DynaTreeConfig};
use alic_model::gp::GaussianProcess;
use alic_model::{row_views, SurrogateModel};

fn bench_dynatree_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynatree_update");
    for &n in &[50usize, 200, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let model = fitted_dynatree(n, 100);
            b.iter_batched(
                || model.clone(),
                |mut m| m.update(black_box(&[0.31, 0.42]), black_box(0.9)).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_dynatree_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynatree_predict");
    for &particles in &[50usize, 200, 1000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(particles),
            &particles,
            |b, &particles| {
                let model = fitted_dynatree(300, particles);
                b.iter(|| model.predict(black_box(&[0.5, 0.5])).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_gp_refit(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_refit");
    group.sample_size(10);
    for &n in &[50usize, 150, 300] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (xs, ys) = synthetic_training_data(n);
            let views = row_views(&xs);
            b.iter(|| {
                let mut gp = GaussianProcess::with_defaults();
                gp.fit(black_box(&views), black_box(&ys)).unwrap();
                gp.predict(black_box(&[0.5, 0.5])).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_gp_update(c: &mut Criterion) {
    // The rank-1 incremental path: O(n²) per update instead of an O(n³)
    // refit per observation.
    let mut group = c.benchmark_group("gp_update");
    for &n in &[50usize, 150, 300] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (xs, ys) = synthetic_training_data(n);
            let mut gp = GaussianProcess::with_defaults();
            gp.fit(&row_views(&xs), &ys).unwrap();
            b.iter_batched(
                || gp.clone(),
                |mut m| m.update(black_box(&[0.31, 0.42]), black_box(0.9)).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_cart_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("cart_fit");
    for &n in &[100usize, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (xs, ys) = synthetic_training_data(n);
            let views = row_views(&xs);
            b.iter(|| {
                let mut tree = RegressionTree::with_defaults();
                tree.fit(black_box(&views), black_box(&ys)).unwrap();
                tree.predict(black_box(&[0.5, 0.5])).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_dynatree_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynatree_fit");
    group.sample_size(10);
    for &n in &[50usize, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (xs, ys) = synthetic_training_data(n);
            let views = row_views(&xs);
            b.iter(|| {
                let mut model = DynaTree::new(DynaTreeConfig {
                    particles: 100,
                    seed: 1,
                    ..Default::default()
                });
                model.fit(black_box(&views), black_box(&ys)).unwrap();
                model
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dynatree_update,
    bench_dynatree_predict,
    bench_dynatree_fit,
    bench_gp_refit,
    bench_gp_update,
    bench_cart_fit
);
criterion_main!(benches);
