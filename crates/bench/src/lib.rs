//! Shared fixtures for the Criterion benchmark suite and the `perf_report`
//! binary.
//!
//! The benches in `benches/` measure the computational cost of the library
//! itself (model updates, acquisition scoring, simulator throughput) and of
//! regenerating each of the paper's tables and figures at a reduced scale.
//!
//! # The `perf_report` binary and its schema
//!
//! `cargo run --release --bin perf_report` times the canonical hot-path
//! workloads (ALC batch scoring at the paper's 500-candidate × 50-reference
//! iteration shape, dynamic-tree fit and incremental update plus the same
//! fit pinned to one worker thread and to the machine's full thread count —
//! the `_t1`/`_tmax` thread-scaling pair for the parallel particle
//! updates — a full small learner run, the Gaussian-process fit /
//! incremental-update / acquisition workloads and the campaign-runner
//! orchestration path) and writes a JSON report — `BENCH_PR<n>.json` at
//! the repo root records the trajectory across PRs. `--scale smoke` runs
//! tiny variants so CI can assert the harness works; `--out PATH` redirects
//! the report. Workloads faster than the minimum measurement window
//! (10 ms) are repeated in an inner loop and reported as the per-iteration
//! mean of the best window, so short timings are stable.
//!
//! Regression gating and report composition:
//!
//! * `--baseline PATH` loads a prior report and prints the per-workload
//!   ratio `seconds / baseline_seconds` for every workload name present in
//!   both reports; with `--max-regression X` the binary exits non-zero when
//!   any ratio exceeds `X` (the CI perf-smoke job gates smoke runs against
//!   the committed `BENCH_PR4.json` this way). Since PR 5 every matched
//!   workload is enforced: the minimum-measurement-window repetition makes
//!   even sub-millisecond timings stable enough to gate.
//! * `--merge PATH` folds the workloads of an existing report into the one
//!   being written (fresh measurements win on name collisions and the
//!   top-level `scale` becomes `"mixed"`) — this is how a committed report
//!   carries both its canonical full-scale entries and the smoke-scale
//!   entries CI compares against.
//!
//! Report schema (`alic-perf-report/v1`):
//!
//! ```json
//! {
//!   "schema": "alic-perf-report/v1",
//!   "pr": 3,                     // PR the report belongs to
//!   "scale": "full",             // "full", "smoke" or "mixed" (merged)
//!   "threads": 1,                // worker threads during the run
//!   "workloads": [
//!     {
//!       "name": "gp_update_200x300",
//!       "description": "...",
//!       "seconds": 0.032990,          // best-of-N wall-clock seconds
//!       "baseline_seconds": 2.013142, // prior-PR measurement, null if none
//!       "speedup": 61.02              // baseline / seconds, null if none
//!     }
//!   ]
//! }
//! ```
//!
//! Timings are best-of-N to suppress scheduler noise; `baseline_seconds` is
//! measured on the same machine from a checkout of the previous PR and is
//! only meaningful at `full` scale.

use alic_core::experiment::ComparisonConfig;
use alic_core::learner::LearnerConfig;
use alic_core::plan::SamplingPlan;
use alic_core::runner::CampaignSpec;
use alic_data::dataset::{Dataset, DatasetConfig};
use alic_data::split::TrainTestSplit;
use alic_model::dynatree::{DynaTree, DynaTreeConfig};
use alic_model::{row_views, SurrogateModel, SurrogateSpec};
use alic_sim::noise::NoiseProfile;
use alic_sim::profiler::SimulatedProfiler;
use alic_sim::space::ParamSpec;
use alic_sim::KernelSpec;

/// A small synthetic kernel used by the micro-benchmarks (three unroll
/// parameters, moderate noise).
pub fn bench_kernel() -> KernelSpec {
    bench_kernel_named("bench", 77)
}

/// A [`bench_kernel`]-shaped synthetic kernel with an explicit name and
/// response-surface seed, for fixtures that need several distinct kernels
/// (most importantly the campaign-runner workloads).
pub fn bench_kernel_named(name: &str, surface_seed: u64) -> KernelSpec {
    KernelSpec::new(
        name,
        vec![
            ParamSpec::unroll("u1"),
            ParamSpec::unroll("u2"),
            ParamSpec::unroll("u3"),
        ],
        1.0,
        0.5,
        NoiseProfile::moderate(),
    )
    .expect("non-empty parameter list")
    .with_surface_seed(surface_seed)
}

/// A fully structured campaign over two [`bench_kernel_named`] kernels, one
/// dynamic-tree model and the paper's three sampling plans — the fixture the
/// campaign-runner benchmarks and the `perf_report` `campaign_run_*`
/// workload execute through
/// [`run_campaign`](alic_core::runner::run_campaign).
pub fn bench_campaign(
    iterations: usize,
    candidates: usize,
    particles: usize,
    pool: usize,
) -> CampaignSpec {
    let base = ComparisonConfig {
        learner: LearnerConfig {
            initial_examples: 4,
            initial_observations: 6,
            candidates_per_iteration: candidates,
            max_iterations: iterations,
            evaluate_every: (iterations / 4).max(1),
            ..Default::default()
        },
        plans: vec![
            SamplingPlan::fixed(6),
            SamplingPlan::one_observation(),
            SamplingPlan::sequential(6),
        ],
        repetitions: 1,
        model: SurrogateSpec::dynatree(particles),
        dataset: DatasetConfig {
            configurations: pool,
            observations: 5,
            seed: 2,
        },
        train_size: (pool * 3) / 4,
        grid_resolution: 50,
        seed: 9,
    };
    CampaignSpec::new(
        vec![
            bench_kernel_named("bench-a", 77),
            bench_kernel_named("bench-b", 78),
        ],
        vec![SurrogateSpec::dynatree(particles)],
        base,
    )
}

/// A profiler over [`bench_kernel`].
pub fn bench_profiler(seed: u64) -> SimulatedProfiler {
    SimulatedProfiler::new(bench_kernel(), seed)
}

/// A small profiled dataset plus train/test split over [`bench_kernel`].
pub fn bench_dataset(configurations: usize) -> (Dataset, TrainTestSplit) {
    let mut profiler = bench_profiler(1);
    let dataset = Dataset::generate(
        &mut profiler,
        &DatasetConfig {
            configurations,
            observations: 5,
            seed: 2,
        },
    );
    let train = (configurations * 3) / 4;
    let split = dataset.split(train, 3);
    (dataset, split)
}

/// Synthetic regression data `y = sin(4x0) + 0.5 x1` on the unit square.
pub fn synthetic_training_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let a = (i % 37) as f64 / 36.0;
        let b = (i % 11) as f64 / 10.0;
        xs.push(vec![a, b]);
        ys.push((4.0 * a).sin() + 0.5 * b);
    }
    (xs, ys)
}

/// A dynamic tree fitted on `n` synthetic points with `particles` particles.
pub fn fitted_dynatree(n: usize, particles: usize) -> DynaTree {
    let (xs, ys) = synthetic_training_data(n);
    let mut model = DynaTree::new(DynaTreeConfig {
        particles,
        seed: 9,
        ..Default::default()
    });
    model
        .fit(&row_views(&xs), &ys)
        .expect("synthetic data is well formed");
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_well_formed() {
        let (dataset, split) = bench_dataset(80);
        assert_eq!(dataset.len(), 80);
        assert_eq!(split.population(), 80);
        let model = fitted_dynatree(50, 20);
        assert_eq!(model.observation_count(), 50);
    }

    #[test]
    fn campaign_fixture_runs_through_the_runner() {
        let spec = bench_campaign(6, 15, 15, 120);
        // 2 kernels x 1 model x 3 plans x 1 repetition.
        assert_eq!(spec.unit_count(), 6);
        let report = alic_core::runner::run_campaign(&spec).unwrap();
        assert_eq!(report.entries.len(), 2);
        assert_eq!(report.kernels, vec!["bench-a", "bench-b"]);
    }
}
