//! Wall-clock performance report for the canonical hot-path workloads.
//!
//! Times the workloads that dominate an active-learning run — ALC batch
//! scoring, dynamic-tree fit and incremental update, and a full small
//! learner run — and writes a JSON report (schema documented in the
//! [`alic_bench`] crate docs). The canonical `full` scale carries the pre-PR2
//! baseline timings measured on the same workloads, so the report states the
//! speedup of the batched zero-copy pipeline directly.
//!
//! ```text
//! cargo run --release --bin perf_report              # full scale -> BENCH_PR2.json
//! cargo run --release --bin perf_report -- --scale smoke --out /tmp/smoke.json
//! ```
//!
//! `--scale smoke` (or `ALIC_PERF_SCALE=smoke`) runs tiny versions of every
//! workload in a few seconds; it exists so CI can assert the harness itself
//! keeps working. Smoke timings carry no baselines and are not comparable
//! across machines.

use std::fmt::Write as _;
use std::time::Instant;

use alic_bench::{bench_dataset, bench_profiler, synthetic_training_data};
use alic_core::acquisition::Acquisition;
use alic_core::learner::{ActiveLearner, LearnerConfig};
use alic_core::plan::SamplingPlan;
use alic_model::dynatree::{DynaTree, DynaTreeConfig};
use alic_model::{ActiveSurrogate, SurrogateModel};

/// Pre-PR2 baseline, measured with the same binary on the same machine
/// (single core, release build, best of N) immediately before the batched
/// pipeline landed. `None` marks workloads without a recorded baseline.
const FULL_BASELINES: [(&str, Option<f64>); 4] = [
    ("alc_scores_500x50_200p", Some(0.006650)),
    ("dynatree_fit_1000x200p", Some(1.416261)),
    ("dynatree_update_200x200p", Some(0.595156)),
    ("learner_run_60it_500c_200p", Some(0.281008)),
];

struct WorkloadResult {
    name: String,
    description: String,
    seconds: f64,
    baseline_seconds: Option<f64>,
}

struct ScaleParams {
    label: &'static str,
    /// Training points behind the ALC-scored model.
    alc_train: usize,
    particles: usize,
    candidates: usize,
    references: usize,
    fit_points: usize,
    updates: usize,
    learner_pool: usize,
    learner_iterations: usize,
    learner_candidates: usize,
    /// Best-of repetitions for the (cheap) scoring workload and the
    /// (expensive) fit/update/learner workloads respectively.
    reps_scoring: usize,
    reps_heavy: usize,
}

const FULL: ScaleParams = ScaleParams {
    label: "full",
    alc_train: 300,
    particles: 200,
    candidates: 500,
    references: 50,
    fit_points: 1000,
    updates: 200,
    learner_pool: 1000,
    learner_iterations: 60,
    learner_candidates: 500,
    reps_scoring: 10,
    reps_heavy: 3,
};

const SMOKE: ScaleParams = ScaleParams {
    label: "smoke",
    alc_train: 60,
    particles: 20,
    candidates: 50,
    references: 10,
    fit_points: 80,
    updates: 20,
    learner_pool: 150,
    learner_iterations: 8,
    learner_candidates: 30,
    reps_scoring: 2,
    reps_heavy: 1,
};

fn grid(n: usize, phase: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            vec![
                ((i + phase) % 23) as f64 / 22.0,
                ((i + phase) % 7) as f64 / 6.0,
            ]
        })
        .collect()
}

fn time_workload(mut f: impl FnMut(), repetitions: usize) -> f64 {
    // Warm-up once, then report the best of `repetitions` runs.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..repetitions {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn run_workloads(params: &ScaleParams) -> Vec<WorkloadResult> {
    let mut results = Vec::new();
    // Workload names encode the actual parameters, so a smoke report can
    // never be mistaken for a canonical one; baselines only attach to the
    // canonical full-scale names.
    let baseline = |name: &str| -> Option<f64> {
        if params.label != "full" {
            return None;
        }
        FULL_BASELINES
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, b)| *b)
    };

    // 1. ALC batch scoring (the acquisition step of one iteration).
    {
        let (xs, ys) = synthetic_training_data(params.alc_train);
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: params.particles,
            seed: 9,
            ..Default::default()
        });
        model.fit(&xs, &ys).unwrap();
        let candidates = grid(params.candidates, 0);
        let candidates: Vec<&[f64]> = candidates.iter().map(Vec::as_slice).collect();
        let reference = grid(params.references, 3);
        let reference: Vec<&[f64]> = reference.iter().map(Vec::as_slice).collect();
        let seconds = time_workload(
            || {
                std::hint::black_box(model.alc_scores(&candidates, &reference).unwrap());
            },
            params.reps_scoring,
        );
        let name = format!(
            "alc_scores_{}x{}_{}p",
            params.candidates, params.references, params.particles
        );
        results.push(WorkloadResult {
            description: format!(
                "ALC-score {} candidates against {} references, {} particles",
                params.candidates, params.references, params.particles
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
    }

    // 2. DynaTree fit at paper-ish scale.
    {
        let (xs, ys) = synthetic_training_data(params.fit_points);
        let seconds = time_workload(
            || {
                let mut model = DynaTree::new(DynaTreeConfig {
                    particles: params.particles,
                    seed: 9,
                    ..Default::default()
                });
                model.fit(&xs, &ys).unwrap();
                std::hint::black_box(&model);
            },
            params.reps_heavy,
        );
        let name = format!("dynatree_fit_{}x{}p", params.fit_points, params.particles);
        results.push(WorkloadResult {
            description: format!(
                "DynaTree fit on {} points with {} particles",
                params.fit_points, params.particles
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
    }

    // 3. DynaTree incremental updates (the per-iteration model step).
    {
        let (xs, ys) = synthetic_training_data(params.fit_points);
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: params.particles,
            seed: 9,
            ..Default::default()
        });
        model.fit(&xs, &ys).unwrap();
        let updates = params.updates;
        let seconds = time_workload(
            || {
                let mut m = model.clone();
                for i in 0..updates {
                    let x = vec![(i % 19) as f64 / 18.0, (i % 5) as f64 / 4.0];
                    m.update(&x, 1.0 + (i % 3) as f64).unwrap();
                }
                std::hint::black_box(&m);
            },
            params.reps_heavy,
        );
        let name = format!("dynatree_update_{}x{}p", params.updates, params.particles);
        results.push(WorkloadResult {
            description: format!(
                "{} incremental DynaTree updates on a {}-point model",
                params.updates, params.fit_points
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
    }

    // 4. Full small learner run (Algorithm 1 end to end).
    {
        let (dataset, split) = bench_dataset(params.learner_pool);
        let seconds = time_workload(
            || {
                let mut profiler = bench_profiler(11);
                let config = LearnerConfig {
                    initial_examples: 5,
                    initial_observations: 10,
                    candidates_per_iteration: params.learner_candidates,
                    max_iterations: params.learner_iterations,
                    evaluate_every: 15,
                    acquisition: Acquisition::Alc { reference_size: 50 },
                    plan: SamplingPlan::sequential(10),
                    ..Default::default()
                };
                let mut learner = ActiveLearner::new(config, &mut profiler);
                let mut model = DynaTree::new(DynaTreeConfig {
                    particles: params.particles,
                    seed: 5,
                    ..Default::default()
                });
                std::hint::black_box(learner.run(&mut model, &dataset, &split).unwrap());
            },
            params.reps_heavy,
        );
        let name = format!(
            "learner_run_{}it_{}c_{}p",
            params.learner_iterations, params.learner_candidates, params.particles
        );
        results.push(WorkloadResult {
            description: format!(
                "full learner run: {} iterations, {} candidates, {} particles",
                params.learner_iterations, params.learner_candidates, params.particles
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
    }

    results
}

fn render_json(params: &ScaleParams, results: &[WorkloadResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"alic-perf-report/v1\",");
    let _ = writeln!(out, "  \"pr\": 2,");
    let _ = writeln!(out, "  \"scale\": \"{}\",", params.label);
    let _ = writeln!(out, "  \"threads\": {},", rayon::current_num_threads());
    out.push_str("  \"workloads\": [\n");
    for (i, w) in results.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(out, "      \"description\": \"{}\",", w.description);
        let _ = writeln!(out, "      \"seconds\": {:.6},", w.seconds);
        match w.baseline_seconds {
            Some(b) => {
                let _ = writeln!(out, "      \"baseline_seconds\": {b:.6},");
                let _ = writeln!(out, "      \"speedup\": {:.2}", b / w.seconds);
            }
            None => {
                let _ = writeln!(out, "      \"baseline_seconds\": null,");
                let _ = writeln!(out, "      \"speedup\": null");
            }
        }
        out.push_str("    }");
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut scale = std::env::var("ALIC_PERF_SCALE").unwrap_or_else(|_| "full".to_string());
    let mut out_path = "BENCH_PR2.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().expect("--scale needs a value"),
            "--out" => out_path = args.next().expect("--out needs a value"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perf_report [--scale full|smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let params = match scale.as_str() {
        "full" => &FULL,
        "smoke" | "quick" => &SMOKE,
        other => {
            eprintln!("unknown scale: {other} (expected full or smoke)");
            std::process::exit(2);
        }
    };

    let results = run_workloads(params);
    for w in &results {
        match w.baseline_seconds {
            Some(b) => println!(
                "{}: {:.6} s (baseline {:.6} s, speedup {:.2}x)",
                w.name,
                w.seconds,
                b,
                b / w.seconds
            ),
            None => println!("{}: {:.6} s", w.name, w.seconds),
        }
    }
    let json = render_json(params, &results);
    std::fs::write(&out_path, json).expect("report file is writable");
    println!("wrote {out_path}");
}
