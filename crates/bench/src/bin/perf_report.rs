//! Wall-clock performance report for the canonical hot-path workloads.
//!
//! Times the workloads that dominate an active-learning run — ALC batch
//! scoring, dynamic-tree fit and incremental update (plus, since PR 5, the
//! dynamic-tree fit at 1 worker thread and at the machine's full thread
//! count, so the report tracks thread scaling of the parallel particle
//! updates), a full small learner run, the Gaussian-process fit /
//! incremental-update / acquisition workloads (since PR 3), the
//! campaign-runner orchestration path (`campaign_run_*`, since PR 4), and
//! the sparse-GP workloads (`sgp_*`, since PR 6): a 100k-point low-rank
//! fit and ALC pass at a scale where the dense GP's O(n³)/O(n²) costs are
//! simply infeasible, an update loop whose O(m²) cost is independent of
//! the 100k training set behind it, and a dense-vs-sparse crossover fit at
//! the dense GP's own `gp_fit` scale, and the serving-layer round-trip
//! workloads (`serve_*`, since PR 8): the full request→reply latency of
//! `suggest` and `observe` through the daemon engine's dispatch — parse,
//! session table, surrogate work, and for `observe` the durable
//! read-back-verified checkpoint the replied-⇒-durable contract pays for
//! per request, and the warm-start workloads (`warmstart_*` /
//! `serve_suggest_warm_*`, since PR 9): the sample-efficiency pair counts
//! observations to a target held-out RMSE for a cold surrogate vs one
//! restored from the warm store's donor snapshot, and the warm suggest
//! workload times the read path of a session whose very first request is
//! ranked by a restored donor surrogate. The report is JSON (schema documented
//! in the [`alic_bench`] crate docs); the canonical `full` scale carries
//! the PR 5 baseline timings measured on the same machine, so the report
//! states the speedup of the bitset/block scan kernels directly.
//!
//! ```text
//! cargo run --release --bin perf_report                     # full scale -> BENCH_PR9.json
//! cargo run --release --bin perf_report -- --scale smoke --out /tmp/smoke.json
//! cargo run --release --bin perf_report -- --scale smoke \
//!     --baseline BENCH_PR9.json --max-regression 2.0       # CI regression gate
//! ```
//!
//! `--scale smoke` (or `ALIC_PERF_SCALE=smoke`) runs tiny versions of every
//! workload in a few seconds; it exists so CI can assert the harness itself
//! keeps working. Smoke timings carry no baselines and are not comparable
//! across machines.
//!
//! Sub-millisecond workloads are automatically repeated in an inner loop
//! until one measurement covers at least [`MIN_MEASURE_WINDOW_SECONDS`],
//! and the reported `seconds` is the per-iteration mean of the best such
//! window — so even the smoke-scale numbers are trustworthy enough for the
//! regression gate, which (since PR 5) enforces `--max-regression` on
//! every matched workload instead of exempting sub-millisecond baselines.
//!
//! `--baseline PATH` loads a previously committed report and prints, for
//! every workload whose name appears in both, the regression ratio
//! `seconds / baseline_seconds`. With `--max-regression X` the binary exits
//! non-zero when any ratio exceeds `X` — the CI perf-smoke job runs this
//! against the committed `BENCH_PR5.json` so gross performance regressions
//! fail the build. A baseline workload whose entire *family* (the name stem
//! before the parameter tokens, e.g. `dynatree_fit`) has disappeared from
//! the current run is reported as missing — so a renamed workload cannot
//! silently drop out of the gate — and with `--max-regression` that too is
//! a non-zero exit. Same-family entries at other scales (the committed
//! reports mix full- and smoke-scale names) are matched by family and stay
//! silent. `--merge PATH` folds the workloads of an existing report
//! into the written one (fresh measurements win on name collisions), which
//! is how the committed reports carry both full- and smoke-scale entries.

use std::fmt::Write as _;
use std::time::Instant;

use alic_bench::{bench_campaign, bench_dataset, bench_profiler, synthetic_training_data};
use alic_core::acquisition::Acquisition;
use alic_core::learner::{ActiveLearner, LearnerConfig};
use alic_core::plan::SamplingPlan;
use alic_core::runner::run_campaign;
use alic_core::warmstore::{WarmKey, WarmStore};
use alic_model::dynatree::{DynaTree, DynaTreeConfig};
use alic_model::gp::GaussianProcess;
use alic_model::sgp::{SparseGaussianProcess, SparseGpConfig};
use alic_model::snapshot::restore_snapshot;
use alic_model::{row_views, ActiveSurrogate, SurrogateModel, SurrogateSpec};
use alic_serve::{ConnState, Engine, ServeConfig};
use alic_sim::space::{ParamKind, ParamSpec, ParameterSpace};

/// PR 5 baseline, measured on the same machine (single core, release build,
/// per-workload best over three repeated report runs to defeat clock
/// drift) from a worktree checkout of the PR 5 commit immediately before
/// this PR landed. The sparse-GP workloads are new in PR 6 and have no
/// prior baseline. `None` marks workloads without a recorded baseline.
const FULL_BASELINES: [(&str, Option<f64>); 10] = [
    ("alc_scores_500x50_200p", Some(0.001032)),
    ("dynatree_fit_1000x200p", Some(0.165021)),
    ("dynatree_update_200x200p", Some(0.056468)),
    ("dynatree_fit_1000x200p_t1", Some(0.168168)),
    ("dynatree_fit_1000x200p_tmax", Some(0.181143)),
    ("learner_run_60it_500c_200p", Some(0.050650)),
    ("gp_fit_1000", Some(0.123902)),
    ("gp_update_200x300", Some(0.034886)),
    ("gp_alc_500x50_300", Some(0.001373)),
    ("campaign_run_6u_60it_200p", Some(0.265637)),
];

/// Minimum duration one timed measurement must cover. Workloads faster than
/// this are repeated in an inner loop sized to reach the window and the
/// per-iteration mean is reported, so sub-millisecond workloads produce
/// stable numbers and can be held to the regression gate like everything
/// else (PR 3 had exempted them).
const MIN_MEASURE_WINDOW_SECONDS: f64 = 0.01;

struct WorkloadResult {
    name: String,
    description: String,
    seconds: f64,
    baseline_seconds: Option<f64>,
}

struct ScaleParams {
    label: &'static str,
    /// Training points behind the ALC-scored model (dynatree and GP).
    alc_train: usize,
    particles: usize,
    candidates: usize,
    references: usize,
    fit_points: usize,
    updates: usize,
    learner_pool: usize,
    learner_iterations: usize,
    learner_candidates: usize,
    /// Training-pool size for the sparse-GP workloads — the fleet-scale
    /// regime the low-rank family exists for, far past where the dense GP
    /// is feasible.
    sgp_points: usize,
    /// Inducing-set size for the sparse-GP workloads.
    sgp_inducing: usize,
    /// Observations preloaded into the serving session before the
    /// `serve_suggest` round-trips are timed.
    serve_preload: usize,
    /// `suggest` batch size for the serving round-trip workload.
    serve_suggest: usize,
    /// Observations per `serve_observe` batch (each one a full durable
    /// round trip).
    serve_batch: usize,
    /// Observations behind the donor surrogate cached in the warm store
    /// for the warm-start workloads.
    warmstart_donor: usize,
    /// Observation budget for the cold reference run of the warm-start
    /// sample-efficiency pair.
    warmstart_budget: usize,
    /// Best-of repetitions for the (cheap) scoring workload and the
    /// (expensive) fit/update/learner workloads respectively.
    reps_scoring: usize,
    reps_heavy: usize,
}

const FULL: ScaleParams = ScaleParams {
    label: "full",
    alc_train: 300,
    particles: 200,
    candidates: 500,
    references: 50,
    fit_points: 1000,
    updates: 200,
    learner_pool: 1000,
    learner_iterations: 60,
    learner_candidates: 500,
    sgp_points: 100_000,
    sgp_inducing: 128,
    serve_preload: 200,
    serve_suggest: 16,
    serve_batch: 50,
    warmstart_donor: 32,
    warmstart_budget: 40,
    reps_scoring: 10,
    reps_heavy: 3,
};

const SMOKE: ScaleParams = ScaleParams {
    label: "smoke",
    alc_train: 60,
    particles: 20,
    candidates: 50,
    references: 10,
    fit_points: 80,
    updates: 20,
    learner_pool: 150,
    learner_iterations: 8,
    learner_candidates: 30,
    sgp_points: 2_000,
    sgp_inducing: 32,
    serve_preload: 20,
    serve_suggest: 4,
    serve_batch: 10,
    warmstart_donor: 12,
    warmstart_budget: 10,
    reps_scoring: 2,
    reps_heavy: 1,
};

/// Render a point count compactly for workload names: `100_000` → `100k`,
/// smoke-scale counts stay literal.
fn fmt_points(n: usize) -> String {
    if n >= 10_000 && n.is_multiple_of(1_000) {
        format!("{}k", n / 1_000)
    } else {
        n.to_string()
    }
}

fn grid(n: usize, phase: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            vec![
                ((i + phase) % 23) as f64 / 22.0,
                ((i + phase) % 7) as f64 / 6.0,
            ]
        })
        .collect()
}

fn time_workload(mut f: impl FnMut(), repetitions: usize) -> f64 {
    // Warm-up once; the warm-up doubles as the calibration run that sizes
    // the inner repeat loop for sub-window workloads.
    let start = Instant::now();
    f();
    let calibration = start.elapsed().as_secs_f64();
    if calibration >= MIN_MEASURE_WINDOW_SECONDS {
        // Long workload: report the best of `repetitions` single runs.
        let mut best = calibration;
        for _ in 0..repetitions {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        return best;
    }
    // Short workload: repeat until one measurement covers the minimum
    // window, and report the per-iteration mean of the best window.
    let inner =
        ((MIN_MEASURE_WINDOW_SECONDS / calibration.max(1e-9)).ceil() as usize).clamp(2, 100_000);
    let mut best = f64::INFINITY;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        for _ in 0..inner {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / inner as f64);
    }
    best
}

fn run_workloads(params: &ScaleParams) -> Vec<WorkloadResult> {
    let mut results = Vec::new();
    // Workload names encode the actual parameters, so a smoke report can
    // never be mistaken for a canonical one; baselines only attach to the
    // canonical full-scale names.
    let baseline = |name: &str| -> Option<f64> {
        if params.label != "full" {
            return None;
        }
        FULL_BASELINES
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, b)| *b)
    };

    // 1. ALC batch scoring (the acquisition step of one iteration).
    {
        let (xs, ys) = synthetic_training_data(params.alc_train);
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: params.particles,
            seed: 9,
            ..Default::default()
        });
        model.fit(&row_views(&xs), &ys).unwrap();
        let candidates = grid(params.candidates, 0);
        let candidates = row_views(&candidates);
        let reference = grid(params.references, 3);
        let reference = row_views(&reference);
        let seconds = time_workload(
            || {
                std::hint::black_box(model.alc_scores(&candidates, &reference).unwrap());
            },
            params.reps_scoring,
        );
        let name = format!(
            "alc_scores_{}x{}_{}p",
            params.candidates, params.references, params.particles
        );
        results.push(WorkloadResult {
            description: format!(
                "ALC-score {} candidates against {} references, {} particles",
                params.candidates, params.references, params.particles
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
    }

    // 2. DynaTree fit at paper-ish scale.
    {
        let (xs, ys) = synthetic_training_data(params.fit_points);
        let views = row_views(&xs);
        let seconds = time_workload(
            || {
                let mut model = DynaTree::new(DynaTreeConfig {
                    particles: params.particles,
                    seed: 9,
                    ..Default::default()
                });
                model.fit(&views, &ys).unwrap();
                std::hint::black_box(&model);
            },
            params.reps_heavy,
        );
        let name = format!("dynatree_fit_{}x{}p", params.fit_points, params.particles);
        results.push(WorkloadResult {
            description: format!(
                "DynaTree fit on {} points with {} particles",
                params.fit_points, params.particles
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
    }

    // 3. DynaTree incremental updates (the per-iteration model step).
    {
        let (xs, ys) = synthetic_training_data(params.fit_points);
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: params.particles,
            seed: 9,
            ..Default::default()
        });
        model.fit(&row_views(&xs), &ys).unwrap();
        let updates = params.updates;
        let seconds = time_workload(
            || {
                let mut m = model.clone();
                for i in 0..updates {
                    let x = vec![(i % 19) as f64 / 18.0, (i % 5) as f64 / 4.0];
                    m.update(&x, 1.0 + (i % 3) as f64).unwrap();
                }
                std::hint::black_box(&m);
            },
            params.reps_heavy,
        );
        let name = format!("dynatree_update_{}x{}p", params.updates, params.particles);
        results.push(WorkloadResult {
            description: format!(
                "{} incremental DynaTree updates on a {}-point model",
                params.updates, params.fit_points
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
    }

    // 3b. DynaTree fit thread scaling: the same fit pinned to one worker
    //     thread and at the machine's full thread count. The parallel
    //     particle updates are bit-deterministic across thread counts, so
    //     the two entries measure pure scaling, not behavioral drift.
    {
        let (xs, ys) = synthetic_training_data(params.fit_points);
        let views = row_views(&xs);
        let default_threads = rayon::current_num_threads();
        let fit_at = |threads: usize| {
            rayon::set_num_threads(threads);
            let seconds = time_workload(
                || {
                    let mut model = DynaTree::new(DynaTreeConfig {
                        particles: params.particles,
                        seed: 9,
                        ..Default::default()
                    });
                    model.fit(&views, &ys).unwrap();
                    std::hint::black_box(&model);
                },
                params.reps_heavy,
            );
            rayon::set_num_threads(0);
            seconds
        };
        let t1 = fit_at(1);
        let tmax = fit_at(default_threads);
        for (suffix, seconds, threads) in [("t1", t1, 1), ("tmax", tmax, default_threads)] {
            let name = format!(
                "dynatree_fit_{}x{}p_{suffix}",
                params.fit_points, params.particles
            );
            results.push(WorkloadResult {
                description: format!(
                    "DynaTree fit on {} points with {} particles at {threads} worker thread(s)",
                    params.fit_points, params.particles
                ),
                seconds,
                baseline_seconds: baseline(&name),
                name,
            });
        }
    }

    // 4. Full small learner run (Algorithm 1 end to end).
    {
        let (dataset, split) = bench_dataset(params.learner_pool);
        let seconds = time_workload(
            || {
                let mut profiler = bench_profiler(11);
                let config = LearnerConfig {
                    initial_examples: 5,
                    initial_observations: 10,
                    candidates_per_iteration: params.learner_candidates,
                    max_iterations: params.learner_iterations,
                    evaluate_every: 15,
                    acquisition: Acquisition::Alc { reference_size: 50 },
                    plan: SamplingPlan::sequential(10),
                    ..Default::default()
                };
                let mut learner = ActiveLearner::new(config, &mut profiler);
                let mut model = DynaTree::new(DynaTreeConfig {
                    particles: params.particles,
                    seed: 5,
                    ..Default::default()
                });
                std::hint::black_box(learner.run(&mut model, &dataset, &split).unwrap());
            },
            params.reps_heavy,
        );
        let name = format!(
            "learner_run_{}it_{}c_{}p",
            params.learner_iterations, params.learner_candidates, params.particles
        );
        results.push(WorkloadResult {
            description: format!(
                "full learner run: {} iterations, {} candidates, {} particles",
                params.learner_iterations, params.learner_candidates, params.particles
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
    }

    // 5. GP cold fit (kernel build + blocked factorization + weights).
    {
        let (xs, ys) = synthetic_training_data(params.fit_points);
        let views = row_views(&xs);
        let seconds = time_workload(
            || {
                let mut gp = GaussianProcess::with_defaults();
                gp.fit(&views, &ys).unwrap();
                std::hint::black_box(&gp);
            },
            params.reps_heavy,
        );
        let name = format!("gp_fit_{}", params.fit_points);
        results.push(WorkloadResult {
            description: format!("Gaussian-process fit on {} points", params.fit_points),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
    }

    // 6. GP update-heavy run: the workload the paper's O(n³) complaint is
    //    about. PR 2 refit the kernel matrix per update; the incremental GP
    //    extends the live Cholesky factor in O(n²).
    {
        let (xs, ys) = synthetic_training_data(params.alc_train);
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&row_views(&xs), &ys).unwrap();
        let updates = params.updates;
        let seconds = time_workload(
            || {
                let mut m = gp.clone();
                for i in 0..updates {
                    let x = vec![(i % 19) as f64 / 18.0 + 1.5, (i % 5) as f64 / 4.0];
                    m.update(&x, 1.0 + (i % 3) as f64).unwrap();
                }
                std::hint::black_box(&m);
            },
            params.reps_heavy,
        );
        let name = format!("gp_update_{}x{}", params.updates, params.alc_train);
        results.push(WorkloadResult {
            description: format!(
                "{} incremental GP updates on a {}-point model",
                params.updates, params.alc_train
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
    }

    // 7. GP acquisition step: batched prediction + batched default ALC.
    {
        let (xs, ys) = synthetic_training_data(params.alc_train);
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&row_views(&xs), &ys).unwrap();
        let candidates = grid(params.candidates, 0);
        let candidates = row_views(&candidates);
        let reference = grid(params.references, 3);
        let reference = row_views(&reference);
        let seconds = time_workload(
            || {
                std::hint::black_box(gp.alc_scores(&candidates, &reference).unwrap());
            },
            params.reps_scoring,
        );
        let name = format!(
            "gp_alc_{}x{}_{}",
            params.candidates, params.references, params.alc_train
        );
        results.push(WorkloadResult {
            description: format!(
                "GP ALC-score {} candidates against {} references, {}-point model",
                params.candidates, params.references, params.alc_train
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
    }

    // 8. Campaign runner: decompose a two-kernel × three-plan matrix into
    //    work units, execute them on the work-stealing pool, merge. This is
    //    the orchestration path every experiment binary (and the sharded
    //    `campaign` CLI) now runs through; the workload tracks its overhead
    //    over the bare learner runs it wraps.
    {
        let spec = bench_campaign(
            params.learner_iterations,
            params.learner_candidates,
            params.particles,
            params.learner_pool,
        );
        let units = spec.unit_count();
        let seconds = time_workload(
            || {
                std::hint::black_box(run_campaign(&spec).unwrap());
            },
            params.reps_heavy,
        );
        let name = format!(
            "campaign_run_{units}u_{}it_{}p",
            params.learner_iterations, params.particles
        );
        results.push(WorkloadResult {
            description: format!(
                "campaign of {units} units (2 kernels x 3 plans): unit execution + merge, \
                 {} iterations, {} particles",
                params.learner_iterations, params.particles
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
    }

    // 9. Sparse-GP workloads (PR 6): the fleet-scale candidate-pool regime
    //    the low-rank family exists for. At the full scale the dense GP is
    //    simply infeasible here — a 100k-point cold fit is an O(n³)
    //    factorization of an 80 GB kernel matrix — so these entries have no
    //    dense counterpart; the crossover fit at the dense GP's own
    //    `gp_fit` scale is the directly comparable pair.
    {
        let m = params.sgp_inducing;
        let points = fmt_points(params.sgp_points);
        let config = SparseGpConfig {
            inducing: m,
            ..Default::default()
        };
        let (xs, ys) = synthetic_training_data(params.sgp_points);
        let views = row_views(&xs);

        // 9a. Cold fit: O(nm²) feature sweep + m×m factorization.
        let seconds = time_workload(
            || {
                let mut sgp = SparseGaussianProcess::new(config);
                sgp.fit(&views, &ys).unwrap();
                std::hint::black_box(&sgp);
            },
            params.reps_heavy,
        );
        let name = format!("sgp_fit_{points}_{m}m");
        results.push(WorkloadResult {
            description: format!(
                "sparse-GP fit on {} points with {m} inducing points",
                params.sgp_points
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });

        let mut fitted = SparseGaussianProcess::new(config);
        fitted.fit(&views, &ys).unwrap();

        // 9b. Incremental updates: O(m²) rank-1 work per observation,
        //     independent of the 100k-point history behind the model.
        let updates = params.updates;
        let seconds = time_workload(
            || {
                let mut model = fitted.clone();
                for i in 0..updates {
                    let x = vec![(i % 19) as f64 / 18.0, (i % 5) as f64 / 4.0];
                    model.update(&x, 1.0 + (i % 3) as f64).unwrap();
                }
                std::hint::black_box(&model);
            },
            params.reps_heavy,
        );
        let name = format!("sgp_update_{points}_{updates}x{m}m");
        results.push(WorkloadResult {
            description: format!(
                "{updates} incremental sparse-GP updates on a {}-point model",
                params.sgp_points
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });

        // 9c. ALC acquisition on the 100k-trained model: batched low-rank
        //     predictions, O(m²) per query.
        let candidates = grid(params.candidates, 0);
        let candidates = row_views(&candidates);
        let reference = grid(params.references, 3);
        let reference = row_views(&reference);
        let seconds = time_workload(
            || {
                std::hint::black_box(fitted.alc_scores(&candidates, &reference).unwrap());
            },
            params.reps_scoring,
        );
        let name = format!(
            "sgp_alc_{points}_{}x{}_{m}m",
            params.candidates, params.references
        );
        results.push(WorkloadResult {
            description: format!(
                "sparse-GP ALC-score {} candidates against {} references, {}-point model",
                params.candidates, params.references, params.sgp_points
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });

        // 9d. Dense-vs-sparse crossover: the same cold fit at the dense
        //     GP's `gp_fit` scale, so the report carries the pair of
        //     numbers that locates the crossover point.
        let (xs, ys) = synthetic_training_data(params.fit_points);
        let views = row_views(&xs);
        let seconds = time_workload(
            || {
                let mut sgp = SparseGaussianProcess::new(config);
                sgp.fit(&views, &ys).unwrap();
                std::hint::black_box(&sgp);
            },
            params.reps_heavy,
        );
        let name = format!("sgp_fit_{}_{m}m", params.fit_points);
        results.push(WorkloadResult {
            description: format!(
                "sparse-GP fit on {} points with {m} inducing points (dense-GP crossover pair)",
                params.fit_points
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
    }

    // 10. Serving round-trips (PR 8): request→reply latency through the
    //     daemon engine's dispatch. `serve_suggest` is the pure-read path
    //     (parse, session table, pool sampling, GP ALC ranking);
    //     `serve_observe` is the mutating path and so includes the durable,
    //     read-back-verified checkpoint write that backs the daemon's
    //     replied-⇒-durable contract — the per-request price of crash
    //     safety is exactly what this entry tracks.
    {
        let dir = std::env::temp_dir().join(format!("alic-perf-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = ServeConfig::new(&dir);
        config.default_model = SurrogateSpec::Gp(Default::default());
        let mut engine = Engine::open(config).expect("temp serve dir is writable");
        let mut conn = ConnState::new();
        let request = |engine: &mut Engine, conn: &mut ConnState, line: &str| {
            let reply = engine.handle_line(conn, line).reply.expect("reply");
            assert!(reply.starts_with("ok "), "{line:?} -> {reply}");
            reply
        };
        let observe_line = |i: usize| {
            format!(
                "observe {},{} {:.3}",
                1 + i % 30,
                i % 12,
                1.0 + (i % 7) as f64
            )
        };

        // 10a. `suggest` round-trips against a session preloaded with
        //      `serve_preload` observations.
        request(
            &mut engine,
            &mut conn,
            "newsession perf u:unroll:1:30,t:cache-tile:0:11",
        );
        for i in 0..params.serve_preload {
            request(&mut engine, &mut conn, &observe_line(i));
        }
        let suggest_line = format!("suggest {}", params.serve_suggest);
        let seconds = time_workload(
            || {
                std::hint::black_box(request(&mut engine, &mut conn, &suggest_line));
            },
            params.reps_scoring,
        );
        let name = format!(
            "serve_suggest_{}obs_{}",
            params.serve_preload, params.serve_suggest
        );
        results.push(WorkloadResult {
            description: format!(
                "serve round-trip: suggest {} on a {}-observation GP session",
                params.serve_suggest, params.serve_preload
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });

        // 10b. `observe` round-trips: a fresh session per iteration keeps
        //      the per-batch cost constant (checkpoint size and model grow
        //      with the log, so reusing one session would drift).
        let batch = params.serve_batch;
        let seconds = time_workload(
            || {
                let mut conn = ConnState::new();
                request(
                    &mut engine,
                    &mut conn,
                    "newsession perf u:unroll:1:30,t:cache-tile:0:11",
                );
                for i in 0..batch {
                    request(&mut engine, &mut conn, &observe_line(i));
                }
            },
            params.reps_heavy,
        );
        let name = format!("serve_observe_{batch}x");
        results.push(WorkloadResult {
            description: format!(
                "serve round-trip: newsession + {batch} observes, each durably checkpointed \
                 (read-back-verified atomic write per request)"
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // 11. Warm-start workloads (PR 9): the sample-efficiency pair measures
    //     how many observations a surrogate needs to reach a target RMSE
    //     on a held-out grid — once from scratch (cold) and once seeded
    //     from a donor snapshot cached in the warm store, exactly the
    //     probe → restore → update path `alic-serve` takes on a
    //     fingerprint hit. The target is the cold run's own final RMSE, so
    //     the warm entry's description reports how many observations a
    //     warm start saves on the same kernel. `seconds` times the whole
    //     to-target loop (restore included for the warm case).
    {
        let surface = |a: f64, b: f64| (4.0 * a).sin() + 0.5 * b + 0.3 * (3.0 * b).cos();
        // Deterministic low-discrepancy streams: the donor tuned the same
        // kernel earlier (phase 0); the new session sees phase 1. The
        // held-out evaluation grid uses coprime strides so it overlaps
        // neither stream.
        let stream = |phase: usize, i: usize| {
            let a = (((i + 1) * (13 + 7 * phase)) % 97) as f64 / 96.0;
            let b = (((i + 1) * (29 + 11 * phase)) % 89) as f64 / 88.0;
            (vec![a, b], surface(a, b))
        };
        let eval: Vec<(Vec<f64>, f64)> = (0..64)
            .map(|i| {
                let a = ((i * 41) % 64) as f64 / 63.0;
                let b = ((i * 23) % 64) as f64 / 63.0;
                (vec![a, b], surface(a, b))
            })
            .collect();
        let rmse = |model: &dyn ActiveSurrogate| {
            let sq: f64 = eval
                .iter()
                .map(|(x, y)| {
                    let p = model.predict(x).expect("eval point predicts");
                    (p.mean - y) * (p.mean - y)
                })
                .sum();
            (sq / eval.len() as f64).sqrt()
        };
        let spec = SurrogateSpec::Gp(Default::default());
        const SERVE_FIT_MIN: usize = 4;

        // Cold reference: fit on the first SERVE_FIT_MIN points (the
        // daemon's warmup), then update point by point to the budget.
        let budget = params.warmstart_budget.max(SERVE_FIT_MIN + 1);
        let cold_run = || {
            let mut model = spec.build(17);
            let warmup: Vec<(Vec<f64>, f64)> = (0..SERVE_FIT_MIN).map(|i| stream(1, i)).collect();
            let views: Vec<&[f64]> = warmup.iter().map(|(x, _)| x.as_slice()).collect();
            let ys: Vec<f64> = warmup.iter().map(|(_, y)| *y).collect();
            model.fit(&views, &ys).expect("cold fit succeeds");
            for i in SERVE_FIT_MIN..budget {
                let (x, y) = stream(1, i);
                model.update(&x, y).expect("cold update succeeds");
            }
            model
        };
        let target_rmse = rmse(cold_run().as_ref());
        let seconds = time_workload(
            || {
                std::hint::black_box(rmse(cold_run().as_ref()));
            },
            params.reps_heavy,
        );
        let name = format!("warmstart_cold_gp_{budget}obs");
        results.push(WorkloadResult {
            description: format!(
                "cold GP: {budget} observations from scratch reach held-out RMSE {target_rmse:.4} \
                 (the warm pair's target)"
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });

        // Warm run: a donor surrogate trained on the same kernel's earlier
        // stream is cached in the warm store; the new session probes,
        // restores, and updates until it matches the cold run's final
        // RMSE.
        let dir = std::env::temp_dir().join(format!("alic-perf-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp warm dir is writable");
        let store_path = dir.join("warm.json");
        let space = ParameterSpace::new(vec![
            ParamSpec::new("a", ParamKind::Unroll, 0, 96),
            ParamSpec::new("b", ParamKind::CacheTile, 0, 88),
        ])
        .expect("bench space is non-empty");
        let key = WarmKey::new("perf-surface", &space, "gp", "default");
        let donor = params.warmstart_donor;
        {
            let mut model = spec.build(17);
            let points: Vec<(Vec<f64>, f64)> = (0..donor).map(|i| stream(0, i)).collect();
            let views: Vec<&[f64]> = points.iter().map(|(x, _)| x.as_slice()).collect();
            let ys: Vec<f64> = points.iter().map(|(_, y)| *y).collect();
            model.fit(&views, &ys).expect("donor fit succeeds");
            let snapshot = model.snapshot().expect("gp snapshots");
            let mut store = WarmStore::open(&store_path);
            store.insert(&key, donor, snapshot);
            store.save().expect("warm store saves");
        }
        let warm_run = || {
            let mut store = WarmStore::open(&store_path);
            let entry = store.probe(&key).expect("donor entry resident");
            let mut model = restore_snapshot(&entry.model).expect("donor snapshot restores");
            let mut used = 0usize;
            while rmse(model.as_ref()) > target_rmse && used < budget {
                let (x, y) = stream(1, used);
                model.update(&x, y).expect("warm update succeeds");
                used += 1;
            }
            used
        };
        let warm_used = warm_run();
        let seconds = time_workload(
            || {
                std::hint::black_box(warm_run());
            },
            params.reps_heavy,
        );
        let name = format!("warmstart_warm_gp_{donor}donor");
        results.push(WorkloadResult {
            description: format!(
                "warm GP ({donor}-observation donor from the store): matched the cold run's \
                 final RMSE after {warm_used} observations vs {budget} cold"
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // 12. Warm suggest latency (PR 9): the request→reply latency of
    //     `suggest` on a session that was warm-started from the store —
    //     the restored donor surrogate ranks the candidate pool from the
    //     session's very first request, so this is the read-path price of
    //     a warm start (cf. `serve_suggest_*` for the cold equivalent).
    {
        let donor_dir =
            std::env::temp_dir().join(format!("alic-perf-warmserve-a-{}", std::process::id()));
        let serve_dir =
            std::env::temp_dir().join(format!("alic-perf-warmserve-b-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&donor_dir);
        let _ = std::fs::remove_dir_all(&serve_dir);
        let store_path = donor_dir.join("warm.json");
        let request = |engine: &mut Engine, conn: &mut ConnState, line: &str| {
            let reply = engine.handle_line(conn, line).reply.expect("reply");
            assert!(reply.starts_with("ok "), "{line:?} -> {reply}");
            reply
        };
        let observe_line = |i: usize| {
            format!(
                "observe {},{} {:.3}",
                1 + i % 30,
                i % 12,
                1.0 + (i % 7) as f64
            )
        };
        // Donor daemon: tune, then quit so the surrogate lands in the
        // store.
        {
            let mut config = ServeConfig::new(&donor_dir);
            config.default_model = SurrogateSpec::Gp(Default::default());
            config.warm_store = Some(store_path.clone());
            let mut engine = Engine::open(config).expect("temp serve dir is writable");
            let mut conn = ConnState::new();
            request(
                &mut engine,
                &mut conn,
                "newsession perf u:unroll:1:30,t:cache-tile:0:11",
            );
            for i in 0..params.serve_preload {
                request(&mut engine, &mut conn, &observe_line(i));
            }
            request(&mut engine, &mut conn, "quit");
        }
        // Restarted daemon: the same kernel/space warm-starts from the
        // store and serves suggestions with zero local observations.
        let mut config = ServeConfig::new(&serve_dir);
        config.default_model = SurrogateSpec::Gp(Default::default());
        config.warm_store = Some(store_path);
        let mut engine = Engine::open(config).expect("temp serve dir is writable");
        let mut conn = ConnState::new();
        let reply = request(
            &mut engine,
            &mut conn,
            "newsession perf u:unroll:1:30,t:cache-tile:0:11",
        );
        assert!(reply.contains(" warm "), "expected a warm start: {reply}");
        let suggest_line = format!("suggest {}", params.serve_suggest);
        let seconds = time_workload(
            || {
                std::hint::black_box(request(&mut engine, &mut conn, &suggest_line));
            },
            params.reps_scoring,
        );
        let name = format!(
            "serve_suggest_warm_{}donor_{}",
            params.serve_preload, params.serve_suggest
        );
        results.push(WorkloadResult {
            description: format!(
                "serve round-trip: suggest {} on a session warm-started from a \
                 {}-observation donor surrogate",
                params.serve_suggest, params.serve_preload
            ),
            seconds,
            baseline_seconds: baseline(&name),
            name,
        });
        drop(engine);
        let _ = std::fs::remove_dir_all(&donor_dir);
        let _ = std::fs::remove_dir_all(&serve_dir);
    }

    results
}

fn render_json(scale_label: &str, results: &[WorkloadResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"alic-perf-report/v1\",");
    let _ = writeln!(out, "  \"pr\": 9,");
    let _ = writeln!(out, "  \"scale\": \"{scale_label}\",");
    let _ = writeln!(out, "  \"threads\": {},", rayon::current_num_threads());
    out.push_str("  \"workloads\": [\n");
    for (i, w) in results.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(out, "      \"description\": \"{}\",", w.description);
        let _ = writeln!(out, "      \"seconds\": {:.6},", w.seconds);
        match w.baseline_seconds {
            Some(b) => {
                let _ = writeln!(out, "      \"baseline_seconds\": {b:.6},");
                let _ = writeln!(out, "      \"speedup\": {:.2}", b / w.seconds);
            }
            None => {
                let _ = writeln!(out, "      \"baseline_seconds\": null,");
                let _ = writeln!(out, "      \"speedup\": null");
            }
        }
        out.push_str("    }");
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimal parser for the reports this binary writes (and the earlier
/// `BENCH_PR<n>.json` generations, which share the line-oriented layout):
/// extracts `name`, `description`, `seconds` and `baseline_seconds` per
/// workload object. Not a general JSON parser — the committed reports are
/// machine-written with one field per line and no escapes.
fn parse_report_workloads(text: &str) -> Vec<WorkloadResult> {
    fn unquote(v: &str) -> Option<String> {
        let v = v.trim();
        v.strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .map(str::to_string)
    }
    let mut out = Vec::new();
    let mut current: Option<WorkloadResult> = None;
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(v) = line.strip_prefix("\"name\":") {
            if let Some(w) = current.take() {
                out.push(w);
            }
            if let Some(name) = unquote(v) {
                current = Some(WorkloadResult {
                    name,
                    description: String::new(),
                    seconds: f64::NAN,
                    baseline_seconds: None,
                });
            }
        } else if let Some(w) = current.as_mut() {
            if let Some(v) = line.strip_prefix("\"description\":") {
                if let Some(d) = unquote(v) {
                    w.description = d;
                }
            } else if let Some(v) = line.strip_prefix("\"seconds\":") {
                w.seconds = v.trim().parse().unwrap_or(f64::NAN);
            } else if let Some(v) = line.strip_prefix("\"baseline_seconds\":") {
                w.baseline_seconds = v.trim().parse().ok();
            }
        }
    }
    if let Some(w) = current.take() {
        out.push(w);
    }
    out.retain(|w| w.seconds.is_finite() && w.seconds > 0.0);
    out
}

/// The family stem of a workload name: the leading `_`-separated tokens up
/// to (excluding) the first token that carries a digit, i.e. the name with
/// its parameter encoding stripped. `dynatree_fit_1000x200p_t1` and
/// `dynatree_fit_80x20p` are both family `dynatree_fit`; a wholesale rename
/// changes the family and trips the missing-workload check.
fn workload_family(name: &str) -> String {
    let stem: Vec<&str> = name
        .split('_')
        .take_while(|token| !token.bytes().any(|b| b.is_ascii_digit()))
        .collect();
    if stem.is_empty() {
        name.to_string()
    } else {
        stem.join("_")
    }
}

fn load_report_workloads(path: &str) -> Vec<WorkloadResult> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read report {path}: {e}");
        std::process::exit(2);
    });
    let workloads = parse_report_workloads(&text);
    if workloads.is_empty() {
        eprintln!("no workloads found in report {path}");
        std::process::exit(2);
    }
    workloads
}

fn main() {
    let mut scale = std::env::var("ALIC_PERF_SCALE").unwrap_or_else(|_| "full".to_string());
    let mut out_path = "BENCH_PR9.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut merge_path: Option<String> = None;
    let mut max_regression: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().expect("--scale needs a value"),
            "--out" => out_path = args.next().expect("--out needs a value"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a value")),
            "--merge" => merge_path = Some(args.next().expect("--merge needs a value")),
            "--max-regression" => {
                let value = args.next().expect("--max-regression needs a value");
                max_regression = Some(value.parse().unwrap_or_else(|_| {
                    eprintln!("--max-regression needs a positive number, got {value}");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perf_report [--scale full|smoke] [--out PATH] \
                     [--baseline PATH [--max-regression X]] [--merge PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let params = match scale.as_str() {
        "full" => &FULL,
        "smoke" | "quick" => &SMOKE,
        other => {
            eprintln!("unknown scale: {other} (expected full or smoke)");
            std::process::exit(2);
        }
    };

    let results = run_workloads(params);
    for w in &results {
        match w.baseline_seconds {
            Some(b) => println!(
                "{}: {:.6} s (baseline {:.6} s, speedup {:.2}x)",
                w.name,
                w.seconds,
                b,
                b / w.seconds
            ),
            None => println!("{}: {:.6} s", w.name, w.seconds),
        }
    }

    // Regression check against a prior committed report, by workload name.
    let mut regression_failures = Vec::new();
    if let Some(path) = &baseline_path {
        let prior = load_report_workloads(path);
        let mut matched = 0;
        for w in &results {
            let Some(b) = prior.iter().find(|p| p.name == w.name) else {
                continue;
            };
            matched += 1;
            let ratio = w.seconds / b.seconds;
            // Every matched workload is enforced: the minimum-measurement-
            // window repetition makes even sub-millisecond timings stable
            // enough to gate.
            let verdict = match max_regression {
                Some(limit) if ratio > limit => {
                    regression_failures.push((w.name.clone(), ratio, limit));
                    "REGRESSION"
                }
                _ => "ok",
            };
            println!(
                "vs {path} :: {}: {:.2}x ({:.6} s now, {:.6} s before) [{verdict}]",
                w.name, ratio, w.seconds, b.seconds
            );
        }
        if matched == 0 {
            eprintln!(
                "warning: no workload of this run appears in {path}; \
                 nothing to compare (check the --scale of both reports)"
            );
        }
        // Baseline workloads whose whole family no longer shows up in the
        // current run mean a workload was dropped or renamed — it must not
        // silently fall out of the regression gate. Same-family entries at
        // another scale (the committed reports mix full and smoke names)
        // are expected and stay silent.
        let current_families: std::collections::BTreeSet<String> =
            results.iter().map(|w| workload_family(&w.name)).collect();
        for b in &prior {
            if !current_families.contains(&workload_family(&b.name)) {
                eprintln!(
                    "warning: baseline workload {} ({}) has no counterpart in this run; \
                     it dropped out of the regression gate",
                    b.name,
                    workload_family(&b.name)
                );
                if let Some(limit) = max_regression {
                    regression_failures.push((format!("{} [missing]", b.name), f64::NAN, limit));
                }
            }
        }
    }

    // Fold in a prior report's entries (fresh measurements win on name
    // collisions) so one file can carry full- and smoke-scale workloads.
    let (scale_label, merged) = match &merge_path {
        Some(path) => {
            let mut merged: Vec<WorkloadResult> = load_report_workloads(path)
                .into_iter()
                .filter(|old| results.iter().all(|w| w.name != old.name))
                .collect();
            merged.extend(results);
            ("mixed", merged)
        }
        None => (params.label, results),
    };

    let json = render_json(scale_label, &merged);
    std::fs::write(&out_path, json).expect("report file is writable");
    println!("wrote {out_path}");

    if !regression_failures.is_empty() {
        for (name, ratio, limit) in &regression_failures {
            if ratio.is_nan() {
                eprintln!("perf regression: {name} vanished from the gated workload set");
            } else {
                eprintln!(
                    "perf regression: {name} is {ratio:.2}x its baseline (limit {limit:.2}x)"
                );
            }
        }
        std::process::exit(1);
    }
}
