//! Model-agnostic surrogate specification.
//!
//! The experiment harness used to hard-wire the dynamic tree into every
//! protocol. [`SurrogateSpec`] decouples the two layers: an experiment
//! configuration carries a *description* of the surrogate (which family,
//! which hyper-parameters), and each repetition materializes a fresh model
//! from it via [`SurrogateSpec::build`]. Every model family of this crate is
//! representable, so benchmarking an active-learning strategy across model
//! families — the axis emphasized by the active-learning benchmarking
//! literature — becomes a configuration change instead of a code change.
//!
//! The spec is plain `Copy` data with string round-tripping through
//! [`SurrogateSpec::name`] / [`SurrogateSpec::from_name`] (the form the CLI
//! and `ALIC_MODEL` persist). It also carries the serde derives, but note
//! that the vendored offline `serde` is a no-op marker: full serde
//! serialization only becomes real once the genuine crate replaces the shim.

use serde::{Deserialize, Serialize};

use crate::baseline::ConstantMean;
use crate::cart::{CartConfig, RegressionTree};
use crate::dynatree::{DynaTree, DynaTreeConfig};
use crate::gp::{GaussianProcess, GpConfig};
use crate::knn::{KnnConfig, KnnRegressor};
use crate::sgp::{SparseGaussianProcess, SparseGpConfig};
use crate::traits::ActiveSurrogate;

/// A description of a surrogate model that can be stored in experiment
/// configurations and materialized on demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SurrogateSpec {
    /// Particle-learning dynamic tree (the paper's model, §3.2).
    DynaTree(DynaTreeConfig),
    /// Static CART regression tree.
    Cart(CartConfig),
    /// Squared-exponential Gaussian process.
    Gp(GpConfig),
    /// Inducing-point sparse Gaussian process (usable on 100k-point pools).
    Sgp(SparseGpConfig),
    /// k-nearest-neighbour regressor.
    Knn(KnnConfig),
    /// Constant-mean baseline (the floor every useful model must beat).
    Mean,
}

impl Default for SurrogateSpec {
    fn default() -> Self {
        SurrogateSpec::DynaTree(DynaTreeConfig::default())
    }
}

impl SurrogateSpec {
    /// Canonical lowercase name of the model family.
    pub fn name(&self) -> &'static str {
        match self {
            SurrogateSpec::DynaTree(_) => "dynatree",
            SurrogateSpec::Cart(_) => "cart",
            SurrogateSpec::Gp(_) => "gp",
            SurrogateSpec::Sgp(_) => "sgp",
            SurrogateSpec::Knn(_) => "knn",
            SurrogateSpec::Mean => "mean",
        }
    }

    /// The canonical names accepted by [`SurrogateSpec::from_name`], in
    /// presentation order.
    pub fn names() -> &'static [&'static str] {
        &["dynatree", "cart", "gp", "sgp", "knn", "mean"]
    }

    /// Dynamic-tree spec with the given particle count and default priors —
    /// the constructor experiment presets use to size the ensemble without
    /// naming [`DynaTreeConfig`] themselves.
    pub fn dynatree(particles: usize) -> Self {
        SurrogateSpec::DynaTree(DynaTreeConfig {
            particles,
            ..Default::default()
        })
    }

    /// One default-configured spec per model family, in the order of
    /// [`SurrogateSpec::names`].
    pub fn all() -> [SurrogateSpec; 6] {
        [
            SurrogateSpec::DynaTree(DynaTreeConfig::default()),
            SurrogateSpec::Cart(CartConfig::default()),
            SurrogateSpec::Gp(GpConfig::default()),
            SurrogateSpec::Sgp(SparseGpConfig::default()),
            SurrogateSpec::Knn(KnnConfig::default()),
            SurrogateSpec::Mean,
        ]
    }

    /// Parses a model-family name (case-insensitive, with common aliases)
    /// into a default-configured spec.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "dynatree" | "dyna-tree" | "dynamic-tree" | "dt" => {
                Some(SurrogateSpec::DynaTree(DynaTreeConfig::default()))
            }
            "cart" | "tree" | "regression-tree" => Some(SurrogateSpec::Cart(CartConfig::default())),
            "gp" | "gaussian-process" => Some(SurrogateSpec::Gp(GpConfig::default())),
            "sgp" | "sparse-gp" | "sparse-gaussian-process" => {
                Some(SurrogateSpec::Sgp(SparseGpConfig::default()))
            }
            "knn" | "k-nn" | "nearest-neighbour" | "nearest-neighbor" => {
                Some(SurrogateSpec::Knn(KnnConfig::default()))
            }
            "mean" | "baseline" | "constant" | "constant-mean" => Some(SurrogateSpec::Mean),
            _ => None,
        }
    }

    /// Materializes an unfitted surrogate from this description.
    ///
    /// `seed` feeds the model's internal randomness where the family has any
    /// (currently only the dynamic tree); deterministic families ignore it,
    /// so experiment harnesses can pass a per-repetition seed unconditionally.
    ///
    /// The box is `Send` so long-lived services (the serve daemon's engine
    /// owner thread) can hold sessions across threads; every model family is
    /// plain owned data.
    pub fn build(&self, seed: u64) -> Box<dyn ActiveSurrogate + Send> {
        match *self {
            SurrogateSpec::DynaTree(config) => {
                Box::new(DynaTree::new(DynaTreeConfig { seed, ..config }))
            }
            SurrogateSpec::Cart(config) => Box::new(RegressionTree::new(config)),
            SurrogateSpec::Gp(config) => Box::new(GaussianProcess::new(config)),
            SurrogateSpec::Sgp(config) => Box::new(SparseGaussianProcess::new(config)),
            SurrogateSpec::Knn(config) => Box::new(KnnRegressor::new(config)),
            SurrogateSpec::Mean => Box::new(ConstantMean::new()),
        }
    }

    /// Whether materialized models depend on the seed passed to
    /// [`SurrogateSpec::build`].
    pub fn is_stochastic(&self) -> bool {
        matches!(self, SurrogateSpec::DynaTree(_))
    }
}

impl std::fmt::Display for SurrogateSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row_views;

    fn training_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + x[0] * x[0]).collect();
        (xs, ys)
    }

    #[test]
    fn every_name_round_trips() {
        for &name in SurrogateSpec::names() {
            let spec = SurrogateSpec::from_name(name).expect("listed names must parse");
            assert_eq!(spec.name(), name);
            assert_eq!(spec.to_string(), name);
        }
        assert_eq!(
            SurrogateSpec::from_name("DynaTree").unwrap().name(),
            "dynatree"
        );
        assert!(SurrogateSpec::from_name("bogus").is_none());
    }

    #[test]
    fn all_covers_every_family_once() {
        let names: Vec<&str> = SurrogateSpec::all().iter().map(|s| s.name()).collect();
        assert_eq!(names, SurrogateSpec::names());
    }

    #[test]
    fn every_family_builds_fits_and_predicts() {
        let (xs, ys) = training_data();
        for spec in SurrogateSpec::all() {
            let mut model = spec.build(7);
            model
                .fit(&row_views(&xs), &ys)
                .unwrap_or_else(|e| panic!("{spec}: fit failed: {e}"));
            model.update(&[0.5], 1.3).unwrap();
            let pred = model.predict(&[0.25]).unwrap();
            assert!(pred.mean.is_finite(), "{spec}: non-finite mean");
            assert!(pred.variance >= 0.0, "{spec}: negative variance");
            assert!(model.observation_count() > 0);
            // The acquisition path must work through the trait object too.
            let score = model.alm_score(&[0.75]).unwrap();
            assert!(score.is_finite());
        }
    }

    #[test]
    fn build_seeds_only_stochastic_families() {
        let spec = SurrogateSpec::default();
        assert!(spec.is_stochastic());
        assert!(!SurrogateSpec::Mean.is_stochastic());
        let (xs, ys) = training_data();
        // A deterministic family must produce identical predictions for
        // different seeds.
        let cart = SurrogateSpec::Cart(CartConfig::default());
        let mut a = cart.build(1);
        let mut b = cart.build(2);
        a.fit(&row_views(&xs), &ys).unwrap();
        b.fit(&row_views(&xs), &ys).unwrap();
        assert_eq!(a.predict(&[0.4]).unwrap(), b.predict(&[0.4]).unwrap());
    }

    #[test]
    fn dynatree_spec_preserves_hyperparameters() {
        let spec = SurrogateSpec::DynaTree(DynaTreeConfig {
            particles: 33,
            ..Default::default()
        });
        match spec {
            SurrogateSpec::DynaTree(config) => assert_eq!(config.particles, 33),
            _ => unreachable!(),
        }
        let (xs, ys) = training_data();
        let mut model = spec.build(5);
        model.fit(&row_views(&xs), &ys).unwrap();
        assert!(model.predict(&[0.1]).unwrap().mean.is_finite());
    }
}
