//! Trivial baseline regressors.
//!
//! The constant-mean model predicts the global mean of the training targets
//! everywhere, with the global variance as its uncertainty. Any useful model
//! must beat it; the test suites and benchmarks use it as a floor.

use alic_data::io::JsonValue;
use alic_stats::summary::OnlineStats;

use crate::snapshot::{self, Snapshot};
use crate::traits::{ActiveSurrogate, Prediction, SurrogateModel};
use crate::{validate_training_set, ModelError, Result};

/// Predicts the global training mean everywhere.
#[derive(Debug, Clone, Default)]
pub struct ConstantMean {
    stats: OnlineStats,
    dimension: Option<usize>,
}

impl ConstantMean {
    /// Creates an unfitted constant-mean model.
    pub fn new() -> Self {
        ConstantMean::default()
    }

    /// Rebuilds a model from a [`SurrogateModel::snapshot`] document.
    pub(crate) fn from_snapshot(doc: &JsonValue) -> Result<Self> {
        let dimension = match snapshot::get(doc, "dimension")? {
            JsonValue::Null => None,
            _ => Some(snapshot::get_usize(doc, "dimension")?),
        };
        Ok(ConstantMean {
            stats: OnlineStats::from_parts(
                snapshot::get_usize(doc, "count")?,
                snapshot::get_hex_f64(doc, "mean")?,
                snapshot::get_hex_f64(doc, "m2")?,
                snapshot::get_hex_f64(doc, "min")?,
                snapshot::get_hex_f64(doc, "max")?,
            ),
            dimension,
        })
    }
}

impl SurrogateModel for ConstantMean {
    fn fit(&mut self, xs: &[&[f64]], ys: &[f64]) -> Result<()> {
        let dim = validate_training_set(xs, ys)?;
        self.dimension = Some(dim);
        self.stats = ys.iter().copied().collect();
        Ok(())
    }

    fn update(&mut self, x: &[f64], y: f64) -> Result<()> {
        match self.dimension {
            None => return Err(ModelError::NotFitted),
            Some(d) if d != x.len() => {
                return Err(ModelError::DimensionMismatch {
                    expected: d,
                    actual: x.len(),
                })
            }
            _ => {}
        }
        // The prediction ignores x, but a NaN feature still signals a broken
        // observation; the uniform policy rejects it like every other family.
        crate::validate_observation(x, y)?;
        self.stats.push(y);
        Ok(())
    }

    fn predict(&self, _x: &[f64]) -> Result<Prediction> {
        if self.dimension.is_none() {
            return Err(ModelError::NotFitted);
        }
        Ok(Prediction::new(self.stats.mean(), self.stats.variance()))
    }

    fn observation_count(&self) -> usize {
        self.stats.count()
    }

    fn dimension(&self) -> Option<usize> {
        self.dimension
    }

    fn snapshot(&self) -> Result<Snapshot> {
        let mut fields = snapshot::header("mean");
        fields.extend([
            ("count".to_string(), snapshot::num(self.stats.count())),
            ("mean".to_string(), snapshot::hex_f64(self.stats.mean())),
            ("m2".to_string(), snapshot::hex_f64(self.stats.m2())),
            ("min".to_string(), snapshot::hex_f64(self.stats.min())),
            ("max".to_string(), snapshot::hex_f64(self.stats.max())),
            (
                "dimension".to_string(),
                match self.dimension {
                    None => JsonValue::Null,
                    Some(d) => snapshot::num(d),
                },
            ),
        ]);
        Ok(JsonValue::Object(fields))
    }
}

impl ActiveSurrogate for ConstantMean {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row_views;

    #[test]
    fn predicts_the_training_mean_everywhere() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![1.0, 2.0, 3.0, 4.0];
        let mut model = ConstantMean::new();
        model.fit(&row_views(&xs), &ys).unwrap();
        assert!((model.predict(&[0.0]).unwrap().mean - 2.5).abs() < 1e-12);
        assert!((model.predict(&[99.0]).unwrap().mean - 2.5).abs() < 1e-12);
    }

    #[test]
    fn update_moves_the_mean() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![1.0, 1.0];
        let mut model = ConstantMean::new();
        model.fit(&row_views(&xs), &ys).unwrap();
        model.update(&[2.0], 4.0).unwrap();
        assert!((model.predict(&[0.0]).unwrap().mean - 2.0).abs() < 1e-12);
        assert_eq!(model.observation_count(), 3);
    }

    #[test]
    fn errors_before_fit_and_on_bad_input() {
        let mut model = ConstantMean::new();
        assert_eq!(model.predict(&[0.0]).unwrap_err(), ModelError::NotFitted);
        let xs = vec![vec![0.0, 1.0]];
        let ys = vec![1.0];
        model.fit(&row_views(&xs), &ys).unwrap();
        assert!(matches!(
            model.update(&[1.0], 1.0),
            Err(ModelError::DimensionMismatch { .. })
        ));
        assert_eq!(
            model.update(&[1.0, 2.0], f64::NAN).unwrap_err(),
            ModelError::NonFiniteInput
        );
        assert_eq!(
            model.update(&[f64::NAN, 2.0], 1.0).unwrap_err(),
            ModelError::NonFiniteInput
        );
    }
}
