//! Gaussian-process regression with incremental `O(n²)` updates.
//!
//! The paper notes (§3.2) that the "collective wisdom" choice for regression
//! with uncertainty is a Gaussian Process, but that its `O(n³)` inference is
//! too slow for an active-learning loop that refits after every observation.
//! This implementation exists (a) as a quality reference for the dynamic
//! tree, (b) to let the benchmark suite quantify exactly that cost gap, and
//! (c) as an alternative surrogate for small problems.
//!
//! The kernel is a squared-exponential (RBF) with a constant mean function
//! and a noise nugget; hyper-parameters are set by simple data-driven
//! heuristics (median-distance lengthscale) rather than marginal-likelihood
//! optimization, which is sufficient for the workloads in this workspace.
//!
//! # Incremental updates
//!
//! Naively, every [`update`](SurrogateModel::update) rebuilds the kernel
//! matrix and refactorizes it — the `O(n³)`-per-iteration cost the paper
//! complains about. This implementation instead keeps the Cholesky factor
//! **alive across updates**:
//!
//! * hyper-parameters (lengthscale, signal variance) are data-scale
//!   heuristics, not functions of `n`, so they are computed **once at fit
//!   time** and frozen — the kernel of old training pairs never changes;
//! * the train-side kernel rows are cached in packed lower-triangular form,
//!   so kernel values are computed exactly once per training pair;
//! * each update appends one kernel row to the cache and extends the live
//!   factor with a rank-1 [`Cholesky::append_row`] — `O(n²)`, and
//!   bit-identical to a cold factorization of the grown matrix;
//! * the constant mean and the weight vector `α = K⁻¹ (y − μ)` are
//!   recomputed from the live factor (`O(n²)` triangular solves);
//! * if the Schur complement of the appended row goes non-positive (the
//!   bordered matrix is numerically indefinite), the model falls back to a
//!   full refactorization from the kernel-row cache with **escalating
//!   diagonal jitter** until the factorization succeeds.
//!
//! The net effect: an update is `O(n²)` on the common path, and a model
//! grown by `fit(k)` + `m × update` is numerically identical to one cold
//! fitted on all `k + m` points with the same hyper-parameters (the root
//! test suite property-tests this to 1e-8).
//!
//! Prediction is batched: [`predict_batch`](SurrogateModel::predict_batch)
//! evaluates kernel vectors for blocks of query rows and pushes the whole
//! block through one blocked triangular solve
//! ([`Cholesky::forward_substitute_batch`]), instead of re-walking the
//! factor per query point. Blocks are scored in parallel with by-index
//! write-back, so results are bit-identical regardless of thread count.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use alic_stats::cholesky::Cholesky;
use alic_stats::matrix::squared_distance;
use alic_stats::FeatureMatrix;

use alic_data::io::JsonValue;

use crate::snapshot::{self, Snapshot};
use crate::traits::{ActiveSurrogate, Prediction, SurrogateModel};
use crate::{validate_training_set, ModelError, Result};

/// Query rows per parallel prediction block. Each row's arithmetic is
/// independent, so the block size affects scheduling granularity only,
/// never results.
const PREDICT_BLOCK: usize = 64;

/// Factor-ladder escalation: jitter grows by 10× per attempt, at most this
/// many times, before the factorization is declared failed.
const MAX_JITTER_ATTEMPTS: u32 = 8;

/// Hyper-parameters of the squared-exponential Gaussian process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpConfig {
    /// Kernel lengthscale. `None` selects the median pairwise distance of the
    /// training inputs at fit time.
    pub lengthscale: Option<f64>,
    /// Signal variance (vertical scale). `None` selects the training-target
    /// variance at fit time.
    pub signal_variance: Option<f64>,
    /// Observation-noise variance added to the kernel diagonal.
    pub noise_variance: f64,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            lengthscale: None,
            signal_variance: None,
            noise_variance: 1e-4,
        }
    }
}

/// Squared-exponential Gaussian-process regressor with `O(n²)` incremental
/// updates.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    config: GpConfig,
    /// Training inputs in flat row-major storage.
    xs: FeatureMatrix,
    ys: Vec<f64>,
    mean: f64,
    lengthscale: f64,
    signal_variance: f64,
    /// Jitter added to the kernel diagonal of the current factorization
    /// (base value, possibly escalated by the fallback ladder).
    jitter: f64,
    /// Cached train-side kernel rows, packed lower-triangular, **without**
    /// jitter. Hyper-parameters are frozen at fit time, so these values
    /// never need recomputing; the fallback refactorization reads them back
    /// instead of re-evaluating `n²/2` kernels.
    kernel_rows: Vec<f64>,
    chol: Option<Cholesky>,
    alpha: Vec<f64>,
    dimension: Option<usize>,
    /// Number of full factorizations performed (fit + fallbacks). The
    /// common-path `O(n²)` guarantee is observable: a run of updates that
    /// never trips the jitter ladder leaves this at 1.
    refactorizations: usize,
}

impl GaussianProcess {
    /// Creates an unfitted Gaussian process with the given configuration.
    pub fn new(config: GpConfig) -> Self {
        GaussianProcess {
            config,
            xs: FeatureMatrix::new(1),
            ys: Vec::new(),
            mean: 0.0,
            lengthscale: 1.0,
            signal_variance: 1.0,
            jitter: 0.0,
            kernel_rows: Vec::new(),
            chol: None,
            alpha: Vec::new(),
            dimension: None,
            refactorizations: 0,
        }
    }

    /// Creates an unfitted Gaussian process with default configuration.
    pub fn with_defaults() -> Self {
        GaussianProcess::new(GpConfig::default())
    }

    /// The lengthscale actually in use after fitting.
    pub fn lengthscale(&self) -> f64 {
        self.lengthscale
    }

    /// The signal variance actually in use after fitting.
    pub fn signal_variance(&self) -> f64 {
        self.signal_variance
    }

    /// Diagonal jitter of the current factorization. Exceeds the base value
    /// (`noise_variance` plus a relative nugget) only when the fallback
    /// ladder had to escalate.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Number of full kernel-matrix factorizations performed so far: one for
    /// [`fit`](SurrogateModel::fit) plus one per jitter-ladder fallback. A
    /// sequence of updates that stays on the `O(n²)` rank-1 path leaves this
    /// count unchanged.
    pub fn refactorizations(&self) -> usize {
        self.refactorizations
    }

    /// Rebuilds a process from a [`SurrogateModel::snapshot`] document; the
    /// packed Cholesky factor is restored verbatim (never re-factorized), so
    /// the restored model predicts bit-identically.
    pub(crate) fn from_snapshot(doc: &JsonValue) -> Result<Self> {
        let config = GpConfig {
            lengthscale: snapshot::get_opt_hex_f64(doc, "config_lengthscale")?,
            signal_variance: snapshot::get_opt_hex_f64(doc, "config_signal_variance")?,
            noise_variance: snapshot::get_hex_f64(doc, "config_noise_variance")?,
        };
        let dim = snapshot::get_usize(doc, "xs_dim")?.max(1);
        let flat = snapshot::get_hex_f64s(doc, "xs")?;
        if flat.len() % dim != 0 {
            return Err(snapshot::err("field xs: length is not a multiple of dim"));
        }
        let mut xs = FeatureMatrix::with_capacity(dim, flat.len() / dim);
        for row in flat.chunks_exact(dim) {
            xs.push_row(row);
        }
        let ys = snapshot::get_hex_f64s(doc, "ys")?;
        let chol = match snapshot::get(doc, "chol")? {
            JsonValue::Null => None,
            packed => {
                let data = snapshot::decode_hex_f64s(
                    "chol",
                    packed
                        .as_str()
                        .map_err(|e| snapshot::err(format!("field chol: {e}")))?,
                )?;
                Some(
                    Cholesky::from_packed_factor(ys.len(), data)
                        .map_err(|e| snapshot::err(format!("field chol: {e}")))?,
                )
            }
        };
        let dimension = match snapshot::get(doc, "dimension")? {
            JsonValue::Null => None,
            _ => Some(snapshot::get_usize(doc, "dimension")?),
        };
        Ok(GaussianProcess {
            config,
            xs,
            ys,
            mean: snapshot::get_hex_f64(doc, "mean")?,
            lengthscale: snapshot::get_hex_f64(doc, "lengthscale")?,
            signal_variance: snapshot::get_hex_f64(doc, "signal_variance")?,
            jitter: snapshot::get_hex_f64(doc, "jitter")?,
            kernel_rows: snapshot::get_hex_f64s(doc, "kernel_rows")?,
            chol,
            alpha: snapshot::get_hex_f64s(doc, "alpha")?,
            dimension,
            refactorizations: snapshot::get_usize(doc, "refactorizations")?,
        })
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2 = squared_distance(a, b).expect("dimension already validated");
        self.signal_variance * (-0.5 * d2 / (self.lengthscale * self.lengthscale)).exp()
    }

    fn base_jitter(&self) -> f64 {
        self.config.noise_variance.max(1e-10) + 1e-8 * self.signal_variance
    }

    /// Full factorization from the kernel-row cache, escalating the diagonal
    /// jitter by 10× per failed attempt. Deterministic in the cached rows,
    /// which makes an update-triggered fallback land on exactly the
    /// factorization a cold fit of the same data would produce.
    fn refactorize(&mut self) -> Result<()> {
        // Chaos site: simulate the *complete* exhaustion of the jitter
        // ladder. Injecting per-rung instead would change which jitter the
        // surviving factorization uses — and therefore the numbers — so the
        // fault models only the terminal outcome.
        if alic_stats::fault::inject(alic_stats::fault::FaultSite::JitterExhaustion) {
            return Err(ModelError::Numerical(format!(
                "chaos: injected jitter-ladder exhaustion after {MAX_JITTER_ATTEMPTS} escalations"
            )));
        }
        let n = self.ys.len();
        self.refactorizations += 1;
        let mut jitter = self.base_jitter();
        for _ in 0..MAX_JITTER_ATTEMPTS {
            let mut packed = self.kernel_rows.clone();
            for i in 0..n {
                packed[i * (i + 1) / 2 + i] += jitter;
            }
            match Cholesky::decompose_packed(n, packed) {
                Ok(chol) => {
                    self.chol = Some(chol);
                    self.jitter = jitter;
                    return Ok(());
                }
                Err(_) => jitter *= 10.0,
            }
        }
        Err(ModelError::Numerical(format!(
            "kernel matrix not positive definite after {MAX_JITTER_ATTEMPTS} jitter escalations"
        )))
    }

    /// Recomputes the constant mean and `α = K⁻¹ (y − μ)` from the live
    /// factor — `O(n)` for the mean, `O(n²)` for the two triangular solves.
    fn resolve_weights(&mut self) -> Result<()> {
        let n = self.ys.len();
        self.mean = self.ys.iter().sum::<f64>() / n as f64;
        let centred: Vec<f64> = self.ys.iter().map(|y| y - self.mean).collect();
        self.alpha = self
            .chol
            .as_ref()
            .expect("factorization exists when weights are resolved")
            .solve(&centred)
            .map_err(|e| ModelError::Numerical(e.to_string()))?;
        Ok(())
    }

    fn check_dimension(&self, x: &[f64]) -> Result<()> {
        match self.dimension {
            None => Err(ModelError::NotFitted),
            Some(d) if d == x.len() => Ok(()),
            Some(d) => Err(ModelError::DimensionMismatch {
                expected: d,
                actual: x.len(),
            }),
        }
    }

    /// Predicts a block of query rows: kernel vectors for the whole block,
    /// means against `α`, then one blocked triangular solve for the
    /// variances. `predict` routes through this with a block of one, so
    /// single-point and batched predictions are bit-identical.
    fn predict_block(&self, inputs: &[&[f64]], chol: &Cholesky) -> Vec<Prediction> {
        let n = self.ys.len();
        let mut k_star = vec![0.0; inputs.len() * n];
        let mut means = Vec::with_capacity(inputs.len());
        for (row, x) in k_star.chunks_exact_mut(n).zip(inputs) {
            for (k, xi) in row.iter_mut().zip(self.xs.rows()) {
                *k = self.kernel(xi, x);
            }
            let weighted: f64 = row.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
            means.push(self.mean + weighted);
        }
        chol.forward_substitute_batch(&mut k_star, inputs.len())
            .expect("block shape matches the factorization by construction");
        k_star
            .chunks_exact(n)
            .zip(means)
            .map(|(v, mean)| {
                let explained: f64 = v.iter().map(|vi| vi * vi).sum();
                let variance =
                    (self.signal_variance + self.config.noise_variance - explained).max(0.0);
                Prediction::new(mean, variance)
            })
            .collect()
    }
}

/// Median pairwise distance over sub-sampled row pairs — the lengthscale
/// heuristic. A property of the data's scale, not of `n`: it is computed
/// once at fit time and reused unchanged by every incremental update. The
/// sparse variant ([`crate::sgp`]) shares it so both families resolve the
/// same hyper-parameters from the same data.
pub(crate) fn median_pairwise_distance(xs: &FeatureMatrix) -> f64 {
    let n = xs.len();
    let mut distances = Vec::new();
    // Sub-sample pairs for large training sets to keep this O(n) in practice.
    let stride = (n / 64).max(1);
    for i in (0..n).step_by(stride) {
        for j in ((i + 1)..n).step_by(stride) {
            let d2 = squared_distance(xs.row(i), xs.row(j)).expect("consistent dimensions");
            if d2 > 0.0 {
                distances.push(d2.sqrt());
            }
        }
    }
    if distances.is_empty() {
        return 1.0;
    }
    distances.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    distances[distances.len() / 2]
}

impl SurrogateModel for GaussianProcess {
    fn fit(&mut self, xs: &[&[f64]], ys: &[f64]) -> Result<()> {
        let dim = validate_training_set(xs, ys)?;
        self.dimension = Some(dim);
        self.xs = FeatureMatrix::with_capacity(dim, xs.len());
        for x in xs {
            self.xs.push_row(x);
        }
        self.ys = ys.to_vec();
        let n = ys.len();

        // Hyper-parameters: data-scale heuristics, computed once and frozen.
        let mean = ys.iter().sum::<f64>() / n as f64;
        self.lengthscale = match self.config.lengthscale {
            Some(lengthscale) => lengthscale,
            None => median_pairwise_distance(&self.xs).max(1e-6),
        };
        self.signal_variance = match self.config.signal_variance {
            Some(signal_variance) => signal_variance,
            None => {
                let var = ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / n as f64;
                var.max(1e-10)
            }
        };

        // Train-side kernel rows, packed lower-triangular, evaluated exactly
        // once per pair.
        self.kernel_rows.clear();
        self.kernel_rows.reserve(n * (n + 1) / 2);
        for i in 0..n {
            let xi = self.xs.row(i);
            for j in 0..=i {
                self.kernel_rows.push(self.kernel(xi, self.xs.row(j)));
            }
        }

        self.refactorizations = 0;
        // Invalidate the factor of any previous fit first: if the ladder
        // fails, the model must read as unfitted instead of pairing the new
        // training data with a stale factorization.
        self.chol = None;
        self.refactorize().map_err(|e| {
            ModelError::Numerical(format!("kernel matrix decomposition failed: {e}"))
        })?;
        self.resolve_weights()
    }

    fn update(&mut self, x: &[f64], y: f64) -> Result<()> {
        self.check_dimension(x)?;
        crate::validate_observation(x, y)?;
        if self.chol.is_none() {
            return Err(ModelError::NotFitted);
        }
        let n = self.ys.len();
        // Extend the kernel-row cache with the new row (no jitter stored).
        for i in 0..n {
            self.kernel_rows.push(self.kernel(x, self.xs.row(i)));
        }
        self.kernel_rows.push(self.signal_variance);
        self.xs.push_row(x);
        self.ys.push(y);

        // The O(n²) common path: rank-1 extension of the live factor. The
        // appended diagonal carries the jitter of the current factorization,
        // so the grown factor matches a cold factorization bit for bit.
        let appended = {
            let chol = self.chol.as_mut().expect("presence checked above");
            let start = self.kernel_rows.len() - (n + 1);
            let mut row = self.kernel_rows[start..].to_vec();
            row[n] += self.jitter;
            chol.append_row(&row).is_ok()
        };
        if !appended {
            // The Schur complement went non-positive: fall back to a full
            // refactorization with the escalating jitter ladder. Should even
            // the ladder fail, roll the observation back so the model stays
            // consistent (the untouched factor still matches n points).
            if let Err(e) = self.refactorize() {
                self.kernel_rows.truncate(n * (n + 1) / 2);
                self.xs.truncate(n);
                self.ys.truncate(n);
                return Err(e);
            }
        }
        self.resolve_weights()
    }

    fn predict(&self, x: &[f64]) -> Result<Prediction> {
        self.check_dimension(x)?;
        let chol = self.chol.as_ref().ok_or(ModelError::NotFitted)?;
        Ok(self.predict_block(&[x], chol)[0])
    }

    fn predict_batch(&self, inputs: &[&[f64]]) -> Result<Vec<Prediction>> {
        for x in inputs {
            self.check_dimension(x)?;
        }
        let chol = self.chol.as_ref().ok_or(ModelError::NotFitted)?;
        // Blocks are independent and internally ordered, so parallel
        // evaluation with in-order collection is bit-deterministic.
        let blocks: Vec<&[&[f64]]> = inputs.chunks(PREDICT_BLOCK).collect();
        let scored: Vec<Vec<Prediction>> = blocks
            .into_par_iter()
            .map(|block| self.predict_block(block, chol))
            .collect();
        Ok(scored.into_iter().flatten().collect())
    }

    fn observation_count(&self) -> usize {
        self.ys.len()
    }

    fn dimension(&self) -> Option<usize> {
        self.dimension
    }

    fn snapshot(&self) -> Result<Snapshot> {
        let mut fields = snapshot::header("gp");
        fields.extend([
            (
                "config_lengthscale".to_string(),
                snapshot::opt_hex_f64(self.config.lengthscale),
            ),
            (
                "config_signal_variance".to_string(),
                snapshot::opt_hex_f64(self.config.signal_variance),
            ),
            (
                "config_noise_variance".to_string(),
                snapshot::hex_f64(self.config.noise_variance),
            ),
            ("xs_dim".to_string(), snapshot::num(self.xs.dim())),
            (
                "xs".to_string(),
                snapshot::hex_f64s(self.xs.rows().flatten().copied()),
            ),
            (
                "ys".to_string(),
                snapshot::hex_f64s(self.ys.iter().copied()),
            ),
            ("mean".to_string(), snapshot::hex_f64(self.mean)),
            (
                "lengthscale".to_string(),
                snapshot::hex_f64(self.lengthscale),
            ),
            (
                "signal_variance".to_string(),
                snapshot::hex_f64(self.signal_variance),
            ),
            ("jitter".to_string(), snapshot::hex_f64(self.jitter)),
            (
                "kernel_rows".to_string(),
                snapshot::hex_f64s(self.kernel_rows.iter().copied()),
            ),
            (
                "chol".to_string(),
                match &self.chol {
                    None => JsonValue::Null,
                    Some(chol) => snapshot::hex_f64s(chol.packed().iter().copied()),
                },
            ),
            (
                "alpha".to_string(),
                snapshot::hex_f64s(self.alpha.iter().copied()),
            ),
            (
                "dimension".to_string(),
                match self.dimension {
                    None => JsonValue::Null,
                    Some(d) => snapshot::num(d),
                },
            ),
            (
                "refactorizations".to_string(),
                snapshot::num(self.refactorizations),
            ),
        ]);
        Ok(JsonValue::Object(fields))
    }
}

impl ActiveSurrogate for GaussianProcess {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row_views;

    fn sine_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points_closely() {
        let (xs, ys) = sine_data(25);
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&row_views(&xs), &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let p = gp.predict(x).unwrap();
            assert!((p.mean - y).abs() < 0.05, "at {x:?}: {} vs {y}", p.mean);
        }
    }

    #[test]
    fn predicts_between_training_points() {
        let (xs, ys) = sine_data(30);
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&row_views(&xs), &ys).unwrap();
        let p = gp.predict(&[0.5]).unwrap();
        assert!((p.mean - (1.5f64).sin()).abs() < 0.05);
    }

    #[test]
    fn variance_grows_away_from_data() {
        let (xs, ys) = sine_data(15);
        let mut gp = GaussianProcess::new(GpConfig {
            lengthscale: Some(0.1),
            ..Default::default()
        });
        gp.fit(&row_views(&xs), &ys).unwrap();
        let near = gp.predict(&[0.5]).unwrap().variance;
        let far = gp.predict(&[3.0]).unwrap().variance;
        assert!(far > near);
        assert!((far - (gp.signal_variance + gp.config.noise_variance)).abs() < 1e-6);
    }

    #[test]
    fn update_refits_and_improves_locally() {
        let (xs, ys) = sine_data(10);
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&row_views(&xs), &ys).unwrap();
        let target = 2.0; // deliberately off the sine curve
        for _ in 0..5 {
            gp.update(&[2.0], target).unwrap();
        }
        let p = gp.predict(&[2.0]).unwrap();
        assert!((p.mean - target).abs() < 0.2);
        assert_eq!(gp.observation_count(), 15);
    }

    #[test]
    fn updates_stay_on_the_rank1_path() {
        // Well-spread data must never trip the fallback: exactly one full
        // factorization (the fit), all 50 updates via rank-1 appends.
        let (xs, ys) = sine_data(20);
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&row_views(&xs), &ys).unwrap();
        assert_eq!(gp.refactorizations(), 1);
        for i in 0..50 {
            let x = 1.1 + i as f64 * 0.013;
            gp.update(&[x], (3.0 * x).sin()).unwrap();
        }
        assert_eq!(
            gp.refactorizations(),
            1,
            "incremental updates must not refactorize"
        );
        assert_eq!(gp.observation_count(), 70);
    }

    #[test]
    fn incremental_updates_match_cold_refit_exactly() {
        let (xs, ys) = sine_data(30);
        let mut incremental = GaussianProcess::with_defaults();
        incremental.fit(&row_views(&xs[..20]), &ys[..20]).unwrap();
        for (x, &y) in xs[20..].iter().zip(&ys[20..]) {
            incremental.update(x, y).unwrap();
        }
        // Cold model with the incremental model's frozen hyper-parameters.
        let mut cold = GaussianProcess::new(GpConfig {
            lengthscale: Some(incremental.lengthscale()),
            signal_variance: Some(incremental.signal_variance()),
            noise_variance: incremental.config.noise_variance,
        });
        cold.fit(&row_views(&xs), &ys).unwrap();
        for q in [0.03, 0.4, 0.77, 1.4] {
            let a = incremental.predict(&[q]).unwrap();
            let b = cold.predict(&[q]).unwrap();
            assert_eq!(a, b, "at {q}: incremental {a:?} vs cold {b:?}");
        }
    }

    #[test]
    fn fallback_ladder_recovers_from_an_indefinite_append() {
        let (xs, ys) = sine_data(12);
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&row_views(&xs), &ys).unwrap();
        // Force the rank-1 append to fail deterministically: a negative
        // jitter on the appended diagonal drives the Schur complement of a
        // duplicated training point below zero, simulating the numerically
        // indefinite case the fallback exists for.
        gp.jitter = -gp.signal_variance();
        let duplicate = xs[4].clone();
        gp.update(&duplicate, ys[4]).unwrap();
        assert_eq!(
            gp.refactorizations(),
            2,
            "the failed append must trigger exactly one fallback refactorization"
        );
        assert!(gp.jitter() >= gp.base_jitter());
        let p = gp.predict(&duplicate).unwrap();
        assert!((p.mean - ys[4]).abs() < 0.05);
    }

    #[test]
    fn errors_before_fit_and_on_bad_input() {
        let gp = GaussianProcess::with_defaults();
        assert_eq!(gp.predict(&[0.0]).unwrap_err(), ModelError::NotFitted);
        let (xs, ys) = sine_data(5);
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&row_views(&xs), &ys).unwrap();
        assert!(matches!(
            gp.predict(&[0.0, 1.0]),
            Err(ModelError::DimensionMismatch { .. })
        ));
        assert_eq!(
            gp.update(&[0.1], f64::INFINITY).unwrap_err(),
            ModelError::NonFiniteInput
        );
    }

    #[test]
    fn duplicate_inputs_do_not_break_the_decomposition() {
        let xs = vec![vec![0.5]; 12];
        let ys = vec![1.0; 12];
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&row_views(&xs), &ys).unwrap();
        let p = gp.predict(&[0.5]).unwrap();
        assert!((p.mean - 1.0).abs() < 1e-3);
    }

    #[test]
    fn alm_score_equals_predictive_variance() {
        let (xs, ys) = sine_data(12);
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&row_views(&xs), &ys).unwrap();
        let p = gp.predict(&[0.3]).unwrap();
        assert_eq!(gp.alm_score(&[0.3]).unwrap(), p.variance);
    }

    #[test]
    fn predict_batch_is_bit_identical_to_predict() {
        let (xs, ys) = sine_data(40);
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&row_views(&xs), &ys).unwrap();
        let queries: Vec<Vec<f64>> = (0..150).map(|i| vec![i as f64 / 149.0]).collect();
        let views = row_views(&queries);
        let batch = gp.predict_batch(&views).unwrap();
        for (x, p) in views.iter().zip(&batch) {
            assert_eq!(*p, gp.predict(x).unwrap());
        }
    }

    #[test]
    fn fixed_hyperparameters_are_respected() {
        let (xs, ys) = sine_data(10);
        let mut gp = GaussianProcess::new(GpConfig {
            lengthscale: Some(0.42),
            signal_variance: Some(2.0),
            noise_variance: 1e-3,
        });
        gp.fit(&row_views(&xs), &ys).unwrap();
        assert_eq!(gp.lengthscale(), 0.42);
        assert_eq!(gp.signal_variance(), 2.0);
    }
}
