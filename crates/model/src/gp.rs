//! Gaussian-process regression.
//!
//! The paper notes (§3.2) that the "collective wisdom" choice for regression
//! with uncertainty is a Gaussian Process, but that its `O(n³)` inference is
//! too slow for an active-learning loop that refits after every observation.
//! This implementation exists (a) as a quality reference for the dynamic
//! tree, (b) to let the benchmark suite quantify exactly that cost gap, and
//! (c) as an alternative surrogate for small problems.
//!
//! The kernel is a squared-exponential (RBF) with a constant mean function
//! and a noise nugget; hyper-parameters are set by simple data-driven
//! heuristics (median-distance lengthscale) rather than marginal-likelihood
//! optimization, which is sufficient for the workloads in this workspace.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use alic_stats::cholesky::Cholesky;
use alic_stats::matrix::{squared_distance, Matrix};

use crate::traits::{ActiveSurrogate, Prediction, SurrogateModel};
use crate::{validate_training_set, ModelError, Result};

/// Hyper-parameters of the squared-exponential Gaussian process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpConfig {
    /// Kernel lengthscale. `None` selects the median pairwise distance of the
    /// training inputs at fit time.
    pub lengthscale: Option<f64>,
    /// Signal variance (vertical scale). `None` selects the training-target
    /// variance at fit time.
    pub signal_variance: Option<f64>,
    /// Observation-noise variance added to the kernel diagonal.
    pub noise_variance: f64,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            lengthscale: None,
            signal_variance: None,
            noise_variance: 1e-4,
        }
    }
}

/// Squared-exponential Gaussian-process regressor.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    config: GpConfig,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    mean: f64,
    lengthscale: f64,
    signal_variance: f64,
    chol: Option<Cholesky>,
    alpha: Vec<f64>,
    dimension: Option<usize>,
}

impl GaussianProcess {
    /// Creates an unfitted Gaussian process with the given configuration.
    pub fn new(config: GpConfig) -> Self {
        GaussianProcess {
            config,
            xs: Vec::new(),
            ys: Vec::new(),
            mean: 0.0,
            lengthscale: 1.0,
            signal_variance: 1.0,
            chol: None,
            alpha: Vec::new(),
            dimension: None,
        }
    }

    /// Creates an unfitted Gaussian process with default configuration.
    pub fn with_defaults() -> Self {
        GaussianProcess::new(GpConfig::default())
    }

    /// The lengthscale actually in use after fitting.
    pub fn lengthscale(&self) -> f64 {
        self.lengthscale
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2 = squared_distance(a, b).expect("dimension already validated");
        self.signal_variance * (-0.5 * d2 / (self.lengthscale * self.lengthscale)).exp()
    }

    fn refit(&mut self) -> Result<()> {
        let n = self.ys.len();
        self.mean = self.ys.iter().sum::<f64>() / n as f64;
        self.lengthscale = match self.config.lengthscale {
            Some(lengthscale) => lengthscale,
            None => median_pairwise_distance(&self.xs).max(1e-6),
        };
        self.signal_variance = match self.config.signal_variance {
            Some(signal_variance) => signal_variance,
            None => {
                let var = self
                    .ys
                    .iter()
                    .map(|y| (y - self.mean) * (y - self.mean))
                    .sum::<f64>()
                    / n as f64;
                var.max(1e-10)
            }
        };
        let mut k = Matrix::from_fn(n, n, |i, j| self.kernel(&self.xs[i], &self.xs[j]));
        k.add_diagonal(self.config.noise_variance.max(1e-10) + 1e-8 * self.signal_variance);
        let chol = Cholesky::decompose(&k).map_err(|e| {
            ModelError::Numerical(format!("kernel matrix decomposition failed: {e}"))
        })?;
        let centred: Vec<f64> = self.ys.iter().map(|y| y - self.mean).collect();
        self.alpha = chol
            .solve(&centred)
            .map_err(|e| ModelError::Numerical(e.to_string()))?;
        self.chol = Some(chol);
        Ok(())
    }

    fn check_dimension(&self, x: &[f64]) -> Result<()> {
        match self.dimension {
            None => Err(ModelError::NotFitted),
            Some(d) if d == x.len() => Ok(()),
            Some(d) => Err(ModelError::DimensionMismatch {
                expected: d,
                actual: x.len(),
            }),
        }
    }
}

fn median_pairwise_distance(xs: &[Vec<f64>]) -> f64 {
    let mut distances = Vec::new();
    // Sub-sample pairs for large training sets to keep this O(n) in practice.
    let stride = (xs.len() / 64).max(1);
    for i in (0..xs.len()).step_by(stride) {
        for j in ((i + 1)..xs.len()).step_by(stride) {
            let d2 = squared_distance(&xs[i], &xs[j]).expect("consistent dimensions");
            if d2 > 0.0 {
                distances.push(d2.sqrt());
            }
        }
    }
    if distances.is_empty() {
        return 1.0;
    }
    distances.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    distances[distances.len() / 2]
}

impl SurrogateModel for GaussianProcess {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) -> Result<()> {
        let dim = validate_training_set(xs, ys)?;
        self.dimension = Some(dim);
        self.xs = xs.to_vec();
        self.ys = ys.to_vec();
        self.refit()
    }

    fn update(&mut self, x: &[f64], y: f64) -> Result<()> {
        self.check_dimension(x)?;
        if !y.is_finite() || x.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::NonFiniteInput);
        }
        self.xs.push(x.to_vec());
        self.ys.push(y);
        // The O(n³) refit the paper complains about.
        self.refit()
    }

    fn predict(&self, x: &[f64]) -> Result<Prediction> {
        self.check_dimension(x)?;
        let chol = self.chol.as_ref().ok_or(ModelError::NotFitted)?;
        let k_star: Vec<f64> = self.xs.iter().map(|xi| self.kernel(xi, x)).collect();
        let mean = self.mean
            + k_star
                .iter()
                .zip(&self.alpha)
                .map(|(k, a)| k * a)
                .sum::<f64>();
        let v = chol
            .forward_substitute(&k_star)
            .map_err(|e| ModelError::Numerical(e.to_string()))?;
        let explained: f64 = v.iter().map(|vi| vi * vi).sum();
        let variance = (self.signal_variance + self.config.noise_variance - explained).max(0.0);
        Ok(Prediction::new(mean, variance))
    }

    fn predict_batch(&self, inputs: &[&[f64]]) -> Result<Vec<Prediction>> {
        // One kernel-vector solve per input; the rows are independent, so
        // they are evaluated in parallel with order-preserving write-back.
        inputs.par_iter().map(|x| self.predict(x)).collect()
    }

    fn observation_count(&self) -> usize {
        self.ys.len()
    }

    fn dimension(&self) -> Option<usize> {
        self.dimension
    }
}

impl ActiveSurrogate for GaussianProcess {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points_closely() {
        let (xs, ys) = sine_data(25);
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let p = gp.predict(x).unwrap();
            assert!((p.mean - y).abs() < 0.05, "at {x:?}: {} vs {y}", p.mean);
        }
    }

    #[test]
    fn predicts_between_training_points() {
        let (xs, ys) = sine_data(30);
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&xs, &ys).unwrap();
        let p = gp.predict(&[0.5]).unwrap();
        assert!((p.mean - (1.5f64).sin()).abs() < 0.05);
    }

    #[test]
    fn variance_grows_away_from_data() {
        let (xs, ys) = sine_data(15);
        let mut gp = GaussianProcess::new(GpConfig {
            lengthscale: Some(0.1),
            ..Default::default()
        });
        gp.fit(&xs, &ys).unwrap();
        let near = gp.predict(&[0.5]).unwrap().variance;
        let far = gp.predict(&[3.0]).unwrap().variance;
        assert!(far > near);
        assert!((far - (gp.signal_variance + gp.config.noise_variance)).abs() < 1e-6);
    }

    #[test]
    fn update_refits_and_improves_locally() {
        let (xs, ys) = sine_data(10);
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&xs, &ys).unwrap();
        let target = 2.0; // deliberately off the sine curve
        for _ in 0..5 {
            gp.update(&[2.0], target).unwrap();
        }
        let p = gp.predict(&[2.0]).unwrap();
        assert!((p.mean - target).abs() < 0.2);
        assert_eq!(gp.observation_count(), 15);
    }

    #[test]
    fn errors_before_fit_and_on_bad_input() {
        let gp = GaussianProcess::with_defaults();
        assert_eq!(gp.predict(&[0.0]).unwrap_err(), ModelError::NotFitted);
        let (xs, ys) = sine_data(5);
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&xs, &ys).unwrap();
        assert!(matches!(
            gp.predict(&[0.0, 1.0]),
            Err(ModelError::DimensionMismatch { .. })
        ));
        assert_eq!(
            gp.update(&[0.1], f64::INFINITY).unwrap_err(),
            ModelError::NonFiniteInput
        );
    }

    #[test]
    fn duplicate_inputs_do_not_break_the_decomposition() {
        let xs = vec![vec![0.5]; 12];
        let ys = vec![1.0; 12];
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&xs, &ys).unwrap();
        let p = gp.predict(&[0.5]).unwrap();
        assert!((p.mean - 1.0).abs() < 1e-3);
    }

    #[test]
    fn alm_score_equals_predictive_variance() {
        let (xs, ys) = sine_data(12);
        let mut gp = GaussianProcess::with_defaults();
        gp.fit(&xs, &ys).unwrap();
        let p = gp.predict(&[0.3]).unwrap();
        assert_eq!(gp.alm_score(&[0.3]).unwrap(), p.variance);
    }

    #[test]
    fn fixed_hyperparameters_are_respected() {
        let (xs, ys) = sine_data(10);
        let mut gp = GaussianProcess::new(GpConfig {
            lengthscale: Some(0.42),
            signal_variance: Some(2.0),
            noise_variance: 1e-3,
        });
        gp.fit(&xs, &ys).unwrap();
        assert_eq!(gp.lengthscale(), 0.42);
    }
}
