//! Low-rank sparse Gaussian process for very large candidate pools.
//!
//! The dense [`GaussianProcess`](crate::gp::GaussianProcess) pays `O(n³)`
//! per fit and `O(n²)` per update/predict — the exact cost the paper rejects
//! for an active-learning loop (§3.2), and the reason the benchmark suite
//! caps its dense workloads around a thousand points. This module implements
//! the standard inducing-point (DTC / projected-process) approximation so a
//! GP-family surrogate stays usable on 50k–100k-point pools:
//!
//! * **`O(n·m²)` fit, `O(m²)` update, `O(m²)` predict** for `m` inducing
//!   points (`m ≪ n`, default 128), with `O(m²)` state — the training set
//!   itself is not retained after fitting;
//! * the same squared-exponential kernel, data-driven hyper-parameter
//!   heuristics, and determinism contract as the dense GP;
//! * **exactness at `m = n`**: with the inducing set equal to the training
//!   set, DTC's predictive mean *and* variance reduce algebraically to the
//!   dense GP posterior (push-through identity), which the root test suite
//!   checks numerically.
//!
//! # Formulation
//!
//! Fix `m` inducing inputs `Z` (an evenly-strided subset of the training
//! inputs, frozen at fit time) and let `Lm Lmᵀ = K_ZZ + εI`. Working in the
//! *whitened feature* `ψ(x) = Lm⁻¹ k_Z(x)` (so the prior feature covariance
//! is the identity), the DTC posterior over feature weights has precision
//! `P = I + σ⁻² Σᵢ ψ(xᵢ) ψ(xᵢ)ᵀ` and mean `ŵ = P⁻¹ σ⁻² Σᵢ ψ(xᵢ)(yᵢ − μ)`:
//!
//! * **fit** accumulates `ΨᵀΨ`, `u = Σ ψᵢ yᵢ` and `s = Σ ψᵢ` in one parallel
//!   pass over the training rows (blocks reduced in fixed order, so results
//!   are bit-identical for any thread count) and factorizes `P` once —
//!   `O(n·m²)` total;
//! * **update** is a rank-1 Cholesky update of `P`'s factor
//!   ([`Cholesky::rank_one_update`] with `σ⁻¹ψ`; a rank-1 *addition*, so the
//!   factor stays positive definite by construction — no jitter ladder on
//!   the update path) plus `O(m)` vector bookkeeping — `O(m²)`, independent
//!   of how many observations came before;
//! * **predict** is `mean = μ + ψ*ᵀŵ` and
//!   `var = k** − ‖ψ*‖² + ‖Lp⁻¹ψ*‖² + σ²` — the prior minus what the
//!   inducing set explains, plus back what the finite data cannot pin down.
//!   Since `P ⪰ I`, the correction never exceeds `‖ψ*‖²`, so the variance
//!   is bounded by the prior `k** + σ²` and non-negative up to rounding.
//!
//! Batched prediction pushes whole query blocks through
//! [`Cholesky::forward_substitute_batch`] twice (once against `Lm` for the
//! features, once against `Lp` for the variance correction) and scores
//! blocks in parallel with by-index write-back — bit-identical to the
//! single-point path regardless of thread count, like every other model in
//! this crate.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use alic_stats::cholesky::Cholesky;
use alic_stats::matrix::squared_distance;
use alic_stats::FeatureMatrix;

use alic_data::io::JsonValue;

use crate::gp::median_pairwise_distance;
use crate::snapshot::{self, Snapshot};
use crate::traits::{ActiveSurrogate, Prediction, SurrogateModel};
use crate::{validate_training_set, ModelError, Result};

/// Query rows per parallel prediction block (scheduling granularity only;
/// results are block-size-independent).
const PREDICT_BLOCK: usize = 64;

/// Training rows per parallel fit block. Blocks are reduced serially in
/// block order, so the accumulated sums are bit-identical for any thread
/// count and any block count.
const FIT_BLOCK: usize = 256;

/// Inducing-kernel jitter ladder: 10× escalation, at most this many
/// attempts.
const MAX_JITTER_ATTEMPTS: u32 = 8;

/// Hyper-parameters of the sparse (inducing-point) Gaussian process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparseGpConfig {
    /// Number of inducing points `m` (clamped to the training-set size at
    /// fit time). Fit cost grows as `O(n·m²)`, update and predict as
    /// `O(m²)`.
    pub inducing: usize,
    /// Kernel lengthscale. `None` selects the median pairwise distance of
    /// the training inputs at fit time (the dense GP's heuristic).
    pub lengthscale: Option<f64>,
    /// Signal variance (vertical scale). `None` selects the training-target
    /// variance at fit time.
    pub signal_variance: Option<f64>,
    /// Observation-noise variance `σ²`.
    pub noise_variance: f64,
}

impl Default for SparseGpConfig {
    fn default() -> Self {
        SparseGpConfig {
            inducing: 128,
            lengthscale: None,
            signal_variance: None,
            noise_variance: 1e-4,
        }
    }
}

/// Inducing-point sparse Gaussian process: `O(n·m²)` fit, `O(m²)` update
/// and predict, `O(m²)` state.
#[derive(Debug, Clone)]
pub struct SparseGaussianProcess {
    config: SparseGpConfig,
    /// The `m` inducing inputs, frozen at fit time.
    inducing: FeatureMatrix,
    /// Factor of `K_ZZ + εI` (the feature whitener).
    lm: Option<Cholesky>,
    /// Factor of the weight precision `P = I + σ⁻² ΨᵀΨ`.
    lp: Option<Cholesky>,
    /// `u = Σ ψ(xᵢ) yᵢ`.
    u: Vec<f64>,
    /// `s = Σ ψ(xᵢ)`.
    s: Vec<f64>,
    /// Posterior feature weights `ŵ = P⁻¹ σ⁻² (u − μ s)`.
    weights: Vec<f64>,
    mean: f64,
    y_sum: f64,
    count: usize,
    lengthscale: f64,
    signal_variance: f64,
    /// Jitter on the inducing kernel's diagonal (base value, possibly
    /// escalated by the fit-time ladder).
    kmm_jitter: f64,
    dimension: Option<usize>,
}

impl SparseGaussianProcess {
    /// Creates an unfitted sparse Gaussian process with the given
    /// configuration.
    pub fn new(config: SparseGpConfig) -> Self {
        SparseGaussianProcess {
            config,
            inducing: FeatureMatrix::new(1),
            lm: None,
            lp: None,
            u: Vec::new(),
            s: Vec::new(),
            weights: Vec::new(),
            mean: 0.0,
            y_sum: 0.0,
            count: 0,
            lengthscale: 1.0,
            signal_variance: 1.0,
            kmm_jitter: 0.0,
            dimension: None,
        }
    }

    /// Creates an unfitted sparse Gaussian process with default
    /// configuration.
    pub fn with_defaults() -> Self {
        SparseGaussianProcess::new(SparseGpConfig::default())
    }

    /// Number of inducing points actually in use after fitting.
    pub fn inducing_count(&self) -> usize {
        self.inducing.len()
    }

    /// Rebuilds a sparse process from a [`SurrogateModel::snapshot`]
    /// document; both packed factors are restored verbatim (never
    /// re-factorized), so the restored model predicts bit-identically.
    pub(crate) fn from_snapshot(doc: &JsonValue) -> Result<Self> {
        let config = SparseGpConfig {
            inducing: snapshot::get_usize(doc, "config_inducing")?,
            lengthscale: snapshot::get_opt_hex_f64(doc, "config_lengthscale")?,
            signal_variance: snapshot::get_opt_hex_f64(doc, "config_signal_variance")?,
            noise_variance: snapshot::get_hex_f64(doc, "config_noise_variance")?,
        };
        let dim = snapshot::get_usize(doc, "inducing_dim")?.max(1);
        let flat = snapshot::get_hex_f64s(doc, "inducing")?;
        if flat.len() % dim != 0 {
            return Err(snapshot::err(
                "field inducing: length is not a multiple of dim",
            ));
        }
        let mut inducing = FeatureMatrix::with_capacity(dim, flat.len() / dim);
        for row in flat.chunks_exact(dim) {
            inducing.push_row(row);
        }
        let m = inducing.len();
        let factor = |name: &str| -> Result<Option<Cholesky>> {
            match snapshot::get(doc, name)? {
                JsonValue::Null => Ok(None),
                packed => {
                    let data = snapshot::decode_hex_f64s(
                        name,
                        packed
                            .as_str()
                            .map_err(|e| snapshot::err(format!("field {name}: {e}")))?,
                    )?;
                    Cholesky::from_packed_factor(m, data)
                        .map(Some)
                        .map_err(|e| snapshot::err(format!("field {name}: {e}")))
                }
            }
        };
        let dimension = match snapshot::get(doc, "dimension")? {
            JsonValue::Null => None,
            _ => Some(snapshot::get_usize(doc, "dimension")?),
        };
        Ok(SparseGaussianProcess {
            config,
            lm: factor("lm")?,
            lp: factor("lp")?,
            inducing,
            u: snapshot::get_hex_f64s(doc, "u")?,
            s: snapshot::get_hex_f64s(doc, "s")?,
            weights: snapshot::get_hex_f64s(doc, "weights")?,
            mean: snapshot::get_hex_f64(doc, "mean")?,
            y_sum: snapshot::get_hex_f64(doc, "y_sum")?,
            count: snapshot::get_usize(doc, "count")?,
            lengthscale: snapshot::get_hex_f64(doc, "lengthscale")?,
            signal_variance: snapshot::get_hex_f64(doc, "signal_variance")?,
            kmm_jitter: snapshot::get_hex_f64(doc, "kmm_jitter")?,
            dimension,
        })
    }

    /// The lengthscale actually in use after fitting.
    pub fn lengthscale(&self) -> f64 {
        self.lengthscale
    }

    /// The signal variance actually in use after fitting.
    pub fn signal_variance(&self) -> f64 {
        self.signal_variance
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2 = squared_distance(a, b).expect("dimension already validated");
        self.signal_variance * (-0.5 * d2 / (self.lengthscale * self.lengthscale)).exp()
    }

    /// Observation-noise variance, floored away from zero so `σ⁻²` stays
    /// finite.
    fn noise(&self) -> f64 {
        self.config.noise_variance.max(1e-10)
    }

    fn base_jitter(&self) -> f64 {
        self.config.noise_variance.max(1e-10) + 1e-8 * self.signal_variance
    }

    /// Kernel vector `k_Z(x)` against the inducing inputs.
    fn inducing_kernel_row(&self, x: &[f64], out: &mut [f64]) {
        for (k, z) in out.iter_mut().zip(self.inducing.rows()) {
            *k = self.kernel(z, x);
        }
    }

    /// Whitened feature `ψ(x) = Lm⁻¹ k_Z(x)`.
    fn feature(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut k = vec![0.0; self.inducing.len()];
        self.inducing_kernel_row(x, &mut k);
        self.lm
            .as_ref()
            .ok_or(ModelError::NotFitted)?
            .forward_substitute(&k)
            .map_err(|e| ModelError::Numerical(e.to_string()))
    }

    /// Recomputes `ŵ = P⁻¹ σ⁻² (u − μ s)` from the live factor — two `O(m²)`
    /// triangular solves.
    fn resolve_weights(&mut self) -> Result<()> {
        let inv_noise = 1.0 / self.noise();
        let rhs: Vec<f64> = self
            .u
            .iter()
            .zip(&self.s)
            .map(|(&u, &s)| inv_noise * (u - self.mean * s))
            .collect();
        self.weights = self
            .lp
            .as_ref()
            .expect("precision factor exists when weights are resolved")
            .solve(&rhs)
            .map_err(|e| ModelError::Numerical(e.to_string()))?;
        Ok(())
    }

    fn check_dimension(&self, x: &[f64]) -> Result<()> {
        match self.dimension {
            None => Err(ModelError::NotFitted),
            Some(d) if d == x.len() => Ok(()),
            Some(d) => Err(ModelError::DimensionMismatch {
                expected: d,
                actual: x.len(),
            }),
        }
    }

    /// Predicts a block of query rows: whitened features for the whole block
    /// via one batched solve against `Lm`, means against `ŵ`, then a second
    /// batched solve against `Lp` for the variance correction. `predict`
    /// routes through this with a block of one, so single-point and batched
    /// predictions are bit-identical.
    fn predict_block(&self, inputs: &[&[f64]], lm: &Cholesky, lp: &Cholesky) -> Vec<Prediction> {
        let m = self.inducing.len();
        let mut psi = vec![0.0; inputs.len() * m];
        for (row, x) in psi.chunks_exact_mut(m).zip(inputs) {
            self.inducing_kernel_row(x, row);
        }
        lm.forward_substitute_batch(&mut psi, inputs.len())
            .expect("block shape matches the whitener by construction");
        // Means and the prior-explained norms must be read before the second
        // solve overwrites the features in place.
        let mut means = Vec::with_capacity(inputs.len());
        let mut explained = Vec::with_capacity(inputs.len());
        for row in psi.chunks_exact(m) {
            let weighted: f64 = row.iter().zip(&self.weights).map(|(p, w)| p * w).sum();
            means.push(self.mean + weighted);
            explained.push(row.iter().map(|p| p * p).sum::<f64>());
        }
        lp.forward_substitute_batch(&mut psi, inputs.len())
            .expect("block shape matches the precision factor by construction");
        psi.chunks_exact(m)
            .zip(means)
            .zip(explained)
            .map(|((v, mean), explained)| {
                let recovered: f64 = v.iter().map(|vi| vi * vi).sum();
                let variance = self.signal_variance - explained + recovered + self.noise();
                Prediction::new(mean, variance)
            })
            .collect()
    }
}

impl SurrogateModel for SparseGaussianProcess {
    fn fit(&mut self, xs: &[&[f64]], ys: &[f64]) -> Result<()> {
        let dim = validate_training_set(xs, ys)?;
        self.dimension = Some(dim);
        let n = ys.len();
        let m = self.config.inducing.max(1).min(n);

        // Hyper-parameters: the dense GP's data-scale heuristics, computed
        // once and frozen.
        self.y_sum = ys.iter().sum();
        self.count = n;
        self.mean = self.y_sum / n as f64;
        self.signal_variance = match self.config.signal_variance {
            Some(signal_variance) => signal_variance,
            None => {
                let mean = self.mean;
                let var = ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / n as f64;
                var.max(1e-10)
            }
        };

        // Inducing set: an evenly-strided subset of the training inputs
        // (indices `⌊i·n/m⌋`, strictly increasing for `m ≤ n`), frozen for
        // the lifetime of the fit. Deterministic in the input order, like
        // every other choice this model makes.
        self.inducing = FeatureMatrix::with_capacity(dim, m);
        for i in 0..m {
            self.inducing.push_row(xs[i * n / m]);
        }
        self.lengthscale = match self.config.lengthscale {
            Some(lengthscale) => lengthscale,
            None => median_pairwise_distance(&self.inducing).max(1e-6),
        };

        // Whitener: factor K_ZZ + εI with the escalating jitter ladder
        // (duplicate training inputs can make K_ZZ rank-deficient).
        self.lm = None;
        self.lp = None;
        let mut kmm = Vec::with_capacity(m * (m + 1) / 2);
        for i in 0..m {
            let zi = self.inducing.row(i);
            for j in 0..=i {
                kmm.push(self.kernel(zi, self.inducing.row(j)));
            }
        }
        // Chaos site: complete-exhaustion only, for the same reason as the
        // dense GP — a per-rung fault would perturb the surviving jitter.
        if alic_stats::fault::inject(alic_stats::fault::FaultSite::JitterExhaustion) {
            return Err(ModelError::Numerical(format!(
                "chaos: injected jitter-ladder exhaustion after {MAX_JITTER_ATTEMPTS} escalations"
            )));
        }
        let mut jitter = self.base_jitter();
        let mut lm = None;
        for _ in 0..MAX_JITTER_ATTEMPTS {
            let mut packed = kmm.clone();
            for i in 0..m {
                packed[i * (i + 1) / 2 + i] += jitter;
            }
            match Cholesky::decompose_packed(m, packed) {
                Ok(chol) => {
                    lm = Some(chol);
                    break;
                }
                Err(_) => jitter *= 10.0,
            }
        }
        let lm = lm.ok_or_else(|| {
            ModelError::Numerical(format!(
                "inducing kernel not positive definite after {MAX_JITTER_ATTEMPTS} jitter escalations"
            ))
        })?;
        self.kmm_jitter = jitter;

        // One parallel O(n·m²) sweep: per block, whiten the kernel rows with
        // a batched solve, then accumulate the packed Gram ΨᵀΨ, u = Σψy and
        // s = Σψ. Blocks are combined serially in block order, so the sums
        // are bit-identical however rayon schedules the map.
        let packed_len = m * (m + 1) / 2;
        let partials: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = (0..n.div_ceil(FIT_BLOCK))
            .into_par_iter()
            .map(|b| {
                let lo = b * FIT_BLOCK;
                let hi = (lo + FIT_BLOCK).min(n);
                let (x_block, y_block) = (&xs[lo..hi], &ys[lo..hi]);
                let mut psi = vec![0.0; x_block.len() * m];
                for (row, x) in psi.chunks_exact_mut(m).zip(x_block) {
                    self.inducing_kernel_row(x, row);
                }
                lm.forward_substitute_batch(&mut psi, x_block.len())
                    .expect("block shape matches the whitener by construction");
                let mut gram = vec![0.0; packed_len];
                let mut u = vec![0.0; m];
                let mut s = vec![0.0; m];
                for (row, &y) in psi.chunks_exact(m).zip(y_block) {
                    for i in 0..m {
                        let pi = row[i];
                        let dst = &mut gram[i * (i + 1) / 2..i * (i + 1) / 2 + i + 1];
                        for (g, &pj) in dst.iter_mut().zip(&row[..=i]) {
                            *g += pi * pj;
                        }
                        u[i] += pi * y;
                        s[i] += pi;
                    }
                }
                (gram, u, s)
            })
            .collect();
        let mut gram = vec![0.0; packed_len];
        self.u = vec![0.0; m];
        self.s = vec![0.0; m];
        for (g, u, s) in &partials {
            for (acc, v) in gram.iter_mut().zip(g) {
                *acc += v;
            }
            for (acc, v) in self.u.iter_mut().zip(u) {
                *acc += v;
            }
            for (acc, v) in self.s.iter_mut().zip(s) {
                *acc += v;
            }
        }

        // Precision P = I + σ⁻² ΨᵀΨ: positive definite by construction, so
        // a failure here is a genuine numerical error, not a ladder case.
        let inv_noise = 1.0 / self.noise();
        let mut packed = gram;
        for v in packed.iter_mut() {
            *v *= inv_noise;
        }
        for i in 0..m {
            packed[i * (i + 1) / 2 + i] += 1.0;
        }
        let lp = Cholesky::decompose_packed(m, packed)
            .map_err(|e| ModelError::Numerical(format!("precision decomposition failed: {e}")))?;
        self.lm = Some(lm);
        self.lp = Some(lp);
        self.resolve_weights()
    }

    fn update(&mut self, x: &[f64], y: f64) -> Result<()> {
        self.check_dimension(x)?;
        crate::validate_observation(x, y)?;
        if self.lp.is_none() {
            return Err(ModelError::NotFitted);
        }
        // O(m²): whiten the new point, fold it into the sufficient
        // statistics, and rank-1-update the precision factor. Adding
        // σ⁻²ψψᵀ keeps P positive definite unconditionally, so unlike the
        // dense GP's row append there is no fallback path to take.
        let psi = self.feature(x)?;
        let inv_sigma = (1.0 / self.noise()).sqrt();
        let scaled: Vec<f64> = psi.iter().map(|p| p * inv_sigma).collect();
        self.lp
            .as_mut()
            .expect("presence checked above")
            .rank_one_update(&scaled)
            .map_err(|e| ModelError::Numerical(e.to_string()))?;
        for ((u, s), &p) in self.u.iter_mut().zip(&mut self.s).zip(&psi) {
            *u += p * y;
            *s += p;
        }
        self.y_sum += y;
        self.count += 1;
        self.mean = self.y_sum / self.count as f64;
        self.resolve_weights()
    }

    fn predict(&self, x: &[f64]) -> Result<Prediction> {
        self.check_dimension(x)?;
        let lm = self.lm.as_ref().ok_or(ModelError::NotFitted)?;
        let lp = self.lp.as_ref().ok_or(ModelError::NotFitted)?;
        Ok(self.predict_block(&[x], lm, lp)[0])
    }

    fn predict_batch(&self, inputs: &[&[f64]]) -> Result<Vec<Prediction>> {
        for x in inputs {
            self.check_dimension(x)?;
        }
        let lm = self.lm.as_ref().ok_or(ModelError::NotFitted)?;
        let lp = self.lp.as_ref().ok_or(ModelError::NotFitted)?;
        // Blocks are independent and internally ordered, so parallel
        // evaluation with in-order collection is bit-deterministic.
        let blocks: Vec<&[&[f64]]> = inputs.chunks(PREDICT_BLOCK).collect();
        let scored: Vec<Vec<Prediction>> = blocks
            .into_par_iter()
            .map(|block| self.predict_block(block, lm, lp))
            .collect();
        Ok(scored.into_iter().flatten().collect())
    }

    fn observation_count(&self) -> usize {
        self.count
    }

    fn dimension(&self) -> Option<usize> {
        self.dimension
    }

    fn snapshot(&self) -> Result<Snapshot> {
        let factor = |chol: &Option<Cholesky>| match chol {
            None => JsonValue::Null,
            Some(c) => snapshot::hex_f64s(c.packed().iter().copied()),
        };
        let mut fields = snapshot::header("sgp");
        fields.extend([
            (
                "config_inducing".to_string(),
                snapshot::num(self.config.inducing),
            ),
            (
                "config_lengthscale".to_string(),
                snapshot::opt_hex_f64(self.config.lengthscale),
            ),
            (
                "config_signal_variance".to_string(),
                snapshot::opt_hex_f64(self.config.signal_variance),
            ),
            (
                "config_noise_variance".to_string(),
                snapshot::hex_f64(self.config.noise_variance),
            ),
            (
                "inducing_dim".to_string(),
                snapshot::num(self.inducing.dim()),
            ),
            (
                "inducing".to_string(),
                snapshot::hex_f64s(self.inducing.rows().flatten().copied()),
            ),
            ("lm".to_string(), factor(&self.lm)),
            ("lp".to_string(), factor(&self.lp)),
            ("u".to_string(), snapshot::hex_f64s(self.u.iter().copied())),
            ("s".to_string(), snapshot::hex_f64s(self.s.iter().copied())),
            (
                "weights".to_string(),
                snapshot::hex_f64s(self.weights.iter().copied()),
            ),
            ("mean".to_string(), snapshot::hex_f64(self.mean)),
            ("y_sum".to_string(), snapshot::hex_f64(self.y_sum)),
            ("count".to_string(), snapshot::num(self.count)),
            (
                "lengthscale".to_string(),
                snapshot::hex_f64(self.lengthscale),
            ),
            (
                "signal_variance".to_string(),
                snapshot::hex_f64(self.signal_variance),
            ),
            ("kmm_jitter".to_string(), snapshot::hex_f64(self.kmm_jitter)),
            (
                "dimension".to_string(),
                match self.dimension {
                    None => JsonValue::Null,
                    Some(d) => snapshot::num(d),
                },
            ),
        ]);
        Ok(JsonValue::Object(fields))
    }
}

impl ActiveSurrogate for SparseGaussianProcess {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row_views;

    fn sine_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points_closely() {
        let (xs, ys) = sine_data(60);
        let mut sgp = SparseGaussianProcess::new(SparseGpConfig {
            inducing: 20,
            ..Default::default()
        });
        sgp.fit(&row_views(&xs), &ys).unwrap();
        assert_eq!(sgp.inducing_count(), 20);
        for (x, y) in xs.iter().zip(&ys) {
            let p = sgp.predict(x).unwrap();
            assert!((p.mean - y).abs() < 0.05, "at {x:?}: {} vs {y}", p.mean);
        }
    }

    #[test]
    fn inducing_count_clamps_to_training_size() {
        let (xs, ys) = sine_data(10);
        let mut sgp = SparseGaussianProcess::with_defaults();
        sgp.fit(&row_views(&xs), &ys).unwrap();
        assert_eq!(sgp.inducing_count(), 10);
    }

    #[test]
    fn variance_grows_away_from_data_and_stays_below_prior() {
        let (xs, ys) = sine_data(40);
        let mut sgp = SparseGaussianProcess::new(SparseGpConfig {
            inducing: 15,
            lengthscale: Some(0.1),
            ..Default::default()
        });
        sgp.fit(&row_views(&xs), &ys).unwrap();
        let near = sgp.predict(&[0.5]).unwrap().variance;
        let far = sgp.predict(&[3.0]).unwrap().variance;
        assert!(far > near);
        let prior = sgp.signal_variance() + sgp.config.noise_variance;
        assert!(far <= prior + 1e-9, "{far} vs prior {prior}");
    }

    #[test]
    fn update_shifts_predictions_toward_new_observations() {
        let (xs, ys) = sine_data(50);
        let mut sgp = SparseGaussianProcess::new(SparseGpConfig {
            inducing: 25,
            ..Default::default()
        });
        sgp.fit(&row_views(&xs), &ys).unwrap();
        let x = vec![0.52];
        let before = sgp.predict(&x).unwrap();
        let target = before.mean + 1.0;
        for _ in 0..8 {
            sgp.update(&x, target).unwrap();
        }
        let after = sgp.predict(&x).unwrap();
        // The probe sits inside a dense training region, so the smooth GP
        // compromises between the 8 new observations and their strongly
        // correlated neighbours — require a substantial move toward the
        // target, not convergence onto it.
        assert!(
            after.mean - before.mean > 0.3 * (target - before.mean),
            "mean must move toward the repeated observation: {} -> {} (target {target})",
            before.mean,
            after.mean
        );
        assert!(after.variance <= before.variance + 1e-12);
        assert_eq!(sgp.observation_count(), 58);
    }

    #[test]
    fn incremental_updates_match_cold_refit_closely() {
        // Updates fold new points into the *existing* inducing basis while a
        // refit re-chooses it, so agreement is approximate — but with a basis
        // that already covers the region it must be tight.
        let (xs, ys) = sine_data(60);
        let mut incremental = SparseGaussianProcess::new(SparseGpConfig {
            inducing: 40,
            ..Default::default()
        });
        incremental.fit(&row_views(&xs[..40]), &ys[..40]).unwrap();
        for (x, &y) in xs[40..].iter().zip(&ys[40..]) {
            incremental.update(x, y).unwrap();
        }
        let mut cold = SparseGaussianProcess::new(SparseGpConfig {
            inducing: 40,
            lengthscale: Some(incremental.lengthscale()),
            signal_variance: Some(incremental.signal_variance()),
            noise_variance: incremental.config.noise_variance,
        });
        cold.fit(&row_views(&xs), &ys).unwrap();
        for q in [0.1, 0.33, 0.5, 0.9] {
            let a = incremental.predict(&[q]).unwrap();
            let b = cold.predict(&[q]).unwrap();
            assert!(
                (a.mean - b.mean).abs() < 0.05,
                "at {q}: incremental {a:?} vs cold {b:?}"
            );
        }
    }

    #[test]
    fn predict_batch_is_bit_identical_to_predict() {
        let (xs, ys) = sine_data(80);
        let mut sgp = SparseGaussianProcess::new(SparseGpConfig {
            inducing: 30,
            ..Default::default()
        });
        sgp.fit(&row_views(&xs), &ys).unwrap();
        let queries: Vec<Vec<f64>> = (0..150).map(|i| vec![i as f64 / 149.0]).collect();
        let views = row_views(&queries);
        let batch = sgp.predict_batch(&views).unwrap();
        for (x, p) in views.iter().zip(&batch) {
            assert_eq!(*p, sgp.predict(x).unwrap());
        }
    }

    #[test]
    fn refitting_multi_block_data_is_bit_deterministic() {
        // A training set spanning several FIT_BLOCK chunks exercises the
        // parallel sweep plus the serial in-order reduce; two fits of the
        // same data must agree to the bit (the thread-count half of the
        // contract lives in `tests/batch_consistency.rs`).
        let (xs, ys) = sine_data(3 * FIT_BLOCK + 17);
        let views = row_views(&xs);
        let mut a = SparseGaussianProcess::new(SparseGpConfig {
            inducing: 16,
            ..Default::default()
        });
        let mut b = a.clone();
        a.fit(&views, &ys).unwrap();
        b.fit(&views, &ys).unwrap();
        for q in [0.05, 0.37, 0.71] {
            assert_eq!(a.predict(&[q]).unwrap(), b.predict(&[q]).unwrap());
        }
    }

    #[test]
    fn errors_before_fit_and_on_bad_input() {
        let sgp = SparseGaussianProcess::with_defaults();
        assert_eq!(sgp.predict(&[0.0]).unwrap_err(), ModelError::NotFitted);
        let (xs, ys) = sine_data(12);
        let mut sgp = SparseGaussianProcess::with_defaults();
        sgp.fit(&row_views(&xs), &ys).unwrap();
        assert!(matches!(
            sgp.predict(&[0.0, 1.0]),
            Err(ModelError::DimensionMismatch { .. })
        ));
        assert_eq!(
            sgp.update(&[0.1], f64::NAN).unwrap_err(),
            ModelError::NonFiniteInput
        );
    }

    #[test]
    fn duplicate_inputs_do_not_break_the_decomposition() {
        // All-identical inputs make K_ZZ rank one; the jitter ladder must
        // still produce a usable whitener.
        let xs = vec![vec![0.5]; 30];
        let ys = vec![1.0; 30];
        let mut sgp = SparseGaussianProcess::new(SparseGpConfig {
            inducing: 8,
            ..Default::default()
        });
        sgp.fit(&row_views(&xs), &ys).unwrap();
        let p = sgp.predict(&[0.5]).unwrap();
        assert!((p.mean - 1.0).abs() < 1e-2);
    }

    #[test]
    fn alm_score_equals_predictive_variance() {
        let (xs, ys) = sine_data(25);
        let mut sgp = SparseGaussianProcess::with_defaults();
        sgp.fit(&row_views(&xs), &ys).unwrap();
        let p = sgp.predict(&[0.3]).unwrap();
        assert_eq!(sgp.alm_score(&[0.3]).unwrap(), p.variance);
    }

    #[test]
    fn fixed_hyperparameters_are_respected() {
        let (xs, ys) = sine_data(20);
        let mut sgp = SparseGaussianProcess::new(SparseGpConfig {
            inducing: 10,
            lengthscale: Some(0.42),
            signal_variance: Some(2.0),
            noise_variance: 1e-3,
        });
        sgp.fit(&row_views(&xs), &ys).unwrap();
        assert_eq!(sgp.lengthscale(), 0.42);
        assert_eq!(sgp.signal_variance(), 2.0);
    }
}
