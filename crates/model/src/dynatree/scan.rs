//! Split-proposal scan kernels: scalar, bitset+popcount and SIMD.
//!
//! A grow move evaluates a batch of candidate splits of one leaf. For each
//! candidate `(dimension, threshold)` the scorer needs the left child's
//! `(n, Σy, Σy²)`; the right child is `totals − left`. This module holds the
//! three interchangeable kernels that produce those triples from a
//! column-major copy of the leaf ([`LeafColumns`]):
//!
//! * [`ScanKind::Scalar`] — the reference: one branch-free pass per attempt
//!   accumulating `acc += mask * value` with a 0/1 comparison mask,
//! * [`ScanKind::Bitset`] — packs the comparison mask into u64 words
//!   ([`alic_stats::bitset`]), takes the count with `popcnt` and accumulates
//!   the sums over the set bits in ascending order,
//! * [`ScanKind::Simd`] — the bitset kernel with the mask words built by
//!   SSE2 packed compares (`cfg`-gated to x86-64; elsewhere it falls back to
//!   the scalar mask builder and is otherwise identical to `Bitset`).
//!
//! All three are **bit-identical** by construction — same comparisons, and
//! sums whose skipped terms are exact `±0.0` no-ops (see
//! [`alic_stats::bitset`] for the argument) — which
//! `tests/scan_identity.rs` pins with property tests and the committed
//! `scan_variants` bench races side by side. [`DEFAULT_SCAN_KIND`] selects
//! the winner on the benched host; changing it can never change results,
//! only speed.

use std::cell::RefCell;

use alic_stats::bitset;

/// Split-proposal attempts evaluated per fused scan of the gathered leaf.
pub const ATTEMPT_BATCH: usize = 8;

/// Which split-scan kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanKind {
    /// Reference mask-multiply scan: one fused pass with every live
    /// attempt's three accumulators carried simultaneously, so the
    /// independent add chains hide FP latency even at small leaf sizes.
    Scalar,
    /// u64 mask words, `popcnt` counts, set-bit-ordered sums.
    Bitset,
    /// [`ScanKind::Bitset`] with SSE2-packed mask construction on x86-64.
    Simd,
    /// Length dispatch: [`ScanKind::Scalar`] below
    /// [`BITSET_MIN_LEN`] points, [`ScanKind::Simd`] at or above it. The
    /// bitset kernels amortize their mask-building pass only once a leaf
    /// spans several words; short leaves (the common case deep in a grown
    /// tree) stay on the fused scalar pass.
    Auto,
}

/// Leaf size at which [`ScanKind::Auto`] switches from the fused scalar
/// kernel to the SIMD bitset kernel — the crossover in the committed
/// `scan_variants` bench on the benched host.
pub const BITSET_MIN_LEN: usize = 256;

/// The kernel the dynamic tree uses in production: fastest in the committed
/// `scan_variants` bench on the benched host (see README "Performance").
/// All kinds are bit-identical, so this is purely a speed choice.
pub const DEFAULT_SCAN_KIND: ScanKind = ScanKind::Auto;

/// Column-major copy of one leaf's points: per-dimension feature columns
/// plus the target column, all contiguous and in point-list order.
///
/// Built once per (unique tree, update) by a single walk of the leaf's
/// intrusive point list; every subsequent proposal scan — one per sharing
/// particle — then reads contiguous columns instead of chasing list links
/// through the row-major training store. The buffers are reused across
/// updates, so steady-state refills allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct LeafColumns {
    /// Dimension-major features: column `d` is `cols[d * len..(d + 1) * len]`.
    cols: Vec<f64>,
    /// Targets in the same point order.
    ys: Vec<f64>,
    /// Squared targets, precomputed once per gather so every sharer's scan
    /// reads `y²` instead of recomputing it per attempt (`y * y` is the
    /// exact value the scalar reference multiplies by its mask).
    ys_sq: Vec<f64>,
    len: usize,
}

impl LeafColumns {
    /// Refills the columns from `len` `(features, target)` records in point
    /// order, keeping the allocations.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields fewer than `len` records or rows
    /// narrower than `n_dims`.
    pub fn fill<'a, I>(&mut self, n_dims: usize, len: usize, rows: I)
    where
        I: Iterator<Item = (&'a [f64], f64)>,
    {
        self.len = len;
        self.cols.clear();
        self.cols.resize(n_dims * len, 0.0);
        self.ys.clear();
        self.ys.resize(len, 0.0);
        self.ys_sq.clear();
        self.ys_sq.resize(len, 0.0);
        let mut count = 0;
        for (i, (row, y)) in rows.take(len).enumerate() {
            for (d, &value) in row[..n_dims].iter().enumerate() {
                self.cols[d * len + i] = value;
            }
            self.ys[i] = y;
            self.ys_sq[i] = y * y;
            count += 1;
        }
        assert_eq!(count, len, "leaf iterator yielded too few points");
    }

    /// Marks the buffer empty (no gathered points), keeping allocations.
    pub fn clear(&mut self) {
        self.len = 0;
        self.cols.clear();
        self.ys.clear();
        self.ys_sq.clear();
    }

    /// Number of gathered points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no points are gathered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The contiguous feature column of `dimension`.
    pub fn feature_column(&self, dimension: usize) -> &[f64] {
        &self.cols[dimension * self.len..(dimension + 1) * self.len]
    }

    /// The target column, in point order.
    pub fn targets(&self) -> &[f64] {
        &self.ys
    }

    /// The squared-target column, in point order.
    pub fn targets_sq(&self) -> &[f64] {
        &self.ys_sq
    }
}

thread_local! {
    /// Per-thread mask-word scratch for the bitset kernels; proposal scans
    /// run inside the parallel move-decision pass, so the scratch cannot
    /// live in the (shared) gathered columns.
    static MASK_WORDS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Runs the selected kernel over the first `live` attempts, returning each
/// attempt's left-side `(n, Σy, Σy²)` in the first `live` entries of the
/// three output arrays. Every kind accumulates per attempt in point order,
/// so the triples are bit-identical across kinds (and to an
/// attempt-at-a-time evaluation).
pub fn scan_left(
    kind: ScanKind,
    columns: &LeafColumns,
    dims: &[usize; ATTEMPT_BATCH],
    thresholds: &[f64; ATTEMPT_BATCH],
    live: usize,
) -> (
    [f64; ATTEMPT_BATCH],
    [f64; ATTEMPT_BATCH],
    [f64; ATTEMPT_BATCH],
) {
    let kind = match kind {
        ScanKind::Auto if columns.len() < BITSET_MIN_LEN => ScanKind::Scalar,
        ScanKind::Auto => ScanKind::Simd,
        other => other,
    };
    let mut n = [0.0f64; ATTEMPT_BATCH];
    let mut s = [0.0f64; ATTEMPT_BATCH];
    let mut q = [0.0f64; ATTEMPT_BATCH];
    match kind {
        ScanKind::Auto => unreachable!("resolved above"),
        ScanKind::Scalar => {
            // Monomorphize the fused pass on the live-attempt count so all
            // `3 × live` accumulators stay in registers.
            match live {
                1 => scan_scalar_fused::<1>(columns, dims, thresholds, &mut n, &mut s, &mut q),
                2 => scan_scalar_fused::<2>(columns, dims, thresholds, &mut n, &mut s, &mut q),
                3 => scan_scalar_fused::<3>(columns, dims, thresholds, &mut n, &mut s, &mut q),
                4 => scan_scalar_fused::<4>(columns, dims, thresholds, &mut n, &mut s, &mut q),
                5 => scan_scalar_fused::<5>(columns, dims, thresholds, &mut n, &mut s, &mut q),
                6 => scan_scalar_fused::<6>(columns, dims, thresholds, &mut n, &mut s, &mut q),
                7 => scan_scalar_fused::<7>(columns, dims, thresholds, &mut n, &mut s, &mut q),
                _ => scan_scalar_fused::<8>(columns, dims, thresholds, &mut n, &mut s, &mut q),
            }
        }
        ScanKind::Bitset | ScanKind::Simd => {
            let ys = columns.targets();
            let ys_sq = columns.targets_sq();
            let word_count = columns.len().div_ceil(bitset::WORD_BITS);
            MASK_WORDS.with(|cell| {
                let words = &mut *cell.borrow_mut();
                // Stage 1: one mask strip per attempt (attempt `k` occupies
                // `words[k * word_count..]`), counts via popcount.
                words.clear();
                words.resize(live * word_count, 0);
                for k in 0..live {
                    let strip = &mut words[k * word_count..(k + 1) * word_count];
                    let col = columns.feature_column(dims[k]);
                    fill_mask(kind, col, thresholds[k], strip);
                    n[k] = bitset::count_ones(strip) as f64;
                }
                // Stage 2: fused masked sums. Attempts are interleaved at
                // word granularity so their (independent) accumulator
                // chains overlap; within each attempt the set bits are
                // still visited in ascending point order, which keeps every
                // attempt's sums bit-identical to the scalar reference.
                for w in 0..word_count {
                    let base = w * bitset::WORD_BITS;
                    for k in 0..live {
                        let mut bits = words[k * word_count + w];
                        let mut sk = s[k];
                        let mut qk = q[k];
                        while bits != 0 {
                            let i = base + bits.trailing_zeros() as usize;
                            sk += ys[i];
                            qk += ys_sq[i];
                            bits &= bits - 1;
                        }
                        s[k] = sk;
                        q[k] = qk;
                    }
                }
            });
        }
    }
    (n, s, q)
}

/// Fused scalar scan over `(features, target)` records streamed straight
/// from a leaf's point list — the no-copy path for leaves only one particle
/// will ever scan, where materializing [`LeafColumns`] first would cost more
/// than the single scan it feeds. Point order is the stream order, so the
/// triples are bit-identical to every column-based kernel run on a gather of
/// the same stream.
pub fn scan_left_direct<'s, I>(
    rows: I,
    dims: &[usize; ATTEMPT_BATCH],
    thresholds: &[f64; ATTEMPT_BATCH],
    live: usize,
) -> (
    [f64; ATTEMPT_BATCH],
    [f64; ATTEMPT_BATCH],
    [f64; ATTEMPT_BATCH],
)
where
    I: Iterator<Item = (&'s [f64], f64)>,
{
    let mut n = [0.0f64; ATTEMPT_BATCH];
    let mut s = [0.0f64; ATTEMPT_BATCH];
    let mut q = [0.0f64; ATTEMPT_BATCH];
    match live {
        1 => scan_direct_fused::<1, _>(rows, dims, thresholds, &mut n, &mut s, &mut q),
        2 => scan_direct_fused::<2, _>(rows, dims, thresholds, &mut n, &mut s, &mut q),
        3 => scan_direct_fused::<3, _>(rows, dims, thresholds, &mut n, &mut s, &mut q),
        4 => scan_direct_fused::<4, _>(rows, dims, thresholds, &mut n, &mut s, &mut q),
        5 => scan_direct_fused::<5, _>(rows, dims, thresholds, &mut n, &mut s, &mut q),
        6 => scan_direct_fused::<6, _>(rows, dims, thresholds, &mut n, &mut s, &mut q),
        7 => scan_direct_fused::<7, _>(rows, dims, thresholds, &mut n, &mut s, &mut q),
        _ => scan_direct_fused::<8, _>(rows, dims, thresholds, &mut n, &mut s, &mut q),
    }
    (n, s, q)
}

/// The streamed counterpart of [`scan_scalar_fused`]: identical accumulator
/// structure, rows read from the iterator instead of gathered columns.
fn scan_direct_fused<'s, const K: usize, I>(
    rows: I,
    dims: &[usize; ATTEMPT_BATCH],
    thresholds: &[f64; ATTEMPT_BATCH],
    n: &mut [f64; ATTEMPT_BATCH],
    s: &mut [f64; ATTEMPT_BATCH],
    q: &mut [f64; ATTEMPT_BATCH],
) where
    I: Iterator<Item = (&'s [f64], f64)>,
{
    let mut local_dims = [0usize; K];
    let mut thr = [0.0f64; K];
    local_dims.copy_from_slice(&dims[..K]);
    thr.copy_from_slice(&thresholds[..K]);
    let mut nk = [0.0f64; K];
    let mut sk = [0.0f64; K];
    let mut qk = [0.0f64; K];
    for (row, y) in rows {
        let y_sq = y * y;
        for k in 0..K {
            let mask = f64::from(row[local_dims[k]] <= thr[k]);
            nk[k] += mask;
            sk[k] += mask * y;
            qk[k] += mask * y_sq;
        }
    }
    n[..K].copy_from_slice(&nk);
    s[..K].copy_from_slice(&sk);
    q[..K].copy_from_slice(&qk);
}

/// The fused scalar pass: one sweep over the points, carrying every live
/// attempt's `(n, Σy, Σy²)` simultaneously. `K` is the live-attempt count,
/// monomorphized so the accumulator arrays live in registers; the summation
/// order per attempt is point order, identical to an attempt-at-a-time scan.
fn scan_scalar_fused<const K: usize>(
    columns: &LeafColumns,
    dims: &[usize; ATTEMPT_BATCH],
    thresholds: &[f64; ATTEMPT_BATCH],
    n: &mut [f64; ATTEMPT_BATCH],
    s: &mut [f64; ATTEMPT_BATCH],
    q: &mut [f64; ATTEMPT_BATCH],
) {
    let mut cols = [columns.feature_column(0); K];
    let mut thr = [0.0f64; K];
    for k in 0..K {
        cols[k] = columns.feature_column(dims[k]);
        thr[k] = thresholds[k];
    }
    let mut nk = [0.0f64; K];
    let mut sk = [0.0f64; K];
    let mut qk = [0.0f64; K];
    let ys = columns.targets();
    let ys_sq = columns.targets_sq();
    for (i, (&y, &y_sq)) in ys.iter().zip(ys_sq).enumerate() {
        for k in 0..K {
            let mask = f64::from(cols[k][i] <= thr[k]);
            nk[k] += mask;
            sk[k] += mask * y;
            qk[k] += mask * y_sq;
        }
    }
    n[..K].copy_from_slice(&nk);
    s[..K].copy_from_slice(&sk);
    q[..K].copy_from_slice(&qk);
}

/// Builds the `<= threshold` mask words with the kind's mask builder.
#[inline]
fn fill_mask(kind: ScanKind, column: &[f64], threshold: f64, words: &mut [u64]) {
    #[cfg(target_arch = "x86_64")]
    if kind == ScanKind::Simd {
        bitset::fill_mask_le_simd_into(column, threshold, words);
        return;
    }
    let _ = kind;
    bitset::fill_mask_le_into(column, threshold, words);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_columns(len: usize, n_dims: usize) -> LeafColumns {
        let rows: Vec<Vec<f64>> = (0..len)
            .map(|i| {
                (0..n_dims)
                    .map(|d| ((i * 31 + d * 17 + 5) % 97) as f64 / 13.0 - 3.0)
                    .collect()
            })
            .collect();
        let ys: Vec<f64> = (0..len)
            .map(|i| ((i * 23 + 7) % 89) as f64 / 11.0 - 4.0)
            .collect();
        let mut columns = LeafColumns::default();
        columns.fill(
            n_dims,
            len,
            rows.iter().map(|r| r.as_slice()).zip(ys.iter().copied()),
        );
        columns
    }

    #[test]
    fn fill_lays_out_columns_dimension_major() {
        let columns = sample_columns(5, 3);
        assert_eq!(columns.len(), 5);
        for d in 0..3 {
            let col = columns.feature_column(d);
            assert_eq!(col.len(), 5);
            for (i, &v) in col.iter().enumerate() {
                assert_eq!(v, ((i * 31 + d * 17 + 5) % 97) as f64 / 13.0 - 3.0);
            }
        }
        assert_eq!(columns.targets().len(), 5);
    }

    #[test]
    fn clear_empties_but_refill_works() {
        let mut columns = sample_columns(10, 2);
        columns.clear();
        assert!(columns.is_empty());
        let refilled = sample_columns(130, 2);
        assert_eq!(refilled.len(), 130);
    }

    #[test]
    fn all_kinds_produce_bit_identical_triples() {
        for len in [1, 2, 5, 63, 64, 65, 130] {
            let columns = sample_columns(len, 3);
            let dims = [0usize, 1, 2, 0, 1, 2, 0, 1];
            let thresholds = [-2.5, -1.0, 0.0, 0.5, 1.5, 2.5, 3.5, -4.0];
            let live = 8;
            let (n0, s0, q0) = scan_left(ScanKind::Scalar, &columns, &dims, &thresholds, live);
            for kind in [ScanKind::Bitset, ScanKind::Simd, ScanKind::Auto] {
                let (n1, s1, q1) = scan_left(kind, &columns, &dims, &thresholds, live);
                for k in 0..live {
                    assert_eq!(
                        n0[k].to_bits(),
                        n1[k].to_bits(),
                        "{kind:?} n len={len} k={k}"
                    );
                    assert_eq!(
                        s0[k].to_bits(),
                        s1[k].to_bits(),
                        "{kind:?} s len={len} k={k}"
                    );
                    assert_eq!(
                        q0[k].to_bits(),
                        q1[k].to_bits(),
                        "{kind:?} q len={len} k={k}"
                    );
                }
            }
        }
    }
}
