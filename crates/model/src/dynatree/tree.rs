//! A single particle's tree structure.
//!
//! Each particle of the dynamic-tree model carries one regression tree. The
//! tree partitions the input space into axis-aligned hyper-rectangles; every
//! leaf holds the indices of the training observations that fall inside it
//! plus their sufficient statistics ([`LeafStats`]).
//!
//! The three structural moves of Taddy et al. (Figure 4 of the paper) are
//! implemented here: **stay** (no change), **grow** (split the leaf that
//! received the new observation) and **prune** (collapse the leaf's parent
//! back into a leaf).

use serde::{Deserialize, Serialize};

use alic_stats::FeatureMatrix;

use crate::leaf::{LeafPrior, LeafStats};

/// A proposed axis-aligned split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Split {
    /// Feature dimension the split tests.
    pub dimension: usize,
    /// Points with `x[dimension] <= threshold` go to the left child.
    pub threshold: f64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum NodeKind {
    Leaf {
        points: Vec<usize>,
        stats: LeafStats,
    },
    Internal {
        split: Split,
        left: usize,
        right: usize,
    },
    /// Slot freed by a prune, available for reuse by a later grow.
    Free,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TreeNode {
    parent: Option<usize>,
    depth: usize,
    kind: NodeKind,
}

/// One particle's regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParticleTree {
    nodes: Vec<TreeNode>,
    free: Vec<usize>,
}

/// A compact, traversal-only copy of one tree node (24 bytes instead of the
/// full bookkeeping node). Batch scoring flattens every particle once per
/// call and then runs all candidate traversals over these dense arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatNode {
    /// Split dimension, or [`FLAT_LEAF`] when the node is a leaf.
    pub dimension: u32,
    /// Left child index (internal nodes only).
    pub left: u32,
    /// Right child index (internal nodes only).
    pub right: u32,
    /// Split threshold (internal nodes only).
    pub threshold: f64,
}

/// Marker stored in [`FlatNode::dimension`] for leaves (and free slots,
/// which a traversal can never reach).
pub const FLAT_LEAF: u32 = u32::MAX;

/// Index of the leaf containing `x` in a flattened tree.
#[inline]
pub fn find_leaf_flat(nodes: &[FlatNode], x: &[f64]) -> usize {
    let mut index = 0usize;
    loop {
        let node = nodes[index];
        if node.dimension == FLAT_LEAF {
            return index;
        }
        index = if x[node.dimension as usize] <= node.threshold {
            node.left as usize
        } else {
            node.right as usize
        };
    }
}

impl ParticleTree {
    /// Creates a tree consisting of a single root leaf containing `points`.
    pub fn new_root(points: Vec<usize>, ys: &[f64]) -> Self {
        let mut stats = LeafStats::new();
        for &i in &points {
            stats.push(ys[i]);
        }
        ParticleTree {
            nodes: vec![TreeNode {
                parent: None,
                depth: 0,
                kind: NodeKind::Leaf { points, stats },
            }],
            free: Vec::new(),
        }
    }

    /// A node-less placeholder used to move a particle out of its slot
    /// without allocating. Never traversed.
    pub(crate) fn placeholder() -> Self {
        ParticleTree {
            nodes: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Writes a compact traversal copy of this tree into `out` (cleared
    /// first). Node indices are preserved, so flat leaf indices can be used
    /// with [`ParticleTree::leaf_stats`].
    pub fn flatten_into(&self, out: &mut Vec<FlatNode>) {
        out.clear();
        out.extend(self.nodes.iter().map(|node| match &node.kind {
            NodeKind::Internal { split, left, right } => FlatNode {
                dimension: split.dimension as u32,
                left: *left as u32,
                right: *right as u32,
                threshold: split.threshold,
            },
            NodeKind::Leaf { .. } | NodeKind::Free => FlatNode {
                dimension: FLAT_LEAF,
                left: 0,
                right: 0,
                threshold: 0.0,
            },
        }));
    }

    /// Index of the leaf whose hyper-rectangle contains `x`.
    pub fn find_leaf(&self, x: &[f64]) -> usize {
        let mut index = 0;
        loop {
            match &self.nodes[index].kind {
                NodeKind::Leaf { .. } => return index,
                NodeKind::Internal { split, left, right } => {
                    index = if x[split.dimension] <= split.threshold {
                        *left
                    } else {
                        *right
                    };
                }
                NodeKind::Free => unreachable!("free node reached during traversal"),
            }
        }
    }

    /// Leaf statistics of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not a leaf.
    pub fn leaf_stats(&self, index: usize) -> &LeafStats {
        match &self.nodes[index].kind {
            NodeKind::Leaf { stats, .. } => stats,
            _ => panic!("node {index} is not a leaf"),
        }
    }

    /// Point indices stored in leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not a leaf.
    pub fn leaf_points(&self, index: usize) -> &[usize] {
        match &self.nodes[index].kind {
            NodeKind::Leaf { points, .. } => points,
            _ => panic!("node {index} is not a leaf"),
        }
    }

    /// Depth of node `index` (the root has depth 0).
    pub fn depth_of(&self, index: usize) -> usize {
        self.nodes[index].depth
    }

    /// Parent of node `index`.
    pub fn parent_of(&self, index: usize) -> Option<usize> {
        self.nodes[index].parent
    }

    /// The sibling of leaf `index`, if the sibling is itself a leaf.
    pub fn leaf_sibling(&self, index: usize) -> Option<usize> {
        let parent = self.nodes[index].parent?;
        let NodeKind::Internal { left, right, .. } = &self.nodes[parent].kind else {
            return None;
        };
        let sibling = if *left == index { *right } else { *left };
        match self.nodes[sibling].kind {
            NodeKind::Leaf { .. } => Some(sibling),
            _ => None,
        }
    }

    /// Number of live leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Leaf { .. }))
            .count()
    }

    /// Maximum depth over live leaves.
    pub fn max_depth(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Leaf { .. }))
            .map(|n| n.depth)
            .max()
            .unwrap_or(0)
    }

    /// Total number of points stored across live leaves.
    pub fn point_count(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Leaf { points, .. } => Some(points.len()),
                _ => None,
            })
            .sum()
    }

    /// Adds observation `point` (with target `y`) to the leaf containing `x`
    /// and returns that leaf's index.
    pub fn insert(&mut self, x: &[f64], point: usize, y: f64) -> usize {
        let leaf = self.find_leaf(x);
        match &mut self.nodes[leaf].kind {
            NodeKind::Leaf { points, stats } => {
                points.push(point);
                stats.push(y);
            }
            _ => unreachable!("find_leaf returned a non-leaf"),
        }
        leaf
    }

    /// Log posterior-predictive density of `y` at the leaf containing `x`
    /// (the particle weight used during resampling).
    pub fn log_weight(&self, x: &[f64], y: f64, prior: &LeafPrior) -> f64 {
        let leaf = self.find_leaf(x);
        self.leaf_stats(leaf).log_predictive_density(prior, y)
    }

    /// Splits leaf `index` with `split`, distributing its points by the
    /// feature matrix `xs`. Returns `false` (and leaves the tree unchanged)
    /// if either child would receive fewer than `min_leaf` points.
    pub fn grow(
        &mut self,
        index: usize,
        split: Split,
        xs: &FeatureMatrix,
        ys: &[f64],
        min_leaf: usize,
    ) -> bool {
        let depth = self.nodes[index].depth;
        // Take the points out of the leaf (restoring them on rejection) so
        // the partition below works on the vector itself instead of a clone.
        let (points, stats) = match std::mem::replace(&mut self.nodes[index].kind, NodeKind::Free) {
            NodeKind::Leaf { points, stats } => (points, stats),
            other => {
                self.nodes[index].kind = other;
                return false;
            }
        };
        let mut left_pts = Vec::with_capacity(points.len());
        let mut right_pts = Vec::with_capacity(points.len());
        let mut left_stats = LeafStats::new();
        let mut right_stats = LeafStats::new();
        for &p in &points {
            if xs.get(p, split.dimension) <= split.threshold {
                left_stats.push(ys[p]);
                left_pts.push(p);
            } else {
                right_stats.push(ys[p]);
                right_pts.push(p);
            }
        }
        if left_pts.len() < min_leaf || right_pts.len() < min_leaf {
            self.nodes[index].kind = NodeKind::Leaf { points, stats };
            return false;
        }
        let left = self.allocate(TreeNode {
            parent: Some(index),
            depth: depth + 1,
            kind: NodeKind::Leaf {
                points: left_pts,
                stats: left_stats,
            },
        });
        let right = self.allocate(TreeNode {
            parent: Some(index),
            depth: depth + 1,
            kind: NodeKind::Leaf {
                points: right_pts,
                stats: right_stats,
            },
        });
        self.nodes[index].kind = NodeKind::Internal { split, left, right };
        true
    }

    /// Collapses the parent of leaf `index` back into a leaf containing the
    /// union of its two children's points. Returns `false` if `index` is the
    /// root or its sibling is not a leaf.
    pub fn prune(&mut self, index: usize, ys: &[f64]) -> bool {
        let Some(parent) = self.nodes[index].parent else {
            return false;
        };
        let Some(sibling) = self.leaf_sibling(index) else {
            return false;
        };
        // Both children become free slots, so their point vectors can be
        // moved and merged instead of copied.
        let NodeKind::Leaf {
            points: mut merged_points,
            ..
        } = std::mem::replace(&mut self.nodes[index].kind, NodeKind::Free)
        else {
            unreachable!("prune target is a leaf");
        };
        let NodeKind::Leaf {
            points: sibling_points,
            ..
        } = std::mem::replace(&mut self.nodes[sibling].kind, NodeKind::Free)
        else {
            unreachable!("leaf_sibling returned a leaf");
        };
        merged_points.extend_from_slice(&sibling_points);
        let mut stats = LeafStats::new();
        for &i in &merged_points {
            stats.push(ys[i]);
        }
        self.free.push(index);
        self.free.push(sibling);
        self.nodes[parent].kind = NodeKind::Leaf {
            points: merged_points,
            stats,
        };
        true
    }

    fn allocate(&mut self, node: TreeNode) -> usize {
        if let Some(slot) = self.free.pop() {
            self.nodes[slot] = node;
            slot
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Iterates over the indices of all live leaves.
    pub fn leaves(&self) -> impl Iterator<Item = usize> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Leaf { .. }))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data(n: usize) -> (FeatureMatrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|x| if x[0] <= 0.5 { 1.0 } else { 2.0 })
            .collect();
        (FeatureMatrix::from_rows(&rows).unwrap(), ys)
    }

    #[test]
    fn root_leaf_holds_all_points() {
        let (_, ys) = line_data(10);
        let tree = ParticleTree::new_root((0..10).collect(), &ys);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.point_count(), 10);
        assert_eq!(tree.max_depth(), 0);
        assert_eq!(tree.find_leaf(&[0.3]), 0);
    }

    #[test]
    fn grow_splits_points_by_threshold() {
        let (xs, ys) = line_data(10);
        let mut tree = ParticleTree::new_root((0..10).collect(), &ys);
        let ok = tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.5,
            },
            &xs,
            &ys,
            1,
        );
        assert!(ok);
        assert_eq!(tree.leaf_count(), 2);
        assert_eq!(tree.point_count(), 10);
        let left = tree.find_leaf(&[0.1]);
        let right = tree.find_leaf(&[0.9]);
        assert_ne!(left, right);
        assert!((tree.leaf_stats(left).mean() - 1.0).abs() < 1e-12);
        assert!((tree.leaf_stats(right).mean() - 2.0).abs() < 1e-12);
        assert_eq!(tree.depth_of(left), 1);
    }

    #[test]
    fn grow_rejects_undersized_children() {
        let (xs, ys) = line_data(10);
        let mut tree = ParticleTree::new_root((0..10).collect(), &ys);
        let ok = tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: -1.0,
            },
            &xs,
            &ys,
            1,
        );
        assert!(!ok, "all points on one side must be rejected");
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn prune_restores_the_parent_leaf() {
        let (xs, ys) = line_data(10);
        let mut tree = ParticleTree::new_root((0..10).collect(), &ys);
        tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.5,
            },
            &xs,
            &ys,
            1,
        );
        let leaf = tree.find_leaf(&[0.1]);
        assert!(tree.prune(leaf, &ys));
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.point_count(), 10);
        // Freed slots are reused by the next grow.
        assert!(tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.3
            },
            &xs,
            &ys,
            1
        ));
        assert_eq!(tree.leaf_count(), 2);
    }

    #[test]
    fn prune_of_root_is_rejected() {
        let (_, ys) = line_data(4);
        let mut tree = ParticleTree::new_root((0..4).collect(), &ys);
        assert!(!tree.prune(0, &ys));
    }

    #[test]
    fn insert_updates_the_correct_leaf() {
        let (xs, ys) = line_data(10);
        let mut tree = ParticleTree::new_root((0..10).collect(), &ys);
        tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.5,
            },
            &xs,
            &ys,
            1,
        );
        let before = tree.leaf_stats(tree.find_leaf(&[0.9])).count();
        let leaf = tree.insert(&[0.9], 10, 2.5);
        assert_eq!(tree.leaf_stats(leaf).count(), before + 1);
    }

    #[test]
    fn log_weight_is_higher_for_consistent_observations() {
        let (xs, ys) = line_data(20);
        let mut tree = ParticleTree::new_root((0..20).collect(), &ys);
        tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.5,
            },
            &xs,
            &ys,
            1,
        );
        let prior = LeafPrior::weakly_informative(1.5, 0.25);
        let consistent = tree.log_weight(&[0.2], 1.0, &prior);
        let surprising = tree.log_weight(&[0.2], 5.0, &prior);
        assert!(consistent > surprising);
    }

    #[test]
    fn sibling_detection() {
        let (xs, ys) = line_data(12);
        let mut tree = ParticleTree::new_root((0..12).collect(), &ys);
        tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.5,
            },
            &xs,
            &ys,
            1,
        );
        let left = tree.find_leaf(&[0.0]);
        let right = tree.find_leaf(&[1.0]);
        assert_eq!(tree.leaf_sibling(left), Some(right));
        assert_eq!(tree.leaf_sibling(right), Some(left));
        assert_eq!(tree.parent_of(left), Some(0));
        // After growing the left leaf again, the right leaf's sibling is an
        // internal node, so prune must not be offered there.
        tree.grow(
            left,
            Split {
                dimension: 0,
                threshold: 0.25,
            },
            &xs,
            &ys,
            1,
        );
        assert_eq!(tree.leaf_sibling(right), None);
    }

    #[test]
    fn leaves_iterator_matches_leaf_count() {
        let (xs, ys) = line_data(16);
        let mut tree = ParticleTree::new_root((0..16).collect(), &ys);
        tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.5,
            },
            &xs,
            &ys,
            1,
        );
        let l = tree.find_leaf(&[0.2]);
        tree.grow(
            l,
            Split {
                dimension: 0,
                threshold: 0.25,
            },
            &xs,
            &ys,
            1,
        );
        assert_eq!(tree.leaves().count(), tree.leaf_count());
        assert_eq!(tree.leaf_count(), 3);
    }

    #[test]
    fn flattened_traversal_matches_find_leaf() {
        let (xs, ys) = line_data(16);
        let mut tree = ParticleTree::new_root((0..16).collect(), &ys);
        tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.5,
            },
            &xs,
            &ys,
            1,
        );
        let l = tree.find_leaf(&[0.2]);
        tree.grow(
            l,
            Split {
                dimension: 0,
                threshold: 0.25,
            },
            &xs,
            &ys,
            1,
        );
        // Pruning leaves a Free slot behind, which the flattening must encode
        // harmlessly.
        let r = tree.find_leaf(&[0.05]);
        tree.prune(r, &ys);
        let mut flat = Vec::new();
        tree.flatten_into(&mut flat);
        for i in 0..32 {
            let x = [i as f64 / 31.0];
            assert_eq!(find_leaf_flat(&flat, &x), tree.find_leaf(&x));
        }
    }
}
